#!/usr/bin/env bash
# Offline CI gate: format, lint, build, test, and a telemetry smoke run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (telemetry + bench, warnings are errors)"
cargo clippy -p branchlab-telemetry -p branchlab-bench --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> telemetry smoke: report --scale test --telemetry-out"
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
cargo run --release -p branchlab-bench --bin report -- --scale test --telemetry-out "$out" >/dev/null

for f in manifest.json metrics.jsonl metrics.prom; do
    [[ -s "$out/$f" ]] || { echo "missing telemetry artifact: $f" >&2; exit 1; }
done

python3 - "$out/manifest.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["tool"] == "report", m["tool"]
assert m["git_describe"], "empty git_describe"
cfg = m["config"]
assert cfg["scale"] == "test" and cfg["seed"] == 1989, cfg
assert len(m["benchmarks"]) == 12, len(m["benchmarks"])
phases = {"compile", "profile", "lower", "fs_build", "natural_eval", "fs_eval", "expansion"}
for b in m["benchmarks"]:
    got = {p["name"] for p in b["phases"]}
    assert phases <= got, (b["name"], phases - got)
    sbtb = b["predictors"]["sbtb"]
    assert sbtb["stats"]["events"] > 0, b["name"]
    assert sbtb["sites"]["sites"] > 0, (b["name"], "site telemetry missing")
print(f"manifest OK: {len(m['benchmarks'])} benchmarks, git {m['git_describe']}")
EOF

echo "==> ci green"
