#!/usr/bin/env bash
# Offline CI gate: format, lint, build, test, and a telemetry smoke run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (telemetry + server + bench, warnings are errors)"
cargo clippy -p branchlab-telemetry -p branchlab-server -p branchlab-bench --all-targets -- -D warnings

echo "==> cargo doc (workspace, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test --doc (runnable examples in the API docs)"
cargo test --workspace --doc -q

echo "==> telemetry smoke: report --scale test --telemetry-out"
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
cargo run --release -p branchlab-bench --bin report -- --scale test --telemetry-out "$out" >/dev/null

for f in manifest.json metrics.jsonl metrics.prom; do
    [[ -s "$out/$f" ]] || { echo "missing telemetry artifact: $f" >&2; exit 1; }
done

python3 - "$out/manifest.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["tool"] == "report", m["tool"]
assert m["git_describe"], "empty git_describe"
cfg = m["config"]
assert cfg["scale"] == "test" and cfg["seed"] == 1989, cfg
assert len(m["benchmarks"]) == 12, len(m["benchmarks"])
phases = {"compile", "profile", "lower", "fs_build", "natural_eval", "fs_eval", "expansion"}
for b in m["benchmarks"]:
    got = {p["name"] for p in b["phases"]}
    assert phases <= got, (b["name"], phases - got)
    sbtb = b["predictors"]["sbtb"]
    assert sbtb["stats"]["events"] > 0, b["name"]
    assert sbtb["sites"]["sites"] > 0, (b["name"], "site telemetry missing")
print(f"manifest OK: {len(m['benchmarks'])} benchmarks, git {m['git_describe']}")
EOF

echo "==> fault smoke: report with injection killing wc must degrade, not die"
fault_out="$(mktemp -d)"
trap 'rm -rf "$out" "$fault_out"' EXIT
set +e
cargo run --release -p branchlab-bench --bin report -- \
    --scale test --fault-exec-rate 1.0 --fault-benches wc --max-attempts 2 \
    --telemetry-out "$fault_out" >"$fault_out/stdout.txt" 2>"$fault_out/stderr.txt"
status=$?
set -e
[[ $status -eq 1 ]] || {
    echo "fault smoke: expected exit code 1 (partial results), got $status" >&2
    cat "$fault_out/stderr.txt" >&2
    exit 1
}
grep -q "FAILED(transient" "$fault_out/stdout.txt" \
    || { echo "fault smoke: tables missing FAILED annotation" >&2; exit 1; }

python3 - "$fault_out/manifest.json" "$fault_out/metrics.jsonl" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert len(m["benchmarks"]) == 11, len(m["benchmarks"])
sup = m["supervisor"]
assert sup["benches_failed"] == 1 and sup["benches_completed"] == 11, sup
failures = m["failures"]
assert len(failures) == 1 and failures[0]["bench"] == "wc", failures
assert failures[0]["class"] == "transient" and failures[0]["attempts"] == 2, failures
metrics = {}
for line in open(sys.argv[2]):
    rec = json.loads(line)
    metrics[rec["name"]] = rec.get("value")
assert metrics.get("suite.benches_failed") == 1, metrics.get("suite.benches_failed")
assert metrics.get("suite.benches_completed") == 11, metrics.get("suite.benches_completed")
assert metrics.get("suite.retries") == 1, metrics.get("suite.retries")
print("fault smoke OK: 11/12 benchmarks survived certain injection on wc")
EOF

echo "==> replay smoke: capture -> replay -> compare stats (replay_bench --scale test)"
replay_out="$(mktemp -d)"
trap 'rm -rf "$out" "$fault_out" "$replay_out"' EXIT
cargo run --release -p branchlab-bench --bin replay_bench -- \
    --scale test --trace-cache "$replay_out/trace-cache" \
    --out "$replay_out/BENCH_replay.json" \
    --sweep-out "$replay_out/BENCH_sweep_parallel.json" \
    --lanes-out "$replay_out/BENCH_lanes.json" \
    --trace-out "$replay_out/replay.trace.json" 2>"$replay_out/stderr.txt" \
    || { echo "replay smoke failed" >&2; cat "$replay_out/stderr.txt" >&2; exit 1; }

# Second run must hit the on-disk trace cache instead of re-capturing.
cargo run --release -p branchlab-bench --bin replay_bench -- \
    --scale test --trace-cache "$replay_out/trace-cache" \
    --out "$replay_out/BENCH_replay2.json" \
    --sweep-out "$replay_out/BENCH_sweep_parallel2.json" \
    --lanes-out "$replay_out/BENCH_lanes2.json" 2>>"$replay_out/stderr.txt" \
    || { echo "replay smoke (cached) failed" >&2; cat "$replay_out/stderr.txt" >&2; exit 1; }

python3 - "$replay_out/BENCH_replay.json" "$replay_out/BENCH_replay2.json" <<'EOF'
import json, sys
cold = json.load(open(sys.argv[1]))
warm = json.load(open(sys.argv[2]))
assert cold["tool"] == "replay_bench", cold["tool"]
assert cold["stats_match"] is True, "replayed tables differ from re-interpreted tables"
assert cold["trace"]["captures"] >= 1, cold["trace"]
assert cold["trace"]["events_replayed"] > 0, cold["trace"]
for b in cold["benches"]:
    assert b["stats_match"] is True, b["name"]
assert warm["stats_match"] is True
assert warm["trace"]["disk_hits"] >= 1, ("no disk-cache hit on warm run", warm["trace"])
phases = {p["name"] for p in cold["phases"]}
assert {"trace_capture", "trace_replay"} <= phases, phases
print(f"replay smoke OK: {cold['trace']['events_replayed']} events replayed, "
      f"tables identical, warm run served from disk cache")
EOF

echo "==> replay trace-export smoke: --trace-out emits valid Chrome trace JSON"
python3 - "$replay_out/replay.trace.json" <<'EOF'
import json, sys
t = json.load(open(sys.argv[1]))
events = t["traceEvents"]
assert events, "empty traceEvents"
names = set()
for e in events:
    assert e["ph"] in {"X", "M"}, e
    assert "pid" in e and "name" in e, e
    if e["ph"] == "X":
        assert e["ts"] >= 0 and e["dur"] >= 0, e
        names.add(e["name"])
assert {"trace_replay", "sweep_score"} <= names, names
print(f"replay trace-export OK: {len(events)} events, phases {sorted(names)}")
EOF

echo "==> parallel-sweep smoke: serial vs parallel tables + counters"
python3 - "$replay_out/BENCH_sweep_parallel.json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["tool"] == "replay_bench/sweep_parallel", s["tool"]
assert s["tables_match"] is True, "parallel sweep tables diverged from serial"
for b in s["benches"]:
    assert b["tables_match"] is True, b["name"]
sweep = s["sweep"]
assert sweep["sweeps"] >= len(s["benches"]), sweep
assert sweep["points"] > 0 and sweep["batches"] >= sweep["sweeps"], sweep
assert sweep["workers"] >= 2 * sweep["sweeps"], ("parallel passes under-provisioned", sweep)
phases = {p["name"] for p in s["phases"]}
assert {"sweep_score", "sweep_merge"} <= phases, phases
# The speedup gate only means something with real cores under the
# workers; single-core runners still verify structure and fidelity.
if s["available_parallelism"] >= 4:
    assert s["speedup"] >= 1.2, (s["speedup"], s["available_parallelism"])
    verdict = f"{s['speedup']:.1f}x on {s['available_parallelism']} cores"
else:
    verdict = (f"{s['speedup']:.1f}x (only {s['available_parallelism']} core(s); "
               "speedup gate skipped)")
print(f"parallel-sweep smoke OK: {sweep['points']} points, "
      f"{sweep['batches']} batches, {verdict}")
EOF

echo "==> lane smoke: bit-parallel vs scalar sweep stats + counters"
python3 - "$replay_out/BENCH_lanes.json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["tool"] == "replay_bench/lanes", s["tool"]
assert s["configs"] >= 16, ("counter family too small for the lane gate", s["configs"])
assert s["stats_match"] is True, "lane-packed stats diverged from scalar replay"
for b in s["benches"]:
    assert b["stats_match"] is True, b["name"]
    assert b["events"] > 0, b["name"]
    assert b["lanes"]["families"] >= 1, (b["name"], b["lanes"])
    assert b["lanes"]["lanes"] == s["configs"], (b["name"], b["lanes"])
lanes = s["lanes"]
assert lanes["passes"] >= len(s["benches"]), lanes
assert lanes["events"] > 0, lanes
# Timing gate only on real multi-core runners (PR-4 precedent);
# single-core boxes still verify structure and bit-fidelity.
if s["available_parallelism"] >= 4:
    assert s["speedup"] >= 1.2, (s["speedup"], s["available_parallelism"])
    verdict = f"{s['speedup']:.1f}x over scalar"
else:
    verdict = (f"{s['speedup']:.1f}x (only {s['available_parallelism']} core(s); "
               "speedup gate skipped)")
print(f"lane smoke OK: {s['configs']} configs packed into {lanes['families']} "
      f"family item(s), {lanes['events']} lane-events, {verdict}")
EOF

echo "==> serve smoke: branchlabd boot -> probe -> load -> graceful SIGTERM"
serve_out="$(mktemp -d)"
trap 'rm -rf "$out" "$fault_out" "$replay_out" "$serve_out"' EXIT
./target/release/branchlabd \
    --listen 127.0.0.1:0 --addr-file "$serve_out/addr" \
    --scale test --workers 2 --warm wc,cmp,grep \
    --recorder 64 --slow-ms 0 --slow-log "$serve_out/slow.jsonl" \
    --trace-out "$serve_out/server.trace.json" \
    2>"$serve_out/branchlabd.log" &
serve_pid=$!

for _ in $(seq 1 200); do
    [[ -s "$serve_out/addr" ]] && break
    kill -0 "$serve_pid" 2>/dev/null || {
        echo "serve smoke: branchlabd died during startup" >&2
        cat "$serve_out/branchlabd.log" >&2
        exit 1
    }
    sleep 0.05
done
[[ -s "$serve_out/addr" ]] || { echo "serve smoke: no addr file" >&2; exit 1; }
serve_addr="$(cat "$serve_out/addr")"

# Probe (healthz, readyz poll, benchmark list, metrics) with the
# std-only client, then a load run against the same daemon.
./target/release/serve_bench --url "$serve_addr" --probe \
    || { echo "serve smoke: probe failed" >&2; cat "$serve_out/branchlabd.log" >&2; exit 1; }
./target/release/serve_bench --url "$serve_addr" \
    --connections 4 --requests 120 --distinct 12 \
    --out "$serve_out/BENCH_serve.json" \
    || { echo "serve smoke: load run failed" >&2; cat "$serve_out/branchlabd.log" >&2; exit 1; }

python3 - "$serve_out/BENCH_serve.json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["tool"] == "serve_bench", s["tool"]
assert s["errors"] == 0, s["errors"]
assert s["ok"] == s["requests"] == 120, (s["ok"], s["requests"])
lat = s["latency_us"]
assert 0 < lat["p50"] <= lat["p99"] <= lat["max"], lat
# Latency-percentile gate (carried ROADMAP item): on a real multi-core
# runner the test-scale p99 must stay under 250ms — cold computes
# overlap across workers, so anything slower is a serialization or
# hang regression. Single-core runners only verify the ordering above.
if s["available_parallelism"] >= 4:
    assert lat["p99"] <= 250_000, ("serve_bench p99 regression", lat)
src = s["sources"]
assert src["computed"] + src["cache"] + src["coalesced"] == s["ok"], src
# 120 requests over 12 distinct bodies: most must be absorbed without
# a replay pass (cache or coalesce).
assert src["cache"] + src["coalesced"] >= s["ok"] // 2, src
ctr = s["server_counters"]
assert ctr["server_sweeps_computed"] <= s["requests"], ctr
assert ctr["server_ready"] == 1, ctr
print(f"serve load OK: {s['throughput_rps']:.0f} req/s, "
      f"p50 {lat['p50']}us p99 {lat['p99']}us, "
      f"{src['cache']} cached / {src['coalesced']} coalesced / "
      f"{src['computed']} computed")
EOF

# Trace smoke: pin a sweep to a known trace id, then fetch its span
# tree from the flight recorder and check the latency decomposition.
python3 - "$serve_addr" <<'EOF'
import http.client, json, sys
conn = http.client.HTTPConnection(sys.argv[1], timeout=120)
body = json.dumps({"bench": "wc",
                   "predictors": [{"kind": "gshare", "table_bits": 10},
                                  {"kind": "sbtb", "entries": 128}],
                   "ras": [2, 16], "seed": 424242})
conn.request("POST", "/v1/sweep", body,
             {"Content-Type": "application/json",
              "X-Branchlab-Trace-Id": "c1feedface"})
resp = conn.getresponse()
resp.read()
assert resp.status == 200, resp.status
echoed = resp.getheader("X-Branchlab-Trace-Id")
assert echoed == "000000c1feedface", echoed

conn.request("GET", f"/debug/traces/{echoed}", headers={})
resp = conn.getresponse()
trace = json.loads(resp.read())
assert resp.status == 200, trace
assert trace["label"] == "POST /v1/sweep", trace["label"]
names = {s["name"] for s in trace["spans"]}
required = {"request", "parse", "cache_lookup", "admission"}
assert required <= names, (sorted(names), required - names)
# Fresh seed -> computed path: the worker-side spans must be present.
assert "compute" in names and "render" in names, sorted(names)
assert "queue_wait" in names, sorted(names)
root = next(s for s in trace["spans"] if s["name"] == "request")
assert root["parent"] is None and root["status"] == 200, root
for s in trace["spans"]:
    assert s["start_us"] + s["dur_us"] <= trace["total_us"], s

conn.request("GET", "/debug/slow", headers={})
resp = conn.getresponse()
slow = json.loads(resp.read())
assert resp.status == 200 and slow["traces"], slow

conn.request("GET", "/metrics", headers={})
resp = conn.getresponse()
metrics = resp.read().decode()
assert "server_queue_wait_us" in metrics, "queue-wait histogram missing"
assert "server_slow_requests" in metrics, "slow counter missing"
conn.close()
print(f"trace smoke OK: trace {echoed} decomposed into {sorted(names)}")
EOF

# mlbtb smoke: a multi-level BTB sweep over a generated
# large-footprint workload must compute end to end — hierarchy specs
# parse and canonicalize, the synthetic benchmark resolves, and the
# sweep lands in the process-wide suite.sweep.* counters.
python3 - "$serve_addr" <<'EOF'
import http.client, json, sys
conn = http.client.HTTPConnection(sys.argv[1], timeout=120)
body = json.dumps({"bench": "dispatch", "seed": 31337,
                   "predictors": [{"kind": "mlbtb"},
                                  {"kind": "mlbtb", "policy": "staged",
                                   "l1_entries": 32, "l1_ways": 4,
                                   "l2_entries": 1024, "l2_ways": 8,
                                   "l2_latency": 3},
                                  {"kind": "cbtb", "entries": 64, "ways": 4}]})
conn.request("POST", "/v1/sweep", body, {"Content-Type": "application/json"})
resp = conn.getresponse()
r = json.loads(resp.read())
assert resp.status == 200, (resp.status, r)
assert r["bench"] == "dispatch" and r["program_hash"], r
preds = r["predictors"]
assert [p["kind"] for p in preds] == ["mlbtb", "mlbtb", "cbtb"], preds
for p in preds:
    assert p["events"] > 0 and 0.0 < p["accuracy"] <= 1.0, p
    assert p["btb_lookups"] > 0, p
assert preds[0]["config"]["policy"] == "l1", preds[0]["config"]
assert preds[1]["config"]["policy"] == "staged", preds[1]["config"]

conn.request("GET", "/metrics", headers={})
metrics = {}
for line in conn.getresponse().read().decode().splitlines():
    if line and not line.startswith("#"):
        name, _, value = line.partition(" ")
        try:
            metrics[name] = float(value)
        except ValueError:
            pass
conn.close()
sweep_counters = {k: v for k, v in metrics.items() if k.startswith("suite_sweep_")}
assert sweep_counters, "no suite_sweep_* counters in /metrics"
# mlbtb points are lane-ineligible (lane_spec is None), so the planner
# must degrade them to scalar points — the lane pass still runs.
assert metrics.get("suite_sweep_lane_passes", 0) > 0, sweep_counters
assert metrics.get("suite_sweep_lane_scalar_points", 0) >= 3, sweep_counters
print(f"mlbtb smoke OK: 3-point hierarchy sweep on dispatch "
      f"({preds[0]['events']:.0f} events/point), "
      f"{metrics['suite_sweep_lane_scalar_points']:.0f} scalar sweep points counted")
EOF

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$serve_pid"
set +e
wait "$serve_pid"
serve_status=$?
set -e
[[ $serve_status -eq 0 ]] || {
    echo "serve smoke: branchlabd exit code $serve_status after SIGTERM" >&2
    cat "$serve_out/branchlabd.log" >&2
    exit 1
}
echo "serve smoke OK: graceful shutdown, exit 0"

# --trace-out writes the flight recorder at shutdown; --slow-ms 0
# means every request landed in the slow log. Validate both.
python3 - "$serve_out/server.trace.json" "$serve_out/slow.jsonl" <<'EOF'
import json, sys
t = json.load(open(sys.argv[1]))
events = t["traceEvents"]
spans = [e for e in events if e["ph"] == "X"]
assert spans, "no spans exported"
for e in spans:
    assert e["ts"] >= 0 and e["dur"] >= 0 and e["name"], e
names = {e["name"] for e in spans}
assert {"request", "compute", "render"} <= names, sorted(names)
slow_lines = [json.loads(l) for l in open(sys.argv[2]) if l.strip()]
assert slow_lines, "slow log empty despite --slow-ms 0"
for rec in slow_lines:
    assert rec["trace_id"] and rec["total_us"] >= 0 and "spans" in rec, rec
assert any(rec["label"] == "POST /v1/sweep" for rec in slow_lines), \
    "no sweep in the slow log"
print(f"server trace-export OK: {len(spans)} spans over "
      f"{len({e['pid'] for e in spans})} requests, "
      f"{len(slow_lines)} slow-log lines")
EOF

echo "==> chaos smoke: every fault lane armed, responses byte-identical to a clean daemon"
chaos_out="$(mktemp -d)"
trap 'rm -rf "$out" "$fault_out" "$replay_out" "$serve_out" "$chaos_out"' EXIT

# A clean daemon provides the reference bytes; a second daemon serves
# the same requests with deterministic fault injection on every lane.
./target/release/branchlabd \
    --listen 127.0.0.1:0 --addr-file "$chaos_out/clean.addr" \
    --scale test --workers 2 --warm wc \
    2>"$chaos_out/clean.log" &
clean_pid=$!
./target/release/branchlabd \
    --listen 127.0.0.1:0 --addr-file "$chaos_out/chaos.addr" \
    --scale test --workers 2 --warm wc \
    --spill-dir "$chaos_out/spill" --spill-every 1 \
    --chaos-seed 1989 --chaos-panic-rate 0.4 \
    --chaos-delay-rate 1.0 --chaos-delay-ms 2 \
    --chaos-cache-corrupt-rate 1.0 --chaos-spill-fail-rate 1.0 \
    2>"$chaos_out/chaos.log" &
chaos_pid=$!

for _ in $(seq 1 200); do
    [[ -s "$chaos_out/clean.addr" && -s "$chaos_out/chaos.addr" ]] && break
    sleep 0.05
done
[[ -s "$chaos_out/clean.addr" && -s "$chaos_out/chaos.addr" ]] \
    || { echo "chaos smoke: daemons never wrote addr files" >&2; exit 1; }

python3 - "$(cat "$chaos_out/clean.addr")" "$(cat "$chaos_out/chaos.addr")" <<'EOF'
import http.client, json, sys, time

def wait_ready(addr):
    deadline = time.time() + 60
    while time.time() < deadline:
        try:
            conn = http.client.HTTPConnection(addr, timeout=10)
            conn.request("GET", "/readyz")
            resp = conn.getresponse()
            resp.read()
            conn.close()
            if resp.status == 200:
                return
        except OSError:
            pass
        time.sleep(0.05)
    raise SystemExit(f"{addr} never became ready")

def sweep(addr, body, retries=0):
    """POST a sweep; with retries, ride out injected 5xx until a 200."""
    last = None
    for attempt in range(retries + 1):
        conn = http.client.HTTPConnection(addr, timeout=120)
        try:
            conn.request("POST", "/v1/sweep", body,
                         {"Content-Type": "application/json"})
            resp = conn.getresponse()
            data = resp.read()
            last = (resp.status, data)
        except OSError as e:
            last = (None, str(e).encode())
        finally:
            conn.close()
        if last[0] == 200:
            return last[1]
        time.sleep(0.05 * (attempt + 1))
    raise SystemExit(f"sweep on {addr} never returned 200: {last}")

def metrics(addr):
    conn = http.client.HTTPConnection(addr, timeout=10)
    conn.request("GET", "/metrics")
    text = conn.getresponse().read().decode()
    conn.close()
    out = {}
    for line in text.splitlines():
        if line and not line.startswith("#"):
            name, _, value = line.partition(" ")
            try:
                out[name] = float(value)
            except ValueError:
                pass
    return out

clean, chaos = sys.argv[1], sys.argv[2]
wait_ready(clean)
wait_ready(chaos)

bodies = [json.dumps({"bench": "wc", "seed": seed,
                      "predictors": [{"kind": "sbtb", "entries": 16 << (seed % 5)},
                                     {"kind": "btfn"}],
                      "ras": [4]})
          for seed in range(10)]
# Two passes: the second hits the (chaos-corrupted) cache, which must
# be detected and recomputed — never served damaged.
for rnd in range(2):
    for body in bodies:
        reference = sweep(clean, body)
        served = sweep(chaos, body, retries=40)
        assert served == reference, \
            f"round {rnd}: chaos daemon diverged from clean bytes for {body}"

m = metrics(chaos)
assert m.get("server_worker_restarts", 0) >= 1, \
    ("panic lane never fired", m.get("server_worker_restarts"))
assert m.get("server_cache_corrupt", 0) >= 1, \
    ("cache-corruption lane never fired", m.get("server_cache_corrupt"))
assert m.get("server_spill_errors", 0) >= 1, \
    ("spill-failure lane never fired", m.get("server_spill_errors"))
print(f"chaos smoke OK: 20 requests byte-identical under faults, "
      f"{m['server_worker_restarts']:.0f} worker restart(s), "
      f"{m['server_cache_corrupt']:.0f} corrupt read(s) absorbed")
EOF

# Both daemons must still drain cleanly on SIGTERM — chaos included.
kill -TERM "$clean_pid" "$chaos_pid"
set +e
wait "$clean_pid"; clean_status=$?
wait "$chaos_pid"; chaos_status=$?
set -e
[[ $clean_status -eq 0 && $chaos_status -eq 0 ]] || {
    echo "chaos smoke: exit codes clean=$clean_status chaos=$chaos_status" >&2
    cat "$chaos_out/chaos.log" >&2
    exit 1
}
echo "chaos smoke OK: both daemons drained, exit 0"

echo "==> warm-restart smoke: kill -9, restart on the same spill dir, served from cache"
./target/release/branchlabd \
    --listen 127.0.0.1:0 --addr-file "$chaos_out/life1.addr" \
    --scale test --workers 2 --warm wc \
    --spill-dir "$chaos_out/spill9" --spill-every 1 \
    2>"$chaos_out/life1.log" &
life1_pid=$!

warm_body='{"bench": "wc", "predictors": [{"kind": "cbtb"}, {"kind": "gshare", "table_bits": 10}], "ras": [8]}'

for _ in $(seq 1 200); do
    [[ -s "$chaos_out/life1.addr" ]] && break
    sleep 0.05
done
python3 - "$(cat "$chaos_out/life1.addr")" "$chaos_out/first.body" "$warm_body" <<'EOF'
import http.client, sys, time

addr, body_out, body = sys.argv[1], sys.argv[2], sys.argv[3]
deadline = time.time() + 60
while time.time() < deadline:
    try:
        conn = http.client.HTTPConnection(addr, timeout=10)
        conn.request("GET", "/readyz")
        resp = conn.getresponse()
        resp.read()
        conn.close()
        if resp.status == 200:
            break
    except OSError:
        pass
    time.sleep(0.05)
else:
    raise SystemExit("first life never became ready")

conn = http.client.HTTPConnection(addr, timeout=120)
conn.request("POST", "/v1/sweep", body, {"Content-Type": "application/json"})
resp = conn.getresponse()
data = resp.read()
assert resp.status == 200, (resp.status, data)
assert resp.getheader("X-Branchlab-Source") == "computed", \
    resp.getheader("X-Branchlab-Source")
open(body_out, "wb").write(data)

# Wait for a periodic spill to publish the entry, so kill -9 can't
# outrun durability.
deadline = time.time() + 60
while time.time() < deadline:
    conn.request("GET", "/metrics")
    metrics = conn.getresponse().read().decode()
    for line in metrics.splitlines():
        if line.startswith("server_spill_entries ") and float(line.split()[1]) >= 1:
            conn.close()
            print("warm-restart smoke: entry spilled, killing first life")
            raise SystemExit(0)
    time.sleep(0.1)
raise SystemExit("periodic spill never captured the cache entry")
EOF

kill -9 "$life1_pid"
set +e
wait "$life1_pid"
set -e

./target/release/branchlabd \
    --listen 127.0.0.1:0 --addr-file "$chaos_out/life2.addr" \
    --scale test --workers 2 --warm wc \
    --spill-dir "$chaos_out/spill9" --spill-every 1 \
    2>"$chaos_out/life2.log" &
life2_pid=$!

for _ in $(seq 1 200); do
    [[ -s "$chaos_out/life2.addr" ]] && break
    sleep 0.05
done
python3 - "$(cat "$chaos_out/life2.addr")" "$chaos_out/first.body" "$warm_body" <<'EOF'
import http.client, sys, time

addr, body_ref, body = sys.argv[1], sys.argv[2], sys.argv[3]
deadline = time.time() + 60
readyz = None
while time.time() < deadline:
    try:
        conn = http.client.HTTPConnection(addr, timeout=10)
        conn.request("GET", "/readyz")
        resp = conn.getresponse()
        readyz = (resp.status, resp.read().decode())
        conn.close()
        if readyz[0] == 200:
            break
    except OSError:
        pass
    time.sleep(0.05)
else:
    raise SystemExit("second life never became ready")
assert readyz == (200, "warm\n"), \
    f"restart after kill -9 must report warm, got {readyz}"

conn = http.client.HTTPConnection(addr, timeout=120)
conn.request("POST", "/v1/sweep", body, {"Content-Type": "application/json"})
resp = conn.getresponse()
data = resp.read()
assert resp.status == 200, (resp.status, data)
source = resp.getheader("X-Branchlab-Source")
assert source == "cache", \
    f"pre-crash request must be served from the spilled cache, got {source}"
assert data == open(body_ref, "rb").read(), \
    "restored bytes diverged from the pre-crash response"
conn.close()
print("warm-restart smoke OK: readyz warm, pre-crash sweep served from spilled cache")
EOF

kill -TERM "$life2_pid"
set +e
wait "$life2_pid"
life2_status=$?
set -e
[[ $life2_status -eq 0 ]] || {
    echo "warm-restart smoke: second life exit code $life2_status" >&2
    cat "$chaos_out/life2.log" >&2
    exit 1
}

cp "$serve_out/BENCH_serve.json" BENCH_serve.test.json

# Keep the perf-trajectory artifacts where future PRs can diff them.
cp "$replay_out/BENCH_replay.json" BENCH_replay.test.json
cp "$replay_out/BENCH_sweep_parallel.json" BENCH_sweep_parallel.test.json
cp "$replay_out/BENCH_lanes.json" BENCH_lanes.test.json
echo "==> replay artifacts: BENCH_replay.test.json, BENCH_sweep_parallel.test.json, BENCH_lanes.test.json, BENCH_serve.test.json"

echo "==> ci green"
