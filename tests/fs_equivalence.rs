//! The Forward Semantic transformation must be observationally
//! equivalent to the conventional build for every benchmark of the
//! suite, at several forward-slot depths, on both profiled and
//! unprofiled inputs.

use branchlab::fsem::{fs_program, FsConfig};
use branchlab::interp::{run, ExecConfig};
use branchlab::ir::lower;
use branchlab::profile::profile_module;
use branchlab::workloads::{Scale, SUITE};

fn exec_cfg() -> ExecConfig {
    ExecConfig {
        max_insts: 200_000_000,
        ..ExecConfig::default()
    }
}

#[test]
fn every_benchmark_is_equivalent_under_fs_transform() {
    for bench in SUITE {
        let module = bench
            .compile()
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let runs = bench.runs(Scale::Test, 11);
        let profile = profile_module(&module, &runs).unwrap();
        let conventional = lower(&module).unwrap();

        for slots in [1u16, 4] {
            let forward = fs_program(&module, &profile, FsConfig::with_slots(slots)).unwrap();
            for (ri, streams) in runs.iter().enumerate() {
                let refs: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
                let a = run(&conventional, &exec_cfg(), &refs, &mut ()).unwrap();
                let b = run(&forward, &exec_cfg(), &refs, &mut ()).unwrap();
                assert_eq!(
                    a.exit_value, b.exit_value,
                    "{} run {ri} slots {slots}: exit value diverged",
                    bench.name
                );
                assert_eq!(
                    a.outputs, b.outputs,
                    "{} run {ri} slots {slots}: outputs diverged",
                    bench.name
                );
            }
        }
    }
}

#[test]
fn fs_transform_generalizes_to_unprofiled_inputs() {
    // Profile with one seed, execute with another: the transformation
    // must not bake input data into the code.
    for name in ["grep", "yacc", "cccp"] {
        let bench = branchlab::workloads::benchmark(name).unwrap();
        let module = bench.compile().unwrap();
        let train = bench.runs(Scale::Test, 1);
        let test = bench.runs(Scale::Test, 2);
        assert_ne!(train, test, "{name}: seeds must generate distinct inputs");
        let profile = profile_module(&module, &train).unwrap();
        let conventional = lower(&module).unwrap();
        let forward = fs_program(&module, &profile, FsConfig::with_slots(3)).unwrap();
        for streams in &test {
            let refs: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
            let a = run(&conventional, &exec_cfg(), &refs, &mut ()).unwrap();
            let b = run(&forward, &exec_cfg(), &refs, &mut ()).unwrap();
            assert_eq!(a.exit_value, b.exit_value, "{name}");
            assert_eq!(a.outputs, b.outputs, "{name}");
        }
    }
}

#[test]
fn forward_slots_grow_code_but_never_change_dynamic_instruction_count() {
    // Slots are never executed: the dynamic instruction count of the FS
    // binary is independent of slot depth.
    let bench = branchlab::workloads::benchmark("wc").unwrap();
    let module = bench.compile().unwrap();
    let runs = bench.runs(Scale::Test, 5);
    let profile = profile_module(&module, &runs).unwrap();
    let refs: Vec<&[u8]> = runs[0].iter().map(Vec::as_slice).collect();

    let mut dyn_insts = Vec::new();
    let mut static_sizes = Vec::new();
    for slots in [0u16, 1, 2, 8] {
        let prog = fs_program(
            &module,
            &profile,
            FsConfig {
                slots,
                slot_jumps: slots > 0,
            },
        )
        .unwrap();
        static_sizes.push(prog.len());
        dyn_insts.push(run(&prog, &exec_cfg(), &refs, &mut ()).unwrap().stats.insts);
    }
    assert!(
        static_sizes.windows(2).all(|w| w[0] <= w[1]),
        "{static_sizes:?}"
    );
    assert!(static_sizes[3] > static_sizes[0], "slots must grow code");
    assert!(
        dyn_insts.windows(2).all(|w| w[0] == w[1]),
        "slot depth changed dynamic behaviour: {dyn_insts:?}"
    );
}
