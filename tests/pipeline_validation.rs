//! Cross-validation of the paper's closed-form cost model against the
//! cycle-level simulator, on real benchmark traces, for all schemes and
//! several pipeline shapes.

use branchlab::interp::{run, ExecConfig};
use branchlab::ir::lower;
use branchlab::pipeline::{CycleSim, PipelineConfig};
use branchlab::predict::{AlwaysNotTaken, BranchPredictor, Cbtb, LikelyBit, Sbtb};
use branchlab::workloads::{benchmark, Scale};

fn validate<P: BranchPredictor>(name: &str, config: PipelineConfig, predictor: P) {
    let bench = benchmark(name).unwrap();
    let program = lower(&bench.compile().unwrap()).unwrap();
    let runs = bench.runs(Scale::Test, 5);
    let mut sim = CycleSim::new(config, predictor);
    let mut insts = 0;
    for streams in &runs {
        let refs: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
        insts += run(&program, &ExecConfig::default(), &refs, &mut sim)
            .unwrap()
            .stats
            .insts;
    }
    let measured = sim.measured_cost();
    let analytic = sim.analytic_cost();
    assert!(
        (measured - analytic).abs() < 1e-9,
        "{name} {config:?}: cycle sim {measured} vs cost model {analytic}"
    );
    assert!(sim.cpi(insts) >= 1.0);
}

#[test]
fn cost_model_matches_cycle_simulation_for_all_schemes() {
    for config in [
        PipelineConfig::moderate(),
        PipelineConfig::deep(),
        PipelineConfig { k: 8, l: 4, m: 6 },
    ] {
        validate("wc", config, Sbtb::paper());
        validate("wc", config, Cbtb::paper());
        validate("compress", config, Sbtb::paper());
        validate("grep", config, AlwaysNotTaken);
    }
}

#[test]
fn fs_binary_cycle_simulation_matches_model() {
    use branchlab::fsem::{fs_program, FsConfig};
    use branchlab::profile::profile_module;

    let bench = benchmark("wc").unwrap();
    let module = bench.compile().unwrap();
    let runs = bench.runs(Scale::Test, 5);
    let profile = profile_module(&module, &runs).unwrap();
    let program = fs_program(&module, &profile, FsConfig::with_slots(2)).unwrap();

    let mut sim = CycleSim::new(PipelineConfig::deep(), LikelyBit);
    for streams in &runs {
        let refs: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
        run(&program, &ExecConfig::default(), &refs, &mut sim).unwrap();
    }
    assert!((sim.measured_cost() - sim.analytic_cost()).abs() < 1e-9);
    // A deep pipeline with ~90% accuracy must cost 1.2–3 cycles/branch.
    let c = sim.measured_cost();
    assert!((1.0..3.5).contains(&c), "cycles/branch {c}");
}

#[test]
fn better_predictors_run_programs_faster() {
    let bench = benchmark("compress").unwrap();
    let program = lower(&bench.compile().unwrap()).unwrap();
    let streams = bench.runs(Scale::Test, 5);
    let refs: Vec<&[u8]> = streams[0].iter().map(Vec::as_slice).collect();
    let cfg = PipelineConfig::deep();

    let mut cycles = Vec::new();
    for pred in [
        Box::new(AlwaysNotTaken) as Box<dyn BranchPredictor>,
        Box::new(Sbtb::paper()),
        Box::new(Cbtb::paper()),
    ] {
        let mut sim = CycleSim::new(cfg, pred);
        let insts = run(&program, &ExecConfig::default(), &refs, &mut sim)
            .unwrap()
            .stats
            .insts;
        cycles.push(sim.total_cycles(insts));
    }
    assert!(
        cycles[1] < cycles[0],
        "SBTB {} vs not-taken {}",
        cycles[1],
        cycles[0]
    );
    assert!(
        cycles[2] < cycles[0],
        "CBTB {} vs not-taken {}",
        cycles[2],
        cycles[0]
    );
}
