//! Property-based end-to-end tests: randomly generated MiniC programs
//! must compile, validate, run deterministically, and behave identically
//! under the Forward Semantic transformation at any slot depth.

use proptest::prelude::*;

use branchlab::fsem::{fs_program, FsConfig};
use branchlab::interp::{run, ExecConfig};
use branchlab::ir::{lower, validate_module};
use branchlab::profile::profile_module;

/// A tiny expression AST rendered to MiniC source. Only bounded
/// constructs are generated, so every program terminates.
#[derive(Clone, Debug)]
enum Expr {
    Const(i8),
    Var(usize),
    Getc,
    Bin(&'static str, Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
}

#[derive(Clone, Debug)]
enum Stmt {
    Assign(usize, Expr),
    Putc(Expr),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `for (tN = 0; tN < bound; tN++) { body }` with a fresh variable.
    Loop(u8, Vec<Stmt>),
    Switch(Expr, Vec<(i8, Vec<Stmt>)>),
}

const NVARS: usize = 4;

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(Expr::Const),
        (0..NVARS).prop_map(Expr::Var),
        Just(Expr::Getc),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("/"),
                    Just("%"),
                    Just("<"),
                    Just("=="),
                    Just("&"),
                    Just("^"),
                    Just("&&"),
                    Just("||"),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::Bin(op, Box::new(a), Box::new(b))),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        ((0..NVARS), expr_strategy()).prop_map(|(v, e)| Stmt::Assign(v, e)),
        expr_strategy().prop_map(Stmt::Putc),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        let body = prop::collection::vec(inner.clone(), 0..3);
        prop_oneof![
            (expr_strategy(), body.clone(), body.clone())
                .prop_map(|(c, t, e)| Stmt::If(c, t, e)),
            ((1u8..6), body.clone()).prop_map(|(n, b)| Stmt::Loop(n, b)),
            (
                expr_strategy(),
                prop::collection::vec((any::<i8>(), body), 1..4)
            )
                .prop_map(|(s, mut arms)| {
                    arms.sort_by_key(|(v, _)| *v);
                    arms.dedup_by_key(|(v, _)| *v);
                    Stmt::Switch(s, arms)
                }),
        ]
    })
}

fn render_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Const(c) => out.push_str(&c.to_string()),
        Expr::Var(v) => out.push_str(&format!("v{v}")),
        Expr::Getc => out.push_str("getc(0)"),
        Expr::Bin(op, a, b) => {
            out.push('(');
            render_expr(a, out);
            out.push_str(&format!(" {op} "));
            render_expr(b, out);
            out.push(')');
        }
        Expr::Not(e) => {
            out.push_str("!(");
            render_expr(e, out);
            out.push(')');
        }
    }
}

fn render_stmts(stmts: &[Stmt], out: &mut String, fresh: &mut usize) {
    for s in stmts {
        match s {
            Stmt::Assign(v, e) => {
                out.push_str(&format!("v{v} = "));
                render_expr(e, out);
                out.push_str(";\n");
            }
            Stmt::Putc(e) => {
                out.push_str("putc(1, ");
                render_expr(e, out);
                out.push_str(");\n");
            }
            Stmt::If(c, t, e) => {
                out.push_str("if (");
                render_expr(c, out);
                out.push_str(") {\n");
                render_stmts(t, out, fresh);
                out.push_str("} else {\n");
                render_stmts(e, out, fresh);
                out.push_str("}\n");
            }
            Stmt::Loop(n, body) => {
                let i = *fresh;
                *fresh += 1;
                out.push_str(&format!("int t{i};\nfor (t{i} = 0; t{i} < {n}; t{i}++) {{\n"));
                render_stmts(body, out, fresh);
                out.push_str("}\n");
            }
            Stmt::Switch(scrut, arms) => {
                out.push_str("switch (");
                render_expr(scrut, out);
                out.push_str(") {\n");
                for (v, body) in arms {
                    out.push_str(&format!("case {v}:\n"));
                    render_stmts(body, out, fresh);
                    out.push_str("break;\n");
                }
                out.push_str("default: v0 = v0 + 1;\n}\n");
            }
        }
    }
}

fn render_program(stmts: &[Stmt]) -> String {
    let mut src = String::from("int main() {\n");
    for v in 0..NVARS {
        src.push_str(&format!("int v{v} = {};\n", v * 3));
    }
    let mut fresh = 0;
    render_stmts(stmts, &mut src, &mut fresh);
    src.push_str("return (v0 ^ v1) + (v2 ^ v3);\n}\n");
    src
}

fn exec_cfg() -> ExecConfig {
    ExecConfig { max_insts: 5_000_000, ..ExecConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn generated_programs_compile_and_validate(
        stmts in prop::collection::vec(stmt_strategy(), 0..6)
    ) {
        let src = render_program(&stmts);
        let module = branchlab::minic::compile(&src)
            .unwrap_or_else(|e| panic!("generated program failed to compile: {e}\n{src}"));
        prop_assert!(validate_module(&module).is_ok());
        prop_assert!(lower(&module).is_ok());
    }

    #[test]
    fn interpreter_is_deterministic(
        stmts in prop::collection::vec(stmt_strategy(), 0..6),
        input in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let module = branchlab::minic::compile(&render_program(&stmts)).unwrap();
        let program = lower(&module).unwrap();
        let a = run(&program, &exec_cfg(), &[&input], &mut ()).unwrap();
        let b = run(&program, &exec_cfg(), &[&input], &mut ()).unwrap();
        prop_assert_eq!(a.exit_value, b.exit_value);
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn fs_transform_preserves_semantics_of_arbitrary_programs(
        stmts in prop::collection::vec(stmt_strategy(), 0..6),
        input in prop::collection::vec(any::<u8>(), 0..64),
        other in prop::collection::vec(any::<u8>(), 0..64),
        slots in 0u16..6,
    ) {
        let module = branchlab::minic::compile(&render_program(&stmts)).unwrap();
        let conventional = lower(&module).unwrap();
        // Profile on `input`, evaluate on both `input` and `other`.
        let profile = profile_module(&module, &[vec![input.clone()]]).unwrap();
        let forward = fs_program(
            &module,
            &profile,
            FsConfig { slots, slot_jumps: slots > 0 },
        )
        .unwrap();
        for data in [&input, &other] {
            let a = run(&conventional, &exec_cfg(), &[data], &mut ()).unwrap();
            let b = run(&forward, &exec_cfg(), &[data], &mut ()).unwrap();
            prop_assert_eq!(a.exit_value, b.exit_value);
            prop_assert_eq!(&a.outputs, &b.outputs);
        }
    }
}
