//! Randomized end-to-end tests: randomly generated MiniC programs
//! must compile, validate, run deterministically, and behave identically
//! under the Forward Semantic transformation at any slot depth.
//!
//! Each test drives a fixed-seed [`Rng`] trial loop, so failures are
//! reproducible by construction (the failing seed is in the panic
//! message).

use branchlab::fsem::{fs_program, FsConfig};
use branchlab::interp::{run, ExecConfig};
use branchlab::ir::{lower, validate_module};
use branchlab::profile::profile_module;
use branchlab::telemetry::Rng;

/// A tiny expression AST rendered to MiniC source. Only bounded
/// constructs are generated, so every program terminates.
#[derive(Clone, Debug)]
enum Expr {
    Const(i8),
    Var(usize),
    Getc,
    Bin(&'static str, Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
}

#[derive(Clone, Debug)]
enum Stmt {
    Assign(usize, Expr),
    Putc(Expr),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `for (tN = 0; tN < bound; tN++) { body }` with a fresh variable.
    Loop(u8, Vec<Stmt>),
    Switch(Expr, Vec<(i8, Vec<Stmt>)>),
}

const NVARS: usize = 4;

const OPS: [&str; 11] = ["+", "-", "*", "/", "%", "<", "==", "&", "^", "&&", "||"];

fn random_expr(rng: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.4) {
        match rng.gen_range(0..3u32) {
            0 => Expr::Const(rng.gen_range(i8::MIN..=i8::MAX)),
            1 => Expr::Var(rng.gen_range(0..NVARS)),
            _ => Expr::Getc,
        }
    } else if rng.gen_bool(0.2) {
        Expr::Not(Box::new(random_expr(rng, depth - 1)))
    } else {
        let op = OPS[rng.gen_range(0..OPS.len())];
        let a = random_expr(rng, depth - 1);
        let b = random_expr(rng, depth - 1);
        Expr::Bin(op, Box::new(a), Box::new(b))
    }
}

fn random_block(rng: &mut Rng, depth: u32) -> Vec<Stmt> {
    let len = rng.gen_range(0..3usize);
    (0..len).map(|_| random_stmt(rng, depth)).collect()
}

fn random_stmt(rng: &mut Rng, depth: u32) -> Stmt {
    if depth == 0 || rng.gen_bool(0.5) {
        if rng.gen_bool(0.6) {
            Stmt::Assign(rng.gen_range(0..NVARS), random_expr(rng, 3))
        } else {
            Stmt::Putc(random_expr(rng, 3))
        }
    } else {
        match rng.gen_range(0..3u32) {
            0 => {
                let cond = random_expr(rng, 3);
                let then = random_block(rng, depth - 1);
                let alt = random_block(rng, depth - 1);
                Stmt::If(cond, then, alt)
            }
            1 => {
                let bound = rng.gen_range(1u8..6);
                Stmt::Loop(bound, random_block(rng, depth - 1))
            }
            _ => {
                let scrut = random_expr(rng, 3);
                let narms = rng.gen_range(1..4usize);
                let mut arms: Vec<(i8, Vec<Stmt>)> = (0..narms)
                    .map(|_| {
                        let v = rng.gen_range(i8::MIN..=i8::MAX);
                        (v, random_block(rng, depth - 1))
                    })
                    .collect();
                arms.sort_by_key(|(v, _)| *v);
                arms.dedup_by_key(|(v, _)| *v);
                Stmt::Switch(scrut, arms)
            }
        }
    }
}

fn random_stmts(rng: &mut Rng) -> Vec<Stmt> {
    let len = rng.gen_range(0..6usize);
    (0..len).map(|_| random_stmt(rng, 3)).collect()
}

fn random_input(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.gen_range(0u8..=255)).collect()
}

fn render_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Const(c) => out.push_str(&c.to_string()),
        Expr::Var(v) => out.push_str(&format!("v{v}")),
        Expr::Getc => out.push_str("getc(0)"),
        Expr::Bin(op, a, b) => {
            out.push('(');
            render_expr(a, out);
            out.push_str(&format!(" {op} "));
            render_expr(b, out);
            out.push(')');
        }
        Expr::Not(e) => {
            out.push_str("!(");
            render_expr(e, out);
            out.push(')');
        }
    }
}

fn render_stmts(stmts: &[Stmt], out: &mut String, fresh: &mut usize) {
    for s in stmts {
        match s {
            Stmt::Assign(v, e) => {
                out.push_str(&format!("v{v} = "));
                render_expr(e, out);
                out.push_str(";\n");
            }
            Stmt::Putc(e) => {
                out.push_str("putc(1, ");
                render_expr(e, out);
                out.push_str(");\n");
            }
            Stmt::If(c, t, e) => {
                out.push_str("if (");
                render_expr(c, out);
                out.push_str(") {\n");
                render_stmts(t, out, fresh);
                out.push_str("} else {\n");
                render_stmts(e, out, fresh);
                out.push_str("}\n");
            }
            Stmt::Loop(n, body) => {
                let i = *fresh;
                *fresh += 1;
                out.push_str(&format!(
                    "int t{i};\nfor (t{i} = 0; t{i} < {n}; t{i}++) {{\n"
                ));
                render_stmts(body, out, fresh);
                out.push_str("}\n");
            }
            Stmt::Switch(scrut, arms) => {
                out.push_str("switch (");
                render_expr(scrut, out);
                out.push_str(") {\n");
                for (v, body) in arms {
                    out.push_str(&format!("case {v}:\n"));
                    render_stmts(body, out, fresh);
                    out.push_str("break;\n");
                }
                out.push_str("default: v0 = v0 + 1;\n}\n");
            }
        }
    }
}

fn render_program(stmts: &[Stmt]) -> String {
    let mut src = String::from("int main() {\n");
    for v in 0..NVARS {
        src.push_str(&format!("int v{v} = {};\n", v * 3));
    }
    let mut fresh = 0;
    render_stmts(stmts, &mut src, &mut fresh);
    src.push_str("return (v0 ^ v1) + (v2 ^ v3);\n}\n");
    src
}

fn exec_cfg() -> ExecConfig {
    ExecConfig {
        max_insts: 5_000_000,
        ..ExecConfig::default()
    }
}

#[test]
fn generated_programs_compile_and_validate() {
    for seed in 0..96u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let src = render_program(&random_stmts(&mut rng));
        let module = branchlab::minic::compile(&src).unwrap_or_else(|e| {
            panic!("seed {seed}: generated program failed to compile: {e}\n{src}")
        });
        assert!(
            validate_module(&module).is_ok(),
            "seed {seed}: module invalid\n{src}"
        );
        assert!(
            lower(&module).is_ok(),
            "seed {seed}: lowering failed\n{src}"
        );
    }
}

#[test]
fn interpreter_is_deterministic() {
    for seed in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0xd373_7213 ^ seed);
        let module = branchlab::minic::compile(&render_program(&random_stmts(&mut rng))).unwrap();
        let program = lower(&module).unwrap();
        let input = random_input(&mut rng, 64);
        let a = run(&program, &exec_cfg(), &[&input], &mut ()).unwrap();
        let b = run(&program, &exec_cfg(), &[&input], &mut ()).unwrap();
        assert_eq!(a.exit_value, b.exit_value, "seed {seed}");
        assert_eq!(a.outputs, b.outputs, "seed {seed}");
        assert_eq!(a.stats, b.stats, "seed {seed}");
    }
}

#[test]
fn fs_transform_preserves_semantics_of_arbitrary_programs() {
    for seed in 0..32u64 {
        let mut rng = Rng::seed_from_u64(0xf5ea_0a11u64.wrapping_add(seed));
        let stmts = random_stmts(&mut rng);
        let input = random_input(&mut rng, 64);
        let other = random_input(&mut rng, 64);
        let slots = rng.gen_range(0u16..6);
        let module = branchlab::minic::compile(&render_program(&stmts)).unwrap();
        let conventional = lower(&module).unwrap();
        // Profile on `input`, evaluate on both `input` and `other`.
        let profile = profile_module(&module, &[vec![input.clone()]]).unwrap();
        let forward = fs_program(
            &module,
            &profile,
            FsConfig {
                slots,
                slot_jumps: slots > 0,
            },
        )
        .unwrap();
        for data in [&input, &other] {
            let a = run(&conventional, &exec_cfg(), &[data], &mut ()).unwrap();
            let b = run(&forward, &exec_cfg(), &[data], &mut ()).unwrap();
            assert_eq!(a.exit_value, b.exit_value, "seed {seed}, slots {slots}");
            assert_eq!(a.outputs, b.outputs, "seed {seed}, slots {slots}");
        }
    }
}
