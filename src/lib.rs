//! `branchlab-repro`: umbrella package hosting the workspace-level
//! integration tests (`tests/`) and runnable examples (`examples/`).
//! The library surface simply re-exports the [`branchlab`] facade.

pub use branchlab::*;
