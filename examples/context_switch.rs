//! Quantify the paper's §4 claim: "If context switching had been
//! simulated, the Forward Semantic's performance would have remained
//! the same, whereas the performance of the other two schemes would
//! have suffered."
//!
//! ```text
//! cargo run --release --example context_switch
//! ```

use branchlab::experiments::{ablation, ExperimentConfig};
use branchlab::workloads::{benchmark, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig {
        scale: Scale::Test,
        ..ExperimentConfig::default()
    };
    for name in ["grep", "compress", "wc"] {
        let bench = benchmark(name).expect("suite benchmark");
        let table = ablation::context_switch_study(
            bench,
            &config,
            &[100, 1_000, 10_000, 100_000, u64::MAX / 2],
        )?;
        println!("{}", table.to_text());
    }
    println!("Hardware buffers lose accuracy as flushes become frequent;");
    println!("the Forward Semantic column never moves — its state is in the code.");
    Ok(())
}
