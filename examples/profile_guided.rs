//! Look inside the Forward Semantic compiler pipeline: profile a
//! program, inspect trace selection, and watch the forward-slot filling
//! reshape the code (the paper's Figure 2, live).
//!
//! ```text
//! cargo run --example profile_guided
//! ```

use branchlab::fsem::{build_fs_plan, select_traces, FsConfig};
use branchlab::ir::{disassemble, lower, lower_with_plan};
use branchlab::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A biased loop like the paper's Figure 2 fragment: the `likely`
    // branch is taken on 9 of 10 iterations.
    let source = r"
        int hot;
        int cold;
        int main() {
            int i;
            for (i = 0; i < 1000; i++) {
                if (i % 10 != 0) { hot++; } else { cold++; }
            }
            return hot * 10000 + cold;
        }
    ";
    let module = compile(source)?;
    let profile = profile_module(&module, &[vec![]])?;

    println!("== per-site profile (taken/total) ==");
    let mut sites: Vec<_> = profile.sites.iter().collect();
    sites.sort_by_key(|(s, _)| *s);
    for (site, c) in sites {
        println!(
            "  {site}: {}/{} taken ({:.0}%)",
            c.taken,
            c.total,
            c.taken_prob() * 100.0
        );
    }

    println!("\n== selected traces (blocks laid out together) ==");
    for (f, traces) in module.funcs.iter().zip(select_traces(&module, &profile)) {
        println!("  fn {}:", f.name);
        for (i, t) in traces.traces.iter().enumerate() {
            let blocks: Vec<String> = t.iter().map(ToString::to_string).collect();
            println!("    trace {i}: {}", blocks.join(" -> "));
        }
    }

    let conventional = lower(&module)?;
    let plan = build_fs_plan(&module, &profile, FsConfig::with_slots(2));
    let forward = lower_with_plan(&module, &plan)?;

    println!("\n== conventional layout ({} insts) ==", conventional.len());
    print!("{}", disassemble(&conventional));
    println!(
        "\n== Forward Semantic layout ({} insts, {} forward slots) ==",
        forward.len(),
        forward.slot_count()
    );
    print!("{}", disassemble(&forward));

    // Both binaries compute the same thing.
    let a = run_simple(&conventional, &[])?;
    let b = run_simple(&forward, &[])?;
    assert_eq!(a.exit_value, b.exit_value);
    println!(
        "\nboth layouts return {} — semantics preserved",
        a.exit_value
    );
    Ok(())
}
