//! Explore the BTB design space on one of the paper's benchmarks:
//! buffer size, associativity, and counter parameters — the hardware
//! cost the Forward Semantic avoids entirely.
//!
//! ```text
//! cargo run --release --example btb_design_space [-- benchmark]
//! ```

use branchlab::experiments::{ablation, ExperimentConfig};
use branchlab::workloads::{benchmark, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "compress".to_string());
    let bench = benchmark(&name)
        .ok_or_else(|| format!("unknown benchmark `{name}` (try wc, compress, grep …)"))?;
    let config = ExperimentConfig {
        scale: Scale::Test,
        ..ExperimentConfig::default()
    };

    println!(
        "{}",
        ablation::sweep_btb_size(bench, &config, &[8, 32, 128, 256, 1024])?.to_text()
    );
    println!(
        "{}",
        ablation::sweep_associativity(bench, &config, 256, &[1, 2, 4, 8, 256])?.to_text()
    );
    println!(
        "{}",
        ablation::sweep_counters(bench, &config, &[(1, 1), (2, 1), (2, 2), (3, 4), (4, 8)])?
            .to_text()
    );
    println!("{}", ablation::static_baselines(bench, &config)?.to_text());
    Ok(())
}
