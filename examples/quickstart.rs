//! Quickstart: compile a program with the bundled MiniC compiler,
//! profile it, apply the Forward Semantic transformation, and compare
//! the three branch schemes of Hwu/Conte/Chang (ISCA 1989) on it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use branchlab::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little histogram program with data-dependent branches.
    let source = r"
        int counts[26];
        int main() {
            int c; int letters = 0; int other = 0;
            while ((c = getc(0)) != -1) {
                if (c >= 'a' && c <= 'z') {
                    counts[c - 'a']++;
                    letters++;
                } else {
                    other++;
                }
            }
            return letters * 1000 + other;
        }
    ";
    let module = compile(source)?;

    // Profile over a representative input (the paper's probe build).
    let train: Vec<u8> = b"the quick brown fox jumps over the lazy dog 1234!"
        .iter()
        .cycle()
        .take(20_000)
        .copied()
        .collect();
    let profile = profile_module(&module, &[vec![train.clone()]])?;

    // Build both binaries: conventional layout and Forward Semantic
    // (trace layout + likely bits + k+ℓ = 2 forward slots).
    let conventional = lower(&module)?;
    let forward = fs_program(&module, &profile, FsConfig::with_slots(2))?;
    println!(
        "static code size: conventional {} insts, FS {} insts ({} forward slots)",
        conventional.len(),
        forward.len(),
        forward.slot_count()
    );

    // Evaluate each scheme on a *different* input than the training run.
    let test: Vec<u8> = b"pack my box with five dozen liquor jugs 987?"
        .iter()
        .cycle()
        .take(20_000)
        .copied()
        .collect();

    let mut sbtb = Evaluator::new(Sbtb::paper());
    let mut cbtb = Evaluator::new(Cbtb::paper());
    run(
        &conventional,
        &ExecConfig::default(),
        &[&test],
        &mut (&mut sbtb, &mut cbtb),
    )?;

    let mut fs = Evaluator::new(LikelyBit);
    let fs_out = run(&forward, &ExecConfig::default(), &[&test], &mut fs)?;
    let conv_out = run_simple(&conventional, &[&test])?;
    assert_eq!(
        conv_out.exit_value, fs_out.exit_value,
        "FS transform must preserve semantics"
    );

    // The paper's cost model on its Table 4 machine (k + ℓ̄ = 2, m̄ = 1).
    let flush = FlushModel {
        l_bar: 1.0,
        m_bar: 1.0,
    };
    println!("\nscheme  accuracy  cycles/branch (k+l=2, m=1)");
    for (name, stats) in [
        ("SBTB", &sbtb.stats),
        ("CBTB", &cbtb.stats),
        ("FS  ", &fs.stats),
    ] {
        println!(
            "{name}    {:6.2}%   {:.3}",
            stats.accuracy() * 100.0,
            branch_cost(stats.accuracy(), 1, &flush),
        );
    }
    Ok(())
}
