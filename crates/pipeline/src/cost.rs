//! The paper's branch cost model (§2.3):
//!
//! ```text
//! cost = A + (k + ℓ̄ + m̄)(1 − A)   cycles per branch
//! ```
//!
//! where `A` is the prediction accuracy, `k` the instruction-memory
//! stages of the fetch unit, `ℓ̄` the average decode-flush depth
//! (`ℓ̄ = ℓ` for RISC-like fixed-latency decode), and `m̄` the average
//! execute-flush depth (`m̄ = f_cond · m` under compiler-static
//! interlocking, since only conditional branches flush the execute
//! pipeline).

/// The pipeline shape of Figure 1: a (k+1)-stage instruction fetch unit,
/// ℓ-stage decode, m-stage execute.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PipelineConfig {
    /// Instruction-memory access stages in the fetch unit (the fetch
    /// unit has `k + 1` stages including next-address selection).
    pub k: u32,
    /// Decode stages ℓ.
    pub l: u32,
    /// Execute stages m.
    pub m: u32,
}

impl PipelineConfig {
    /// A machine like the paper's "moderately pipelined processor"
    /// (5-stage: k = 1, ℓ = 1, m = 2 ⇒ (k+1) + ℓ + m = 5).
    #[must_use]
    pub fn moderate() -> Self {
        PipelineConfig { k: 1, l: 1, m: 2 }
    }

    /// A machine like the paper's "highly pipelined processor"
    /// (11-stage: k = 2, ℓ = 3, m = 5 ⇒ (k+1) + ℓ + m = 11).
    #[must_use]
    pub fn deep() -> Self {
        PipelineConfig { k: 2, l: 3, m: 5 }
    }

    /// Total pipeline stages `(k + 1) + ℓ + m`.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.k + 1 + self.l + self.m
    }
}

/// Average flush depths (ℓ̄, m̄) for the cost formula.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FlushModel {
    /// Average decode-unit flush ℓ̄ (0 ≤ ℓ̄ ≤ ℓ).
    pub l_bar: f64,
    /// Average execute-unit flush m̄.
    pub m_bar: f64,
}

impl FlushModel {
    /// RISC-style fixed decode latency with compiler-static
    /// interlocking: ℓ̄ = ℓ and m̄ = f_cond · m, where `f_cond` is the
    /// fraction of branches that are conditional (paper §2.1).
    #[must_use]
    pub fn static_interlock(config: &PipelineConfig, f_cond: f64) -> Self {
        FlushModel {
            l_bar: f64::from(config.l),
            m_bar: f_cond * f64::from(config.m),
        }
    }
}

/// `cost = A + (k + ℓ̄ + m̄)(1 − A)` — cycles per branch.
///
/// # Panics
/// Panics (debug) if `accuracy` is outside `[0, 1]`.
#[must_use]
pub fn branch_cost(accuracy: f64, k: u32, flush: &FlushModel) -> f64 {
    debug_assert!(
        (0.0..=1.0).contains(&accuracy),
        "accuracy {accuracy} out of range"
    );
    let penalty = f64::from(k) + flush.l_bar + flush.m_bar;
    accuracy + penalty * (1.0 - accuracy)
}

/// A point on a Figure 3/4 curve: branch cost as a function of ℓ̄ + m̄.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CostPoint {
    /// ℓ̄ + m̄ (x-axis).
    pub lm: f64,
    /// Branch cost in cycles (y-axis).
    pub cost: f64,
}

/// Generate a Figure 3/4 curve: branch cost vs ℓ̄ + m̄ over
/// `0..=lm_max` in steps of `step`, at fixed `k` and accuracy.
#[must_use]
pub fn cost_curve(accuracy: f64, k: u32, lm_max: f64, step: f64) -> Vec<CostPoint> {
    assert!(step > 0.0, "step must be positive");
    let n = (lm_max / step).round() as usize;
    (0..=n)
        .map(|i| {
            let lm = i as f64 * step;
            let flush = FlushModel {
                l_bar: lm,
                m_bar: 0.0,
            };
            CostPoint {
                lm,
                cost: branch_cost(accuracy, k, &flush),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_costs_one_cycle() {
        let flush = FlushModel {
            l_bar: 3.0,
            m_bar: 5.0,
        };
        assert!((branch_cost(1.0, 8, &flush) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_accuracy_costs_full_flush() {
        let flush = FlushModel {
            l_bar: 1.0,
            m_bar: 1.0,
        };
        // k + l̄ + m̄ = 4
        assert!((branch_cost(0.0, 2, &flush) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn paper_table4_numbers_match_formula() {
        // Table 4 uses k + l̄ = 2, m̄ = 1 (penalty 3). Cross-check
        // against Table 3 accuracies: cmp FS A = 0.986 → 1.03;
        // wc FS A = 0.904 → 1.19; wc SBTB A = 0.854 → 1.29.
        let flush = FlushModel {
            l_bar: 1.0,
            m_bar: 1.0,
        };
        assert!((branch_cost(0.986, 1, &flush) - 1.03).abs() < 0.005);
        assert!((branch_cost(0.904, 1, &flush) - 1.19).abs() < 0.005);
        assert!((branch_cost(0.854, 1, &flush) - 1.29).abs() < 0.005);
    }

    #[test]
    fn paper_abstract_ranking_holds_for_deep_and_moderate_pipelines() {
        // Abstract: FS beats the best hardware scheme at 11 stages
        // (≈1.65 vs 1.68 cycles/branch) and at 5 stages (1.19 vs 1.23),
        // using the average accuracies of Table 3.
        let deep = FlushModel {
            l_bar: 3.0,
            m_bar: 5.0,
        };
        assert!(branch_cost(0.935, 2, &deep) < branch_cost(0.924, 2, &deep));
        let moderate = FlushModel {
            l_bar: 1.0,
            m_bar: 1.0,
        };
        assert!(branch_cost(0.935, 1, &moderate) < branch_cost(0.924, 1, &moderate));
    }

    #[test]
    fn higher_accuracy_always_cheaper() {
        let flush = FlushModel {
            l_bar: 2.0,
            m_bar: 2.0,
        };
        let mut last = f64::INFINITY;
        for a in [0.5, 0.7, 0.9, 0.95, 0.99] {
            let c = branch_cost(a, 4, &flush);
            assert!(c < last);
            last = c;
        }
    }

    #[test]
    fn cost_gap_grows_with_pipeline_depth() {
        // The paper's Figures 3–4: the gap between schemes widens as
        // ℓ̄ + m̄ and k grow.
        let gap = |k: u32, lm: f64| {
            let flush = FlushModel {
                l_bar: lm,
                m_bar: 0.0,
            };
            branch_cost(0.915, k, &flush) - branch_cost(0.935, k, &flush)
        };
        assert!(gap(2, 4.0) > gap(1, 2.0));
        assert!(gap(8, 10.0) > gap(2, 4.0));
    }

    #[test]
    fn static_interlock_flush_model() {
        let cfg = PipelineConfig { k: 1, l: 2, m: 4 };
        let f = FlushModel::static_interlock(&cfg, 0.75);
        assert!((f.l_bar - 2.0).abs() < 1e-12);
        assert!((f.m_bar - 3.0).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_and_starts_at_lm_zero() {
        let c = cost_curve(0.9, 2, 10.0, 0.5);
        assert_eq!(c.len(), 21);
        assert!((c[0].lm - 0.0).abs() < 1e-12);
        for w in c.windows(2) {
            assert!(w[1].cost > w[0].cost);
        }
        // cost(lm=0) = A + k(1 − A)
        assert!((c[0].cost - (0.9 + 2.0 * 0.1)).abs() < 1e-12);
    }

    #[test]
    fn named_configs_have_documented_depths() {
        assert_eq!(PipelineConfig::moderate().depth(), 5);
        assert_eq!(PipelineConfig::deep().depth(), 11);
    }
}
