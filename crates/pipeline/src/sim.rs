//! Trace-driven cycle simulator for the Figure-1 pipeline.
//!
//! A single-issue in-order pipeline with no structural or data hazards
//! (interlocking is parameterized away, as in the paper) admits an exact
//! timing rule: each instruction occupies one issue cycle, and a
//! mispredicted branch additionally stalls fetch for its resolution
//! depth — `k + ℓ + m` for conditional branches (resolved at the end of
//! execute) and `k + ℓ` for unconditional ones (resolved at the end of
//! decode). [`CycleSim`] implements that rule directly over the dynamic
//! branch stream, with any [`BranchPredictor`] steering fetch.
//!
//! Counting a mispredicted branch as `k + ℓ + m` *total* cycles (its
//! issue slot included) mirrors the paper's cost accounting, where a
//! correctly predicted branch costs 1 cycle and a mispredicted one costs
//! `k + ℓ̄ + m̄`; the simulator therefore validates the closed-form
//! model exactly once ℓ̄ and m̄ are measured from the same run (see
//! [`CycleSim::empirical_flush`]).

use branchlab_predict::{BranchPredictor, Evaluator, PredStats};
use branchlab_trace::{BranchEvent, BranchKind, ExecHooks};

use crate::cost::{branch_cost, FlushModel, PipelineConfig};

/// Cycle-level pipeline simulation driven by a branch predictor.
#[derive(Clone, Debug)]
pub struct CycleSim<P> {
    /// Pipeline shape.
    pub config: PipelineConfig,
    /// The predictor steering the fetch unit, with its scoring.
    pub eval: Evaluator<P>,
    /// Extra cycles charged to mispredicted branches (beyond the one
    /// issue cycle every instruction pays).
    pub stall_cycles: u64,
    /// Mispredicted conditional branches (flush the execute unit).
    pub cond_mispredicts: u64,
    /// Mispredicted unconditional branches (flush through decode only).
    pub uncond_mispredicts: u64,
}

impl<P: BranchPredictor> CycleSim<P> {
    /// Create a simulator for `config` steered by `predictor`.
    pub fn new(config: PipelineConfig, predictor: P) -> Self {
        CycleSim {
            config,
            eval: Evaluator::new(predictor),
            stall_cycles: 0,
            cond_mispredicts: 0,
            uncond_mispredicts: 0,
        }
    }

    /// Prediction scoring accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &PredStats {
        &self.eval.stats
    }

    /// Add this run's cycle accounting to `prefix.*` counters in a
    /// metrics registry.
    pub fn export(&self, registry: &branchlab_telemetry::MetricsRegistry, prefix: &str) {
        for (name, value) in [
            ("stall_cycles", self.stall_cycles),
            ("cond_mispredicts", self.cond_mispredicts),
            ("uncond_mispredicts", self.uncond_mispredicts),
            ("branch_events", self.eval.stats.events),
            ("branch_correct", self.eval.stats.correct),
        ] {
            registry.counter(&format!("{prefix}.{name}")).add(value);
        }
    }

    /// Total cycles to execute a run that retired `insts` instructions.
    #[must_use]
    pub fn total_cycles(&self, insts: u64) -> u64 {
        insts + self.stall_cycles
    }

    /// Cycles per instruction for a run that retired `insts`.
    #[must_use]
    pub fn cpi(&self, insts: u64) -> f64 {
        if insts == 0 {
            0.0
        } else {
            self.total_cycles(insts) as f64 / insts as f64
        }
    }

    /// Measured cycles per branch: 1 issue cycle plus the amortized
    /// stalls. This is the quantity the paper's cost model predicts.
    #[must_use]
    pub fn measured_cost(&self) -> f64 {
        let b = self.eval.stats.events;
        if b == 0 {
            0.0
        } else {
            1.0 + self.stall_cycles as f64 / b as f64
        }
    }

    /// The empirical flush model of this run: ℓ̄ = ℓ, and m̄ scaled by
    /// the conditional share of *mispredicted* branches, so that
    /// [`branch_cost`] reproduces [`CycleSim::measured_cost`] exactly.
    #[must_use]
    pub fn empirical_flush(&self) -> FlushModel {
        let mis = self.cond_mispredicts + self.uncond_mispredicts;
        let f_cond = if mis == 0 {
            1.0
        } else {
            self.cond_mispredicts as f64 / mis as f64
        };
        FlushModel {
            l_bar: f64::from(self.config.l),
            m_bar: f_cond * f64::from(self.config.m),
        }
    }

    /// The closed-form cost for this run's accuracy and empirical flush
    /// model — should match [`CycleSim::measured_cost`] to rounding.
    #[must_use]
    pub fn analytic_cost(&self) -> f64 {
        branch_cost(
            self.eval.stats.accuracy(),
            self.config.k,
            &self.empirical_flush(),
        )
    }
}

impl<P: BranchPredictor> ExecHooks for CycleSim<P> {
    fn branch(&mut self, ev: &BranchEvent) {
        let before = self.eval.stats.correct;
        self.eval.branch(ev);
        let correct = self.eval.stats.correct > before;
        if !correct {
            // Mispredict: the branch's own cost grows from 1 cycle to
            // k + ℓ (+ m for conditionals), i.e. k + ℓ (+ m) − 1 stalls.
            let c = &self.config;
            let total = c.k + c.l + if ev.kind == BranchKind::Cond { c.m } else { 0 };
            self.stall_cycles += u64::from(total.saturating_sub(1));
            if ev.kind == BranchKind::Cond {
                self.cond_mispredicts += 1;
            } else {
                self.uncond_mispredicts += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchlab_interp::{run, ExecConfig};
    use branchlab_ir::lower;
    use branchlab_minic::compile;
    use branchlab_predict::{AlwaysNotTaken, Cbtb, Sbtb};

    fn simulate<P: BranchPredictor>(
        src: &str,
        input: &[u8],
        config: PipelineConfig,
        predictor: P,
    ) -> (CycleSim<P>, u64) {
        let m = compile(src).unwrap();
        let p = lower(&m).unwrap();
        let mut sim = CycleSim::new(config, predictor);
        let out = run(&p, &ExecConfig::default(), &[input], &mut sim).unwrap();
        (sim, out.stats.insts)
    }

    const LOOP: &str =
        "int main() { int i; int s = 0; for (i = 0; i < 500; i++) { s += i; } return s; }";

    #[test]
    fn analytic_model_matches_simulation_exactly() {
        for config in [PipelineConfig::moderate(), PipelineConfig::deep()] {
            let (sim, _) = simulate(LOOP, b"", config, Cbtb::paper());
            let measured = sim.measured_cost();
            let analytic = sim.analytic_cost();
            assert!(
                (measured - analytic).abs() < 1e-9,
                "{config:?}: measured {measured} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn deeper_pipelines_cost_more_cycles() {
        let (shallow, insts) = simulate(LOOP, b"", PipelineConfig::moderate(), Sbtb::paper());
        let (deep, insts2) = simulate(LOOP, b"", PipelineConfig::deep(), Sbtb::paper());
        assert_eq!(insts, insts2);
        assert!(deep.total_cycles(insts) > shallow.total_cycles(insts));
        assert!(deep.cpi(insts) > 1.0);
    }

    #[test]
    fn better_predictor_means_fewer_cycles() {
        let cfg = PipelineConfig::deep();
        let (bad, insts) = simulate(LOOP, b"", cfg, AlwaysNotTaken);
        let (good, _) = simulate(LOOP, b"", cfg, Cbtb::paper());
        assert!(
            good.total_cycles(insts) < bad.total_cycles(insts),
            "CBTB {} vs not-taken {}",
            good.total_cycles(insts),
            bad.total_cycles(insts)
        );
    }

    #[test]
    fn perfect_prediction_gives_cpi_one() {
        // A straight-line program has only perfectly-predictable
        // unconditional direct flow… actually none: no branches at all.
        let (sim, insts) = simulate(
            "int main() { return 1 + 2 + 3; }",
            b"",
            PipelineConfig::deep(),
            Sbtb::paper(),
        );
        assert_eq!(sim.stall_cycles, 0);
        assert!((sim.cpi(insts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncond_mispredicts_cost_less_than_cond() {
        // Build a simulator and feed synthetic events directly.
        use branchlab_ir::{Addr, BlockId, BranchId, FuncId};
        use branchlab_trace::BranchEvent;
        let mk = |kind, pc: u32| BranchEvent {
            pc: Addr(pc),
            kind,
            taken: true,
            target: Addr(999),
            fallthrough: Addr(pc + 1),
            branch: BranchId {
                func: FuncId(0),
                block: BlockId(pc),
            },
            likely: false,
            cond: Some(branchlab_ir::Cond::Eq),
        };
        let cfg = PipelineConfig { k: 1, l: 2, m: 4 };
        let mut sim = CycleSim::new(cfg, AlwaysNotTaken);
        sim.branch(&mk(BranchKind::Cond, 1)); // mispredict: k+l+m−1 = 6
        assert_eq!(sim.stall_cycles, 6);
        sim.branch(&mk(BranchKind::UncondDirect, 2)); // mispredict: k+l−1 = 2
        assert_eq!(sim.stall_cycles, 8);
        assert_eq!(sim.cond_mispredicts, 1);
        assert_eq!(sim.uncond_mispredicts, 1);

        let registry = branchlab_telemetry::MetricsRegistry::new();
        sim.export(&registry, "pipeline.test");
        assert_eq!(registry.counter("pipeline.test.stall_cycles").get(), 8);
        assert_eq!(registry.counter("pipeline.test.cond_mispredicts").get(), 1);
        assert_eq!(registry.counter("pipeline.test.branch_events").get(), 2);
    }
}
