//! Fetch-Directed Instruction Prefetching (FDIP) cost axis.
//!
//! In an FDIP front end (Asheim et al., *Fetch-Directed Instruction
//! Prefetching Revisited*) the BTB runs ahead of decode and steers the
//! fetch/prefetch stream, so the cost of a branch is decided by what the
//! BTB told the fetcher, not only by the final predict/mispredict bit:
//!
//! * **prefetch hit** — fetch already follows the correct path (a BTB
//!   hit with the right direction+target, or a sequential fall-through
//!   the default not-taken stream covered);
//! * **redirect** — a resident-but-wrong prediction is caught when the
//!   branch decodes/resolves and fetch is redirected mid-stream;
//! * **misfetch** — the branch was absent from the BTB and actually
//!   taken: the prefetcher streamed sequentially past it and the whole
//!   fetch queue is refilled from the architectural path.
//!
//! The per-class penalties are *sweep parameters* ([`FdipConfig`]), and
//! the class tallies ([`FdipCounts`]) depend only on the predictor and
//! the trace — one [`FdipSim`] pass prices every penalty combination in
//! closed form via [`FdipCounts::cost`].

use branchlab_predict::{BranchPredictor, Evaluator, PredStats, Prediction};
use branchlab_trace::{BranchEvent, ExecHooks};

/// Penalty cycles for each FDIP fetch-stream class.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FdipConfig {
    /// Extra cycles when the prefetch stream already followed the
    /// correct path (usually 0: fetch never stalls).
    pub prefetch_hit: u32,
    /// Cycles to redirect fetch when a resident prediction is wrong.
    pub redirect: u32,
    /// Cycles to refill the fetch queue after streaming past an
    /// untracked taken branch.
    pub miss: u32,
}

impl FdipConfig {
    /// A moderate front end: 0 / 2 / 5 cycles.
    #[must_use]
    pub fn moderate() -> Self {
        FdipConfig {
            prefetch_hit: 0,
            redirect: 2,
            miss: 5,
        }
    }

    /// A deep decoupled front end: 0 / 4 / 12 cycles.
    #[must_use]
    pub fn deep() -> Self {
        FdipConfig {
            prefetch_hit: 0,
            redirect: 4,
            miss: 12,
        }
    }
}

impl Default for FdipConfig {
    fn default() -> Self {
        Self::moderate()
    }
}

/// How one dynamic branch moved through the FDIP front end.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FdipClass {
    /// BTB hit and the prediction was fully correct.
    PrefetchHit,
    /// No BTB steering, but the sequential stream was the right path.
    SequentialHit,
    /// Wrong prediction caught and redirected at decode/resolve.
    Redirect,
    /// Untracked taken branch — full fetch-queue misfetch.
    Misfetch,
}

/// Classify one event from the predictor's answer.
#[must_use]
pub fn classify(ev: &BranchEvent, pred: &Prediction) -> FdipClass {
    let btb_hit = pred.hit == Some(true);
    if pred.is_correct(ev) {
        if btb_hit {
            FdipClass::PrefetchHit
        } else {
            FdipClass::SequentialHit
        }
    } else if !btb_hit && ev.taken {
        FdipClass::Misfetch
    } else {
        FdipClass::Redirect
    }
}

/// Per-class event tallies — the predictor/trace-dependent half of the
/// FDIP cost, independent of the penalty choices.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FdipCounts {
    /// BTB-steered correct-path fetches.
    pub prefetch_hits: u64,
    /// Correct-path sequential fetches with no BTB entry.
    pub sequential_hits: u64,
    /// Decode/resolve-time fetch redirects.
    pub redirects: u64,
    /// Full misfetches (untracked taken branches).
    pub misfetches: u64,
}

impl FdipCounts {
    /// Record one classified event.
    pub fn record(&mut self, class: FdipClass) {
        match class {
            FdipClass::PrefetchHit => self.prefetch_hits += 1,
            FdipClass::SequentialHit => self.sequential_hits += 1,
            FdipClass::Redirect => self.redirects += 1,
            FdipClass::Misfetch => self.misfetches += 1,
        }
    }

    /// Total classified events.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.prefetch_hits + self.sequential_hits + self.redirects + self.misfetches
    }

    /// Total penalty cycles under `config`.
    #[must_use]
    pub fn penalty_cycles(&self, config: &FdipConfig) -> u64 {
        (self.prefetch_hits + self.sequential_hits) * u64::from(config.prefetch_hit)
            + self.redirects * u64::from(config.redirect)
            + self.misfetches * u64::from(config.miss)
    }

    /// Mean fetch cost per branch under `config`: 1 issue cycle plus
    /// the amortized per-class penalties — the FDIP analogue of the
    /// paper's `cost = A + (k + ℓ̄ + m̄)(1 − A)`.
    #[must_use]
    pub fn cost(&self, config: &FdipConfig) -> f64 {
        let n = self.events();
        if n == 0 {
            0.0
        } else {
            1.0 + self.penalty_cycles(config) as f64 / n as f64
        }
    }

    /// Price several penalty configurations from one pass — the sweep
    /// axis: `(config, cost-per-branch)` for each input.
    #[must_use]
    pub fn sweep(&self, configs: &[FdipConfig]) -> Vec<(FdipConfig, f64)> {
        configs.iter().map(|c| (*c, self.cost(c))).collect()
    }
}

/// Trace-driven FDIP front-end simulation: scores a predictor and
/// classifies every branch into its fetch-stream class in one pass.
///
/// Hand it to the interpreter like any [`ExecHooks`], or drive it from
/// a replayed trace.
#[derive(Clone, Debug)]
pub struct FdipSim<P> {
    /// The predictor steering prefetch, with its scoring.
    pub eval: Evaluator<P>,
    /// Per-class tallies.
    pub counts: FdipCounts,
}

impl<P: BranchPredictor> FdipSim<P> {
    /// Create a simulation steered by `predictor`.
    pub fn new(predictor: P) -> Self {
        FdipSim {
            eval: Evaluator::new(predictor),
            counts: FdipCounts::default(),
        }
    }

    /// Prediction scoring accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &PredStats {
        &self.eval.stats
    }

    /// Add this run's class tallies to `prefix.*` counters in a
    /// metrics registry.
    pub fn export(&self, registry: &branchlab_telemetry::MetricsRegistry, prefix: &str) {
        for (name, value) in [
            ("prefetch_hits", self.counts.prefetch_hits),
            ("sequential_hits", self.counts.sequential_hits),
            ("redirects", self.counts.redirects),
            ("misfetches", self.counts.misfetches),
        ] {
            registry.counter(&format!("{prefix}.{name}")).add(value);
        }
    }
}

impl<P: BranchPredictor> ExecHooks for FdipSim<P> {
    fn branch(&mut self, ev: &BranchEvent) {
        let pred = self.eval.predictor.predict(ev);
        self.counts.record(classify(ev, &pred));
        self.eval.stats.tally(ev, &pred);
        self.eval.predictor.update(ev, &pred);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchlab_interp::{run, ExecConfig};
    use branchlab_ir::{lower, Addr, BlockId, BranchId, FuncId};
    use branchlab_minic::compile;
    use branchlab_predict::{AlwaysNotTaken, Cbtb, MlBtb, Sbtb};
    use branchlab_trace::BranchKind;

    fn ev(pc: u32, taken: bool, target: u32) -> BranchEvent {
        BranchEvent {
            pc: Addr(pc),
            kind: BranchKind::Cond,
            taken,
            target: Addr(target),
            fallthrough: Addr(pc + 1),
            branch: BranchId {
                func: FuncId(0),
                block: BlockId(pc),
            },
            likely: false,
            cond: Some(branchlab_ir::Cond::Eq),
        }
    }

    #[test]
    fn classes_cover_the_btb_outcome_matrix() {
        let mut sim = FdipSim::new(Cbtb::paper());
        sim.branch(&ev(10, true, 50)); // miss + taken → misfetch
        assert_eq!(sim.counts.misfetches, 1);
        sim.branch(&ev(10, true, 50)); // hit, correct → prefetch hit
        assert_eq!(sim.counts.prefetch_hits, 1);
        sim.branch(&ev(10, false, 50)); // hit, predicted taken → redirect
        assert_eq!(sim.counts.redirects, 1);
        sim.branch(&ev(20, false, 70)); // miss + not taken → sequential hit
        assert_eq!(sim.counts.sequential_hits, 1);
        assert_eq!(sim.counts.events(), 4);
        assert_eq!(sim.counts.events(), sim.stats().events);
    }

    #[test]
    fn costs_are_closed_form_over_the_tallies() {
        let counts = FdipCounts {
            prefetch_hits: 6,
            sequential_hits: 2,
            redirects: 1,
            misfetches: 1,
        };
        let cfg = FdipConfig {
            prefetch_hit: 0,
            redirect: 2,
            miss: 8,
        };
        assert_eq!(counts.penalty_cycles(&cfg), 10);
        assert!((counts.cost(&cfg) - 2.0).abs() < 1e-12);
        // The sweep prices every configuration from the same pass.
        let swept = counts.sweep(&[cfg, FdipConfig::deep()]);
        assert_eq!(swept.len(), 2);
        assert!((swept[0].1 - 2.0).abs() < 1e-12);
        assert!(swept[1].1 > swept[0].1);
    }

    #[test]
    fn zero_penalties_cost_exactly_one_cycle_per_branch() {
        let mut sim = FdipSim::new(AlwaysNotTaken);
        for i in 0..10 {
            sim.branch(&ev(10 + i, i % 2 == 0, 90));
        }
        let free = FdipConfig {
            prefetch_hit: 0,
            redirect: 0,
            miss: 0,
        };
        assert!((sim.counts.cost(&free) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn better_front_end_coverage_costs_fewer_cycles() {
        const LOOP: &str = "int main() { int i; int j; int s = 0; \
            for (i = 0; i < 40; i++) { for (j = 0; j < 20; j++) { \
            if ((s & 3) == 1) { s += j; } else { s += 1; } } } return s; }";
        let m = compile(LOOP).unwrap();
        let p = lower(&m).unwrap();
        let cfg = FdipConfig::moderate();
        let mut sbtb = FdipSim::new(Sbtb::paper());
        let mut ml = FdipSim::new(MlBtb::server());
        run(&p, &ExecConfig::default(), &[], &mut sbtb).unwrap();
        run(&p, &ExecConfig::default(), &[], &mut ml).unwrap();
        // The SBTB never tracks not-taken branches, so the counter-based
        // hierarchy sees strictly more prefetch hits here.
        assert!(ml.counts.prefetch_hits > sbtb.counts.prefetch_hits);
        assert!(ml.counts.cost(&cfg) <= sbtb.counts.cost(&cfg));
    }

    #[test]
    fn export_publishes_all_classes() {
        let mut sim = FdipSim::new(Cbtb::paper());
        sim.branch(&ev(10, true, 50));
        sim.branch(&ev(10, true, 50));
        let registry = branchlab_telemetry::MetricsRegistry::new();
        sim.export(&registry, "fdip.test");
        assert_eq!(registry.counter("fdip.test.misfetches").get(), 1);
        assert_eq!(registry.counter("fdip.test.prefetch_hits").get(), 1);
    }
}
