//! # branchlab-pipeline
//!
//! The machine-model half of the reproduction: the paper's parametric
//! pipeline (Figure 1: a (k+1)-stage fetch unit, ℓ-stage decode,
//! m-stage execute), its closed-form branch cost model
//! `cost = A + (k + ℓ̄ + m̄)(1 − A)` (§2.3), and a trace-driven cycle
//! simulator ([`CycleSim`]) that executes the same rule structurally and
//! validates the formula on real traces.
//!
//! The modern extension is the **FDIP axis** ([`FdipSim`] /
//! [`FdipConfig`]): a fetch-directed-prefetch front end where the BTB
//! steers fetch ahead of decode, so each branch is classed as a
//! prefetch hit, a decode-time redirect, or a full misfetch, with the
//! per-class penalties as sweep parameters.
//!
//! ```
//! use branchlab_pipeline::{branch_cost, FlushModel};
//!
//! // Table 4's machine: k + ℓ̄ = 2, m̄ = 1, with cmp's A_FS = 0.986.
//! let flush = FlushModel { l_bar: 1.0, m_bar: 1.0 };
//! let cost = branch_cost(0.986, 1, &flush);
//! assert!((cost - 1.028).abs() < 1e-3);
//! ```

#![warn(missing_docs)]

mod cost;
mod fdip;
mod sim;

pub use cost::{branch_cost, cost_curve, CostPoint, FlushModel, PipelineConfig};
pub use fdip::{classify, FdipClass, FdipConfig, FdipCounts, FdipSim};
pub use sim::CycleSim;
