//! # branchlab-interp
//!
//! Interpreter for `branchlab-ir` linear programs.
//!
//! Executes laid-out code with a flat word memory (globals + frame
//! stack), per-activation register files, up to eight byte-oriented input
//! and output streams, and an instruction-fuel limit. Every executed
//! control transfer is reported to an [`ExecHooks`] implementation —
//! this event stream is what drives the branch predictors, the profiler,
//! and the pipeline simulator.
//!
//! Calls and returns are *not* reported as branch events: the machine
//! model (per DESIGN.md) handles returns with a return-address stack in
//! the fetch unit and treats calls as perfectly-predicted transfers, so
//! they are excluded from the paper's branch statistics.
//!
//! ```
//! use branchlab_interp::{run, ExecConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = branchlab_minic::compile(
//!     "int main() { int c; while ((c = getc(0)) != -1) { putc(1, c + 1); } return 0; }",
//! )?;
//! let program = branchlab_ir::lower(&module)?;
//! let out = run(&program, &ExecConfig::default(), &[b"abc"], &mut ())?;
//! assert_eq!(out.outputs[1], b"bcd");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use branchlab_ir::{Addr, FuncId, Inst, Operand, Program, Reg};
pub use branchlab_trace::{BranchEvent, BranchKind, ExecHooks};

/// Maximum number of I/O streams.
pub const NUM_STREAMS: usize = 8;

/// Execution limits and memory sizing.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Total data memory in words (globals at the bottom, then the frame
    /// stack growing upward).
    pub memory_words: usize,
    /// Instruction budget; execution stops with [`ExecError::OutOfFuel`]
    /// when exceeded.
    pub max_insts: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            memory_words: 1 << 22,
            max_insts: u64::MAX,
            max_call_depth: 100_000,
        }
    }
}

/// Dynamic instruction counts for one run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total executed instructions.
    pub insts: u64,
    /// All branches (conditional + unconditional, excl. calls/returns).
    pub branches: u64,
    /// Conditional branches.
    pub cond_branches: u64,
    /// Taken conditional branches.
    pub taken_cond: u64,
    /// Unconditional direct branches (known target).
    pub uncond_direct: u64,
    /// Unconditional indirect branches (unknown target).
    pub uncond_indirect: u64,
    /// Call instructions executed.
    pub calls: u64,
}

impl ExecStats {
    /// Fraction of dynamic instructions that are branches (the paper's
    /// *Control* column of Table 1).
    #[must_use]
    pub fn control_fraction(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.branches as f64 / self.insts as f64
        }
    }

    /// Accumulate another run's statistics (multi-run profiling).
    pub fn merge(&mut self, other: &ExecStats) {
        self.insts += other.insts;
        self.branches += other.branches;
        self.cond_branches += other.cond_branches;
        self.taken_cond += other.taken_cond;
        self.uncond_direct += other.uncond_direct;
        self.uncond_indirect += other.uncond_indirect;
        self.calls += other.calls;
    }

    /// Add these counts to `prefix.*` counters in a metrics registry.
    /// The interpreter's hot loop is never instrumented directly; runs
    /// export their totals here after the fact.
    pub fn export(&self, registry: &branchlab_telemetry::MetricsRegistry, prefix: &str) {
        for (name, value) in [
            ("insts", self.insts),
            ("branches", self.branches),
            ("cond_branches", self.cond_branches),
            ("taken_cond", self.taken_cond),
            ("uncond_direct", self.uncond_direct),
            ("uncond_indirect", self.uncond_indirect),
            ("calls", self.calls),
        ] {
            registry.counter(&format!("{prefix}.{name}")).add(value);
        }
    }
}

/// Result of a completed execution.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// `main`'s return value (0 after an explicit `halt`).
    pub exit_value: i64,
    /// Bytes written to each output stream.
    pub outputs: Vec<Vec<u8>>,
    /// Dynamic instruction statistics.
    pub stats: ExecStats,
}

/// A runtime error.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are described in variant docs
pub enum ExecError {
    /// The instruction budget was exhausted.
    OutOfFuel { at: Addr },
    /// A load or store touched memory outside `0..memory_words`.
    MemoryFault { at: Addr, addr: i64 },
    /// The frame stack outgrew data memory.
    StackOverflow { at: Addr },
    /// Call depth exceeded the configured maximum.
    CallDepthExceeded { at: Addr },
    /// Control reached an address outside the program.
    PcOutOfRange { pc: u32 },
    /// The globals do not fit in the configured memory.
    MemoryTooSmall { need: usize, have: usize },
    /// A synthetic failure injected by a fault-injection harness at the
    /// named site. Never produced by the interpreter itself; exists so
    /// injected faults travel the same error paths real ones do while
    /// remaining distinguishable (and, unlike every real [`ExecError`],
    /// classified [`ErrorClass::Transient`]).
    Injected { site: &'static str },
}

/// Retry-eligibility classification of an error.
///
/// Every error the interpreter itself raises is a deterministic function
/// of `(program, inputs, config)`: re-running the same execution yields
/// the same fault, so retrying is wasted work — these are
/// [`ErrorClass::Permanent`]. Only environmental failures (injected
/// faults, caught panics, watchdog timeouts — classified by the layers
/// above) are [`ErrorClass::Transient`] and worth retrying.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// Deterministic: retrying the identical execution cannot succeed.
    Permanent,
    /// Environmental: a retry may succeed.
    Transient,
}

impl ErrorClass {
    /// `true` for [`ErrorClass::Transient`].
    #[must_use]
    pub fn is_transient(self) -> bool {
        matches!(self, ErrorClass::Transient)
    }
}

impl std::fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorClass::Permanent => write!(f, "permanent"),
            ErrorClass::Transient => write!(f, "transient"),
        }
    }
}

impl ExecError {
    /// Transient/permanent classification: every genuine interpreter
    /// error is deterministic and therefore [`ErrorClass::Permanent`];
    /// only [`ExecError::Injected`] is retry-eligible.
    #[must_use]
    pub fn class(&self) -> ErrorClass {
        match self {
            ExecError::Injected { .. } => ErrorClass::Transient,
            ExecError::OutOfFuel { .. }
            | ExecError::MemoryFault { .. }
            | ExecError::StackOverflow { .. }
            | ExecError::CallDepthExceeded { .. }
            | ExecError::PcOutOfRange { .. }
            | ExecError::MemoryTooSmall { .. } => ErrorClass::Permanent,
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::OutOfFuel { at } => write!(f, "out of fuel at {at}"),
            ExecError::MemoryFault { at, addr } => {
                write!(f, "memory fault at {at}: address {addr}")
            }
            ExecError::StackOverflow { at } => write!(f, "stack overflow at {at}"),
            ExecError::CallDepthExceeded { at } => write!(f, "call depth exceeded at {at}"),
            ExecError::PcOutOfRange { pc } => write!(f, "pc @{pc} out of range"),
            ExecError::MemoryTooSmall { need, have } => {
                write!(f, "memory too small: need {need} words, have {have}")
            }
            ExecError::Injected { site } => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A caller's state parked while a callee runs. The *current* frame's
/// registers live in a local of [`run`]'s hot loop, so per-instruction
/// register access never goes through the frame stack.
struct Suspended {
    regs: Vec<i64>,
    ret_pc: u32,
    ret_dst: Option<Reg>,
    saved_fp: i64,
    saved_sp: i64,
}

/// Execute a program to completion.
///
/// `inputs` supplies the byte contents of input streams `0..inputs.len()`
/// (reads past the end, or from unsupplied streams, yield −1).
///
/// # Errors
/// Returns [`ExecError`] on memory faults, fuel exhaustion, stack
/// overflow, or control escaping the program.
///
/// # Panics
/// Panics if `program` is malformed (e.g. dangling function indices);
/// programs produced by `branchlab-minic` + `branchlab-ir` lowering are
/// always well-formed.
pub fn run<H: ExecHooks>(
    program: &Program,
    config: &ExecConfig,
    inputs: &[&[u8]],
    hooks: &mut H,
) -> Result<Outcome, ExecError> {
    let globals = program.globals_words as usize;
    if globals > config.memory_words {
        return Err(ExecError::MemoryTooSmall {
            need: globals,
            have: config.memory_words,
        });
    }
    let mut mem = vec![0i64; config.memory_words];
    mem[..program.globals_init.len()].copy_from_slice(&program.globals_init);

    let entry_fn = program
        .meta
        .get(program.entry.0 as usize)
        .map(|m| m.func)
        .unwrap_or(FuncId(0));
    let entry_info = &program.funcs[entry_fn.0 as usize];
    let fp0 = globals as i64;
    let sp0 = fp0 + i64::from(entry_info.frame_words);
    if sp0 > config.memory_words as i64 {
        return Err(ExecError::StackOverflow { at: program.entry });
    }

    // The current activation's registers live in this local; suspended
    // callers are parked on `stack`. Keeping `regs` out of the frame
    // vector removes a bounds-checked `last_mut()` from every operand
    // access in the loop below.
    let mut regs = vec![0i64; entry_info.num_regs as usize];
    let mut stack: Vec<Suspended> = Vec::new();
    let mut fp = fp0;
    let mut sp = sp0;
    let mut pc = program.entry.0;

    let mut in_pos = [0usize; NUM_STREAMS];
    // Output volume tracks input volume for stream-processing programs;
    // pre-sizing (bounded) avoids repeated regrowth in `putc` loops.
    let out_cap = inputs
        .iter()
        .map(|data| data.len())
        .sum::<usize>()
        .clamp(64, 1 << 16);
    let mut outputs: Vec<Vec<u8>> = (0..NUM_STREAMS)
        .map(|_| Vec::with_capacity(out_cap))
        .collect();
    let mut stats = ExecStats::default();
    let code = &program.code;
    let meta = &program.meta;

    macro_rules! val {
        ($op:expr) => {
            match $op {
                Operand::Reg(r) => regs[r.0 as usize],
                Operand::Imm(v) => v,
            }
        };
    }

    let exit_value = loop {
        if stats.insts >= config.max_insts {
            return Err(ExecError::OutOfFuel { at: Addr(pc) });
        }
        let Some(inst) = code.get(pc as usize) else {
            return Err(ExecError::PcOutOfRange { pc });
        };
        stats.insts += 1;

        match inst {
            Inst::Alu { op, dst, a, b } => {
                let (a, b) = (val!(*a), val!(*b));
                regs[dst.0 as usize] = op.eval(a, b);
                pc += 1;
            }
            Inst::Cmp { cond, dst, a, b } => {
                let (a, b) = (val!(*a), val!(*b));
                regs[dst.0 as usize] = i64::from(cond.eval(a, b));
                pc += 1;
            }
            Inst::Mov { dst, src } => {
                let v = val!(*src);
                regs[dst.0 as usize] = v;
                pc += 1;
            }
            Inst::Ld { dst, base, offset } => {
                let addr = val!(*base).wrapping_add(*offset);
                let Some(&v) = usize::try_from(addr).ok().and_then(|a| mem.get(a)) else {
                    return Err(ExecError::MemoryFault { at: Addr(pc), addr });
                };
                regs[dst.0 as usize] = v;
                pc += 1;
            }
            Inst::St { src, base, offset } => {
                let v = val!(*src);
                let addr = val!(*base).wrapping_add(*offset);
                let Some(slot) = usize::try_from(addr).ok().and_then(|a| mem.get_mut(a)) else {
                    return Err(ExecError::MemoryFault { at: Addr(pc), addr });
                };
                *slot = v;
                pc += 1;
            }
            Inst::FrameAddr { dst, offset } => {
                regs[dst.0 as usize] = fp.wrapping_add(*offset);
                pc += 1;
            }
            Inst::In { dst, stream } => {
                let s = (val!(*stream) as usize) & (NUM_STREAMS - 1);
                let byte = inputs
                    .get(s)
                    .and_then(|data| data.get(in_pos[s]))
                    .copied()
                    .map_or(-1, i64::from);
                if byte >= 0 {
                    in_pos[s] += 1;
                }
                regs[dst.0 as usize] = byte;
                pc += 1;
            }
            Inst::Out { src, stream } => {
                let v = val!(*src);
                let s = (val!(*stream) as usize) & (NUM_STREAMS - 1);
                outputs[s].push(v as u8);
                pc += 1;
            }
            Inst::Br {
                cond,
                a,
                b,
                target,
                slots,
                likely,
            } => {
                let (a, b) = (val!(*a), val!(*b));
                let taken = cond.eval(a, b);
                let fallthrough = Addr(pc + 1 + u32::from(*slots));
                stats.branches += 1;
                stats.cond_branches += 1;
                stats.taken_cond += u64::from(taken);
                hooks.branch(&BranchEvent {
                    pc: Addr(pc),
                    kind: BranchKind::Cond,
                    taken,
                    target: *target,
                    fallthrough,
                    branch: meta[pc as usize].branch_id(),
                    likely: *likely,
                    cond: Some(*cond),
                });
                pc = if taken { target.0 } else { fallthrough.0 };
            }
            Inst::Jmp { target, slots } => {
                stats.branches += 1;
                stats.uncond_direct += 1;
                hooks.branch(&BranchEvent {
                    pc: Addr(pc),
                    kind: BranchKind::UncondDirect,
                    taken: true,
                    target: *target,
                    fallthrough: Addr(pc + 1 + u32::from(*slots)),
                    branch: meta[pc as usize].branch_id(),
                    likely: false,
                    cond: None,
                });
                pc = target.0;
            }
            Inst::JmpTable { sel, table } => {
                let sel = val!(*sel);
                let target = program.jump_tables[*table as usize].resolve(sel);
                stats.branches += 1;
                stats.uncond_indirect += 1;
                hooks.branch(&BranchEvent {
                    pc: Addr(pc),
                    kind: BranchKind::UncondIndirect,
                    taken: true,
                    target,
                    fallthrough: Addr(pc + 1),
                    branch: meta[pc as usize].branch_id(),
                    likely: false,
                    cond: None,
                });
                pc = target.0;
            }
            Inst::Call { func, args, dst } => {
                // `stack` holds suspended callers only, so current depth
                // is `stack.len() + 1` (the original frame-vector length).
                if stack.len() + 1 >= config.max_call_depth {
                    return Err(ExecError::CallDepthExceeded { at: Addr(pc) });
                }
                stats.calls += 1;
                hooks.call(Addr(pc), *func);
                let info = &program.funcs[func.0 as usize];
                let mut callee_regs = vec![0i64; info.num_regs as usize];
                for (i, r) in args.iter().enumerate() {
                    callee_regs[i] = regs[r.0 as usize];
                }
                let new_fp = sp;
                let new_sp = sp + i64::from(info.frame_words);
                if new_sp > config.memory_words as i64 {
                    return Err(ExecError::StackOverflow { at: Addr(pc) });
                }
                stack.push(Suspended {
                    regs: std::mem::replace(&mut regs, callee_regs),
                    ret_pc: pc + 1,
                    ret_dst: *dst,
                    saved_fp: fp,
                    saved_sp: sp,
                });
                fp = new_fp;
                sp = new_sp;
                pc = info.entry.0;
            }
            Inst::Ret { val } => {
                let v = match val {
                    Some(op) => val!(*op),
                    None => 0,
                };
                let Some(caller) = stack.pop() else {
                    // `main` returned: the machine halts; this is program
                    // termination, not a control transfer, so no ret hook.
                    break v;
                };
                fp = caller.saved_fp;
                sp = caller.saved_sp;
                hooks.ret(Addr(pc), Addr(caller.ret_pc));
                regs = caller.regs;
                if let Some(dst) = caller.ret_dst {
                    regs[dst.0 as usize] = v;
                }
                pc = caller.ret_pc;
            }
            Inst::Nop => pc += 1,
            Inst::Halt => break 0,
        }
    };

    Ok(Outcome {
        exit_value,
        outputs,
        stats,
    })
}

/// Convenience: execute with default limits and no hooks.
///
/// # Errors
/// Same as [`run`].
pub fn run_simple(program: &Program, inputs: &[&[u8]]) -> Result<Outcome, ExecError> {
    run(program, &ExecConfig::default(), inputs, &mut ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchlab_ir::lower;
    use branchlab_minic::compile;

    fn exec(src: &str, inputs: &[&[u8]]) -> Outcome {
        let m = compile(src).unwrap();
        let p = lower(&m).unwrap();
        run_simple(&p, inputs).unwrap()
    }

    #[test]
    fn returns_exit_value() {
        assert_eq!(exec("int main() { return 7; }", &[]).exit_value, 7);
    }

    #[test]
    fn arithmetic_and_locals() {
        let out = exec(
            "int main() { int x = 10; int y = 3; return x / y * 100 + x % y; }",
            &[],
        );
        assert_eq!(out.exit_value, 301);
    }

    #[test]
    fn loops_accumulate() {
        let out = exec(
            "int main() { int i; int s = 0; for (i = 1; i <= 100; i++) { s += i; } return s; }",
            &[],
        );
        assert_eq!(out.exit_value, 5050);
    }

    #[test]
    fn while_and_break_continue() {
        let src = r"
            int main() {
                int i = 0; int s = 0;
                while (1) {
                    i++;
                    if (i > 10) { break; }
                    if (i % 2 == 0) { continue; }
                    s += i;
                }
                return s; // 1+3+5+7+9
            }
        ";
        assert_eq!(exec(src, &[]).exit_value, 25);
    }

    #[test]
    fn recursion_fib() {
        let src = r"
            int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
            int main() { return fib(15); }
        ";
        assert_eq!(exec(src, &[]).exit_value, 610);
    }

    #[test]
    fn globals_and_arrays() {
        let src = r"
            int g = 5;
            int table[4] = {10, 20, 30};
            int main() {
                int buf[8];
                buf[3] = table[1] + g;
                g = buf[3];
                table[3] = 2;
                return g * table[3];
            }
        ";
        assert_eq!(exec(src, &[]).exit_value, 50);
    }

    #[test]
    fn io_echo_shifts_bytes() {
        let out = exec(
            "int main() { int c; while ((c = getc(0)) != -1) { putc(1, c + 1); } return 0; }",
            &[b"abc"],
        );
        assert_eq!(out.outputs[1], b"bcd");
    }

    #[test]
    fn multiple_input_streams() {
        let src = r"
            int main() {
                int a; int b;
                while ((a = getc(0)) != -1 && (b = getc(1)) != -1) {
                    if (a != b) { return 1; }
                }
                return 0;
            }
        ";
        let m = compile(src).unwrap();
        let p = lower(&m).unwrap();
        assert_eq!(run_simple(&p, &[b"same", b"same"]).unwrap().exit_value, 0);
        assert_eq!(run_simple(&p, &[b"same", b"s0me"]).unwrap().exit_value, 1);
    }

    #[test]
    fn switch_fall_through_executes() {
        let src = r"
            int main() {
                int x = 0;
                switch (getc(0)) {
                    case 'a': x += 1;
                    case 'b': x += 10; break;
                    case 'c': x += 100; break;
                    default: x += 1000;
                }
                return x;
            }
        ";
        let m = compile(src).unwrap();
        let p = lower(&m).unwrap();
        assert_eq!(run_simple(&p, &[b"a"]).unwrap().exit_value, 11);
        assert_eq!(run_simple(&p, &[b"b"]).unwrap().exit_value, 10);
        assert_eq!(run_simple(&p, &[b"c"]).unwrap().exit_value, 100);
        assert_eq!(run_simple(&p, &[b"z"]).unwrap().exit_value, 1000);
    }

    #[test]
    fn string_literals_are_readable() {
        let src = r#"
            int main() {
                int s = "hey";
                int i = 0;
                while (s[i] != 0) { putc(1, s[i]); i++; }
                return i;
            }
        "#;
        let out = exec(src, &[]);
        assert_eq!(out.outputs[1], b"hey");
        assert_eq!(out.exit_value, 3);
    }

    #[test]
    fn stats_count_instructions_and_branches() {
        let out = exec(
            "int main() { int i; int s = 0; for (i = 0; i < 10; i++) { s += i; } return s; }",
            &[],
        );
        assert!(out.stats.insts > 30, "{:?}", out.stats);
        // 11 condition evaluations (10 enter + 1 exit).
        assert_eq!(out.stats.cond_branches, 11);
        assert!(out.stats.branches >= out.stats.cond_branches);
        assert!(out.stats.control_fraction() > 0.1);
    }

    #[test]
    fn branch_events_are_consistent() {
        struct Check {
            n: u64,
        }
        impl ExecHooks for Check {
            fn branch(&mut self, ev: &BranchEvent) {
                self.n += 1;
                assert_eq!(
                    ev.next_pc(),
                    if ev.taken { ev.target } else { ev.fallthrough }
                );
                if ev.kind != BranchKind::Cond {
                    assert!(ev.taken);
                }
            }
        }
        let m = compile(
            "int main() { int i; int s = 0; for (i = 0; i < 5; i++) { s += getc(0); } return s; }",
        )
        .unwrap();
        let p = lower(&m).unwrap();
        let mut check = Check { n: 0 };
        let out = run(&p, &ExecConfig::default(), &[b"abcde"], &mut check).unwrap();
        assert_eq!(check.n, out.stats.branches);
    }

    #[test]
    fn paired_hooks_both_observe() {
        #[derive(Default)]
        struct Count(u64);
        impl ExecHooks for Count {
            fn branch(&mut self, _: &BranchEvent) {
                self.0 += 1;
            }
        }
        let m = compile("int main() { int i; for (i = 0; i < 3; i++) { } return 0; }").unwrap();
        let p = lower(&m).unwrap();
        let mut a = Count::default();
        let mut b = Count::default();
        run(&p, &ExecConfig::default(), &[], &mut (&mut a, &mut b)).unwrap();
        assert!(a.0 > 0);
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn every_real_error_is_permanent_and_injected_is_transient() {
        let at = Addr(0);
        for e in [
            ExecError::OutOfFuel { at },
            ExecError::MemoryFault { at, addr: -1 },
            ExecError::StackOverflow { at },
            ExecError::CallDepthExceeded { at },
            ExecError::PcOutOfRange { pc: 9 },
            ExecError::MemoryTooSmall { need: 2, have: 1 },
        ] {
            assert_eq!(e.class(), ErrorClass::Permanent, "{e}");
            assert!(!e.class().is_transient());
        }
        let inj = ExecError::Injected { site: "compile" };
        assert_eq!(inj.class(), ErrorClass::Transient);
        assert!(inj.class().is_transient());
        assert_eq!(inj.to_string(), "injected fault at compile");
        assert_eq!(ErrorClass::Permanent.to_string(), "permanent");
        assert_eq!(ErrorClass::Transient.to_string(), "transient");
    }

    #[test]
    fn out_of_fuel_stops_infinite_loop() {
        let m = compile("int main() { while (1) { } return 0; }").unwrap();
        let p = lower(&m).unwrap();
        let cfg = ExecConfig {
            max_insts: 1000,
            ..ExecConfig::default()
        };
        assert!(matches!(
            run(&p, &cfg, &[], &mut ()),
            Err(ExecError::OutOfFuel { .. })
        ));
    }

    #[test]
    fn memory_fault_on_wild_store() {
        let m = compile("int a[4]; int main() { a[-5000000] = 1; return 0; }").unwrap();
        let p = lower(&m).unwrap();
        assert!(matches!(
            run_simple(&p, &[]),
            Err(ExecError::MemoryFault { .. })
        ));
    }

    #[test]
    fn deep_recursion_hits_depth_limit() {
        let src = "int f(int n) { return f(n + 1); } int main() { return f(0); }";
        let m = compile(src).unwrap();
        let p = lower(&m).unwrap();
        let cfg = ExecConfig {
            max_call_depth: 64,
            ..ExecConfig::default()
        };
        assert!(matches!(
            run(&p, &cfg, &[], &mut ()),
            Err(ExecError::CallDepthExceeded { .. })
        ));
    }

    #[test]
    fn frame_arrays_are_isolated_per_activation() {
        let src = r"
            int f(int n) {
                int buf[4];
                buf[0] = n;
                if (n > 0) { f(n - 1); }
                return buf[0]; // must still be n after the recursive call
            }
            int main() { return f(3); }
        ";
        assert_eq!(exec(src, &[]).exit_value, 3);
    }

    #[test]
    fn halt_stops_with_zero() {
        let out = exec("int main() { putc(0, 'x'); halt(); }", &[]);
        assert_eq!(out.exit_value, 0);
        assert_eq!(out.outputs[0], b"x");
    }

    #[test]
    fn logical_operators_short_circuit() {
        let src = r"
            int main() {
                int c = 0;
                if (0 && (c = getc(0)) != -1) { return 99; }
                if (1 || (c = getc(0)) != -1) { return c; }
                return -2;
            }
        ";
        // Stream has one byte; both conditions must avoid reading it.
        assert_eq!(exec(src, &[b"a"]).exit_value, 0);
    }

    #[test]
    fn determinism_same_input_same_everything() {
        let src = r"
            int main() {
                int c; int h = 0;
                while ((c = getc(0)) != -1) { h = h * 31 + c; putc(1, h & 127); }
                return h & 0xffff;
            }
        ";
        let m = compile(src).unwrap();
        let p = lower(&m).unwrap();
        let a = run_simple(&p, &[b"determinism"]).unwrap();
        let b = run_simple(&p, &[b"determinism"]).unwrap();
        assert_eq!(a.exit_value, b.exit_value);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.stats, b.stats);
    }
}
