//! Deferred sweep evaluation: studies enqueue their predictor and
//! return-address-stack configurations into a [`SweepBatch`], then one
//! pass over the benchmark's event stream scores every configuration
//! point at once — the paper's own trace-driven shape (trace the
//! program once, score all schemes off the recording).
//!
//! With [`ExperimentConfig::use_trace_replay`] set, the pass replays
//! the cached trace, so a whole ablation study set costs one capture
//! plus one decode per benchmark. In baseline mode each enqueued group
//! keeps its own live interpreter pass (the pre-replay cost shape), and
//! [`ExperimentConfig::sweep_per_point`] degrades that further to one
//! full compile→profile→interpret pipeline per configuration point —
//! the O(points × interpret) re-interpretation baseline that
//! `replay_bench` measures trace replay against.
//!
//! ## Parallel scoring
//!
//! With more than one sweep thread resolved
//! ([`ExperimentConfig::resolved_sweep_threads`]), the replay pass
//! shards its sweep points across `std::thread::scope` workers. The
//! captured [`TraceBuf`]s are shared read-only; each work batch (a
//! chunk of predictors, or the return-address-stack set) re-decodes
//! the stream through its own [`BlockIter`], so every sweep point
//! still observes the complete event sequence in capture order — which
//! makes the merged results **bit-identical to the serial path by
//! construction**, independent of worker count and scheduling. Workers
//! claim batches from a shared queue (dynamic load balancing; the
//! claims beyond each worker's first are counted as
//! `stolen_batches`), and results are merged back in plan order.
//!
//! ## Lane planning
//!
//! Before scoring, the replay pass consults every sweep point's
//! [`BranchPredictor::lane_spec`]: compatible fresh configurations
//! (same [`LaneFamilyKey`]) are packed — up to [`MAX_LANES`] at a
//! time — into bit-parallel [`LaneFamily`] work items that score all
//! their lanes in one walk of the event stream, while incompatible or
//! stateful points keep today's scalar path. Families ride the same
//! work queue as scalar chunks (thread parallelism multiplies lane
//! parallelism), and results merge back by flattened plan index, so
//! every table is byte-identical to the scalar path at any thread
//! count. [`ExperimentConfig::use_lane_scoring`] (on by default)
//! gates the planner for baseline measurements.
//!
//! [`TraceBuf`]: branchlab_trace::TraceBuf

use std::sync::Mutex;
use std::time::Instant;

use branchlab_interp::run;
use branchlab_ir::{lower, Addr, FuncId};
use branchlab_predict::{
    BranchPredictor, Evaluator, LaneFamily, LaneFamilyKey, LaneSpec, PredStats, ReturnAddressStack,
    MAX_LANES,
};
use branchlab_profile::profile_module_with;
use branchlab_telemetry::SpanLink;
use branchlab_trace::{BlockIter, BranchEvent, CallRet, ExecHooks, TraceBuf};
use branchlab_workloads::Benchmark;

use crate::harness::{eval_predictors_live, ExperimentConfig, ExperimentError};
use crate::lane_stats::{note_lanes, LaneStats};
use crate::sweep_stats::{note_sweep, SweepStats};
use crate::trace_replay::{captured_runs, note_replay, replay_runs_traced};

/// Handle to one enqueued predictor group (one study's sweep points);
/// redeem with [`SweepResults::stats`].
#[derive(Copy, Clone, Debug)]
pub struct PredTicket(usize);

/// Handle to one enqueued set of return-address stacks; redeem with
/// [`SweepResults::ras`].
#[derive(Copy, Clone, Debug)]
pub struct RasTicket {
    start: usize,
    len: usize,
}

/// A deferred evaluation over one benchmark's event stream.
///
/// Enqueue predictor groups and return-address stacks, then score
/// everything in one pass over the benchmark's captured trace:
///
/// ```
/// use branchlab_experiments::{ExperimentConfig, SweepBatch};
/// use branchlab_predict::{Cbtb, Sbtb};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let bench = branchlab_workloads::benchmark("wc").unwrap();
/// let config = ExperimentConfig::test();
///
/// let mut batch = SweepBatch::new(bench, &config);
/// let btbs = batch.eval(vec![Box::new(Sbtb::paper()), Box::new(Cbtb::paper())]);
/// let stacks = batch.ras(&[8]);
///
/// let results = batch.run()?;
/// let stats = results.stats(btbs);
/// assert_eq!(stats.len(), 2);
/// assert!(stats[0].accuracy() > 0.5);
/// assert!(results.ras(stacks)[0].returns > 0);
/// # Ok(())
/// # }
/// ```
pub struct SweepBatch<'a> {
    bench: &'a Benchmark,
    config: &'a ExperimentConfig,
    groups: Vec<Vec<Box<dyn BranchPredictor>>>,
    ras: Vec<ReturnAddressStack>,
    trace: Option<SpanLink>,
}

impl<'a> SweepBatch<'a> {
    /// An empty batch over `bench`'s conventional binary.
    #[must_use]
    pub fn new(bench: &'a Benchmark, config: &'a ExperimentConfig) -> Self {
        SweepBatch {
            bench,
            config,
            groups: Vec::new(),
            ras: Vec::new(),
            trace: None,
        }
    }

    /// Record this batch's capture/score/merge phases — and each
    /// parallel scoring shard — as child spans under `parent` (see
    /// [`branchlab_telemetry::trace`]). Off by default, so offline
    /// sweeps pay nothing.
    pub fn set_trace_parent(&mut self, parent: SpanLink) {
        self.trace = Some(parent);
    }

    /// The benchmark this batch evaluates.
    #[must_use]
    pub fn bench(&self) -> &'a Benchmark {
        self.bench
    }

    /// The configuration this batch evaluates under.
    #[must_use]
    pub fn config(&self) -> &'a ExperimentConfig {
        self.config
    }

    /// Enqueue one group of predictors (typically one study's sweep
    /// points), scored identically to [`eval_predictors`].
    ///
    /// [`eval_predictors`]: crate::harness::eval_predictors
    pub fn eval(&mut self, predictors: Vec<Box<dyn BranchPredictor>>) -> PredTicket {
        self.groups.push(predictors);
        PredTicket(self.groups.len() - 1)
    }

    /// Enqueue return-address stacks of the given depths (they consume
    /// the trace's call/return events).
    pub fn ras(&mut self, depths: &[usize]) -> RasTicket {
        let start = self.ras.len();
        self.ras
            .extend(depths.iter().map(|&d| ReturnAddressStack::new(d)));
        RasTicket {
            start,
            len: depths.len(),
        }
    }

    /// Execute every enqueued evaluation and hand back the results.
    ///
    /// # Errors
    /// Returns [`ExperimentError`] on compile/lower/run/replay failure.
    pub fn run(self) -> Result<SweepResults, ExperimentError> {
        if self.config.use_trace_replay {
            self.run_replay()
        } else {
            self.run_live()
        }
    }

    /// One replay pass feeds every evaluator, lane family, and stack
    /// at once — on one thread, or sharded across sweep workers (see
    /// the module docs); the results are bit-identical either way.
    fn run_replay(self) -> Result<SweepResults, ExperimentError> {
        let trace = self.trace;
        let runs = {
            let mut span = trace.as_ref().map(|t| t.child("sweep_capture"));
            let runs = captured_runs(self.bench, self.config)?;
            if let Some(s) = span.as_mut() {
                s.add_work(runs.iter().map(TraceBuf::events).sum());
            }
            runs
        };
        let group_sizes: Vec<usize> = self.groups.iter().map(Vec::len).collect();
        let points: Vec<Box<dyn BranchPredictor>> = self.groups.into_iter().flatten().collect();
        let n_points = points.len();
        let (scalars, mut families) = if self.config.use_lane_scoring {
            let (scalars, families) = plan_lanes(points);
            note_lanes(&LaneStats {
                passes: 1,
                families: families.len() as u64,
                lanes: families.iter().map(|f| f.indices.len() as u64).sum(),
                scalar_points: scalars.len() as u64,
                // Every family walks the complete stream exactly once.
                events: families.len() as u64 * runs.iter().map(TraceBuf::events).sum::<u64>(),
            });
            (scalars, families)
        } else {
            (points.into_iter().enumerate().collect(), Vec::new())
        };
        let (scalar_idx, boxes): (Vec<usize>, Vec<Box<dyn BranchPredictor>>) =
            scalars.into_iter().unzip();
        let mut evals: BoxedEvals = boxes.into_iter().map(Evaluator::new).collect();
        let mut ras = self.ras;
        let threads = self.config.resolved_sweep_threads();
        let work_items = evals.len() + families.len() + usize::from(!ras.is_empty());
        if threads > 1 && work_items > 1 {
            (evals, families, ras) = score_parallel(
                &runs,
                evals,
                families,
                ras,
                n_points,
                threads,
                trace.as_ref(),
            )?;
        } else {
            let mut span = trace.as_ref().map(|t| t.child("sweep_score"));
            if let Some(s) = span.as_mut() {
                s.arg("points", (n_points + ras.len()) as u64);
                s.add_work(runs.iter().map(TraceBuf::events).sum());
            }
            let mut sink = BatchSink {
                evals: &mut evals,
                families: &mut families,
                ras: &mut ras,
                block: Vec::with_capacity(EVENT_BLOCK),
            };
            let link = span.as_ref().map(branchlab_telemetry::SpanHandle::link);
            replay_runs_traced(&runs, &mut sink, link.as_ref())?;
            sink.drain_block();
        }
        // Merge scalar and lane results back by flattened plan index,
        // so the regrouped tables are independent of how the planner
        // split the points.
        let mut out: Vec<Option<PredStats>> = vec![None; n_points];
        for (pos, e) in evals.into_iter().enumerate() {
            out[scalar_idx[pos]] = Some(e.stats);
        }
        for work in families {
            let indices = work.indices;
            for (i, s) in indices.into_iter().zip(work.family.finish()) {
                out[i] = Some(s);
            }
        }
        let mut stats = out
            .into_iter()
            .map(|s| s.expect("every sweep point was scored"));
        let groups = group_sizes
            .into_iter()
            .map(|n| stats.by_ref().take(n).collect())
            .collect();
        Ok(SweepResults { groups, ras })
    }

    /// The re-interpretation baseline: one live pass per group (the
    /// pre-replay cost shape), or one full pipeline per predictor when
    /// [`ExperimentConfig::sweep_per_point`] is set.
    fn run_live(self) -> Result<SweepResults, ExperimentError> {
        let mut groups = Vec::with_capacity(self.groups.len());
        for preds in self.groups {
            if self.config.sweep_per_point {
                let mut stats = Vec::with_capacity(preds.len());
                for p in preds {
                    // The pre-replay methodology, reconstructed point
                    // for point: every sweep configuration re-runs the
                    // full compile→profile→interpret pipeline (the
                    // profile feeds the point's predictor construction
                    // in that methodology; here the batch already built
                    // its predictors, so only the cost shape matters).
                    let module = self.bench.compile()?;
                    let _profile = profile_module_with(
                        &module,
                        &self.bench.runs(self.config.scale, self.config.seed),
                        &self.config.exec_config(),
                    )?;
                    stats.extend(eval_predictors_live(self.bench, self.config, vec![p])?);
                }
                groups.push(stats);
            } else {
                groups.push(eval_predictors_live(self.bench, self.config, preds)?);
            }
        }
        let mut ras = self.ras;
        if !ras.is_empty() {
            let module = self.bench.compile()?;
            let program = lower(&module)?;
            let exec_cfg = self.config.exec_config();
            for r in &mut ras {
                for streams in self.bench.runs(self.config.scale, self.config.seed) {
                    let refs: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
                    run(&program, &exec_cfg, &refs, r)?;
                }
            }
        }
        Ok(SweepResults { groups, ras })
    }
}

/// Results of a [`SweepBatch`], indexed by the tickets it issued.
pub struct SweepResults {
    groups: Vec<Vec<PredStats>>,
    ras: Vec<ReturnAddressStack>,
}

impl SweepResults {
    /// The scored statistics for one enqueued predictor group, in
    /// enqueue order.
    #[must_use]
    pub fn stats(&self, ticket: PredTicket) -> &[PredStats] {
        &self.groups[ticket.0]
    }

    /// The driven return-address stacks for one enqueued depth set.
    #[must_use]
    pub fn ras(&self, ticket: RasTicket) -> &[ReturnAddressStack] {
        &self.ras[ticket.start..ticket.start + ticket.len]
    }
}

/// One packed lane family plus the flattened plan indices its lanes'
/// results merge back into ([`LaneFamily::finish`] returns stats in
/// lane order, which is exactly `indices` order by construction).
struct LaneFamilyWork {
    indices: Vec<usize>,
    family: LaneFamily,
}

/// Group compatible sweep points into lane families. Points whose
/// [`BranchPredictor::lane_spec`] is `None` (stateful, instrumented,
/// or an unpackable scheme), points with no [`LaneFamilyKey`], and
/// families that end up with a single member stay scalar — the
/// returned `(flattened index, predictor)` list. Bucketing is
/// first-fit in plan order and capped at [`MAX_LANES`] per family
/// (overflow opens another family), so the plan is deterministic.
#[allow(clippy::type_complexity)]
fn plan_lanes(
    points: Vec<Box<dyn BranchPredictor>>,
) -> (Vec<(usize, Box<dyn BranchPredictor>)>, Vec<LaneFamilyWork>) {
    struct Bucket {
        key: LaneFamilyKey,
        indices: Vec<usize>,
        specs: Vec<LaneSpec>,
        boxes: Vec<Box<dyn BranchPredictor>>,
    }
    let mut scalars: Vec<(usize, Box<dyn BranchPredictor>)> = Vec::new();
    let mut buckets: Vec<Bucket> = Vec::new();
    for (i, p) in points.into_iter().enumerate() {
        let keyed = p.lane_spec().and_then(|s| s.family_key().map(|k| (s, k)));
        match keyed {
            Some((spec, key)) => {
                match buckets
                    .iter_mut()
                    .find(|b| b.key == key && b.indices.len() < MAX_LANES)
                {
                    Some(b) => {
                        b.indices.push(i);
                        b.specs.push(spec);
                        b.boxes.push(p);
                    }
                    None => buckets.push(Bucket {
                        key,
                        indices: vec![i],
                        specs: vec![spec],
                        boxes: vec![p],
                    }),
                }
            }
            None => scalars.push((i, p)),
        }
    }
    let mut families = Vec::new();
    for b in buckets {
        if b.indices.len() >= 2 {
            families.push(LaneFamilyWork {
                indices: b.indices,
                family: LaneFamily::new(&b.specs),
            });
        } else {
            // A one-lane family has no amortization to offer; give the
            // point its predictor back.
            scalars.extend(b.indices.into_iter().zip(b.boxes));
        }
    }
    scalars.sort_by_key(|(i, _)| *i);
    (scalars, families)
}

/// Branch events buffered per fan-out block. Each evaluator consumes a
/// long run of events with its tables cache-hot — round-robining tens
/// of predictors per event thrashes L1 and costs several times the
/// per-event work of a dedicated live pass.
const EVENT_BLOCK: usize = 16 * 1024;

/// Fans one event stream out to every enqueued sink, block-wise for
/// the branch evaluators.
///
/// Blocking is invisible to the results: each evaluator still sees the
/// exact event sequence in order, and branch events never interact with
/// the call/return stream (predictors consume only `branch`, stacks
/// only `call`/`ret`), so delivering them on different schedules cannot
/// change any statistic.
struct BatchSink<'a> {
    evals: &'a mut [Evaluator<Box<dyn BranchPredictor>>],
    families: &'a mut [LaneFamilyWork],
    ras: &'a mut [ReturnAddressStack],
    block: Vec<BranchEvent>,
}

impl BatchSink<'_> {
    fn drain_block(&mut self) {
        for e in self.evals.iter_mut() {
            e.branch_block(&self.block);
        }
        for f in self.families.iter_mut() {
            f.family.eval_block(&self.block);
        }
        self.block.clear();
    }
}

impl ExecHooks for BatchSink<'_> {
    fn branch(&mut self, ev: &BranchEvent) {
        self.block.push(*ev);
        if self.block.len() == EVENT_BLOCK {
            self.drain_block();
        }
    }

    fn call(&mut self, from: Addr, callee: FuncId) {
        for r in self.ras.iter_mut() {
            r.call(from, callee);
        }
    }

    fn ret(&mut self, from: Addr, to: Addr) {
        for r in self.ras.iter_mut() {
            r.ret(from, to);
        }
    }
}

/// The flattened evaluator list the executor shards and reassembles.
type BoxedEvals = Vec<Evaluator<Box<dyn BranchPredictor>>>;

/// One unit of parallel sweep work. Each item owns its sinks and
/// re-decodes the shared trace through its own [`BlockIter`], so items
/// never contend on anything but the queue lock.
enum WorkItem {
    /// A chunk of the scalar evaluator list, with the index of its
    /// first evaluator for plan-order reassembly.
    Preds { start: usize, evals: BoxedEvals },
    /// One packed lane family — all its lanes score in a single walk
    /// of the stream, so it travels as one indivisible item.
    Lanes { work: LaneFamilyWork },
    /// The full return-address-stack set (stacks consume only the
    /// call/return half of the stream, so they travel as one item).
    Ras { stacks: Vec<ReturnAddressStack> },
}

/// What a worker hands back after scoring an item.
enum DoneItem {
    Preds { start: usize, evals: BoxedEvals },
    Lanes { work: LaneFamilyWork },
    Ras { stacks: Vec<ReturnAddressStack> },
}

/// Score one work item over the shared trace. Every item consumes the
/// complete event stream in capture order, so its statistics are
/// independent of which worker runs it and when.
fn score_item(
    runs: &[TraceBuf],
    item: WorkItem,
    trace: Option<&SpanLink>,
) -> Result<DoneItem, ExperimentError> {
    let started = Instant::now();
    let points = match &item {
        WorkItem::Preds { evals, .. } => evals.len(),
        WorkItem::Lanes { work } => work.family.lanes(),
        WorkItem::Ras { stacks } => stacks.len(),
    };
    let mut span = trace.map(|t| t.child("score_shard"));
    if let Some(s) = span.as_mut() {
        s.arg("points", points as u64);
    }
    let mut iter = BlockIter::with_block_events(runs, EVENT_BLOCK);
    if let Some(s) = span.as_ref() {
        iter.set_trace_parent(&s.link());
    }
    let done = match item {
        WorkItem::Preds { start, mut evals } => {
            while let Some(block) = iter
                .next_block()
                .map_err(|e| ExperimentError::Trace(e.to_string()))?
            {
                for e in &mut evals {
                    e.branch_block(block.branches);
                }
            }
            DoneItem::Preds { start, evals }
        }
        WorkItem::Lanes { mut work } => {
            while let Some(block) = iter
                .next_block()
                .map_err(|e| ExperimentError::Trace(e.to_string()))?
            {
                work.family.eval_block(block.branches);
            }
            DoneItem::Lanes { work }
        }
        WorkItem::Ras { mut stacks } => {
            while let Some(block) = iter
                .next_block()
                .map_err(|e| ExperimentError::Trace(e.to_string()))?
            {
                for &cr in block.callrets {
                    for r in &mut stacks {
                        match cr {
                            CallRet::Call { from, callee } => r.call(from, callee),
                            CallRet::Ret { from, to } => r.ret(from, to),
                        }
                    }
                }
            }
            DoneItem::Ras { stacks }
        }
    };
    if let Some(s) = span.as_mut() {
        s.add_work(iter.delivered());
    }
    note_replay(
        iter.delivered(),
        started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
    );
    Ok(done)
}

/// The parallel sweep executor: shard the scalar evaluators (plus the
/// lane families and the RAS set) into work items, score them on
/// `threads` scoped workers claiming from a shared queue, and merge
/// the results back into the original order.
///
/// Chunking targets ~3 batches per worker so a slow chunk can be
/// balanced out by the queue, without paying a per-point decode.
/// Lane families are already event-walk-sized items and are sharded
/// as-is — thread parallelism multiplies lane parallelism.
#[allow(clippy::type_complexity)]
fn score_parallel(
    runs: &[TraceBuf],
    evals: BoxedEvals,
    families: Vec<LaneFamilyWork>,
    ras: Vec<ReturnAddressStack>,
    total_points: usize,
    threads: usize,
    trace: Option<&SpanLink>,
) -> Result<(BoxedEvals, Vec<LaneFamilyWork>, Vec<ReturnAddressStack>), ExperimentError> {
    let n_scalar = evals.len();
    let chunk = n_scalar.div_ceil(threads * 3).max(1);
    let mut queue: Vec<WorkItem> = Vec::new();
    if !ras.is_empty() {
        queue.push(WorkItem::Ras { stacks: ras });
    }
    for work in families {
        queue.push(WorkItem::Lanes { work });
    }
    let mut rest = evals;
    let mut start = 0;
    while !rest.is_empty() {
        let tail = rest.split_off(chunk.min(rest.len()));
        queue.push(WorkItem::Preds { start, evals: rest });
        start += chunk;
        rest = tail;
    }
    let n_batches = queue.len() as u64;
    let workers = threads.min(queue.len()).max(1);

    let queue = Mutex::new(queue);
    let done: Mutex<Vec<DoneItem>> = Mutex::new(Vec::new());
    let first_error: Mutex<Option<ExperimentError>> = Mutex::new(None);
    let stolen = std::sync::atomic::AtomicU64::new(0);
    let busy_us = std::sync::atomic::AtomicU64::new(0);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let started = Instant::now();
                let mut claims = 0u64;
                loop {
                    if first_error.lock().is_ok_and(|e| e.is_some()) {
                        break;
                    }
                    let item = queue.lock().ok().and_then(|mut q| q.pop());
                    let Some(item) = item else { break };
                    claims += 1;
                    match score_item(runs, item, trace) {
                        Ok(result) => {
                            if let Ok(mut d) = done.lock() {
                                d.push(result);
                            }
                        }
                        Err(e) => {
                            if let Ok(mut slot) = first_error.lock() {
                                slot.get_or_insert(e);
                            }
                            break;
                        }
                    }
                }
                stolen.fetch_add(
                    claims.saturating_sub(1),
                    std::sync::atomic::Ordering::Relaxed,
                );
                busy_us.fetch_add(
                    started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
            });
        }
    });

    if let Some(e) = first_error
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        return Err(e);
    }

    let merge_started = Instant::now();
    let _merge_span = trace.map(|t| t.child("sweep_merge"));
    let done = done
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut out_evals: Vec<Option<Evaluator<Box<dyn BranchPredictor>>>> = Vec::new();
    out_evals.resize_with(n_scalar, || None);
    let mut out_families = Vec::new();
    let mut out_ras = Vec::new();
    for item in done {
        match item {
            DoneItem::Preds { start, evals } => {
                for (i, e) in evals.into_iter().enumerate() {
                    out_evals[start + i] = Some(e);
                }
            }
            // Families carry their own flattened plan indices, so
            // completion order is irrelevant to the merged tables.
            DoneItem::Lanes { work } => out_families.push(work),
            DoneItem::Ras { stacks } => out_ras = stacks,
        }
    }
    let out_evals: Vec<_> = out_evals
        .into_iter()
        .map(|e| e.expect("every scored work item was merged"))
        .collect();

    note_sweep(&SweepStats {
        sweeps: 1,
        workers: workers as u64,
        points: total_points as u64,
        batches: n_batches,
        stolen_batches: stolen.into_inner(),
        busy_us: busy_us.into_inner(),
        merge_us: merge_started
            .elapsed()
            .as_micros()
            .min(u128::from(u64::MAX)) as u64,
    });
    Ok((out_evals, out_families, out_ras))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::eval_predictors;
    use branchlab_predict::{AlwaysTaken, Cbtb, Sbtb};
    use branchlab_workloads::benchmark;

    #[test]
    fn batched_stats_match_individual_eval_calls() {
        let bench = benchmark("wc").unwrap();
        let cfg = ExperimentConfig::test();
        let mut batch = SweepBatch::new(bench, &cfg);
        let a = batch.eval(vec![Box::new(Sbtb::paper()), Box::new(AlwaysTaken)]);
        let b = batch.eval(vec![Box::new(Cbtb::paper())]);
        let r = batch.ras(&[4, 64]);
        let results = batch.run().unwrap();

        let solo_a = eval_predictors(
            bench,
            &cfg,
            vec![Box::new(Sbtb::paper()), Box::new(AlwaysTaken)],
        )
        .unwrap();
        let solo_b = eval_predictors(bench, &cfg, vec![Box::new(Cbtb::paper())]).unwrap();
        assert_eq!(results.stats(a), solo_a.as_slice());
        assert_eq!(results.stats(b), solo_b.as_slice());
        let ras = results.ras(r);
        assert_eq!(ras.len(), 2);
        assert!(ras[0].returns > 0);
        assert!(ras[1].accuracy() >= ras[0].accuracy());
    }

    #[test]
    fn parallel_replay_is_bit_identical_to_serial() {
        let bench = benchmark("grep").unwrap();
        fn plan<'a>(
            bench: &'a Benchmark,
            cfg: &'a ExperimentConfig,
        ) -> (SweepBatch<'a>, PredTicket, PredTicket, RasTicket) {
            let mut batch = SweepBatch::new(bench, cfg);
            let a = batch.eval(vec![
                Box::new(Sbtb::paper()) as Box<dyn BranchPredictor>,
                Box::new(Cbtb::paper()),
                Box::new(AlwaysTaken),
            ]);
            let b = batch.eval(vec![Box::new(Cbtb::paper()) as Box<dyn BranchPredictor>]);
            let r = batch.ras(&[4, 64]);
            (batch, a, b, r)
        }
        let serial_cfg = ExperimentConfig {
            sweep_threads: Some(1),
            ..ExperimentConfig::test()
        };
        let (batch, sa, sb, sr) = plan(bench, &serial_cfg);
        let serial = batch.run().unwrap();
        for threads in [2, 3, 7] {
            let cfg = ExperimentConfig {
                sweep_threads: Some(threads),
                ..ExperimentConfig::test()
            };
            let before = SweepStats::snapshot();
            let (batch, pa, pb, pr) = plan(bench, &cfg);
            let parallel = batch.run().unwrap();
            assert_eq!(parallel.stats(pa), serial.stats(sa), "threads={threads}");
            assert_eq!(parallel.stats(pb), serial.stats(sb), "threads={threads}");
            let (ser, par) = (serial.ras(sr), parallel.ras(pr));
            assert_eq!(par.len(), ser.len());
            for (p, s) in par.iter().zip(ser) {
                assert_eq!((p.returns, p.correct), (s.returns, s.correct));
            }
            let delta = SweepStats::snapshot().since(&before);
            assert_eq!(delta.sweeps, 1, "threads={threads}");
            assert_eq!(delta.points, 4, "threads={threads}");
            assert!(delta.batches >= 2, "threads={threads} {delta:?}");
        }
    }

    #[test]
    fn traced_batch_records_phase_and_shard_spans() {
        use branchlab_telemetry::TraceContext;
        let bench = benchmark("wc").unwrap();

        // Parallel path: capture + one span per scoring shard + merge,
        // with the decode loop annotated from the trace crate.
        let cfg = ExperimentConfig {
            sweep_threads: Some(2),
            ..ExperimentConfig::test()
        };
        let ctx = TraceContext::new();
        let root = ctx.root("compute");
        let mut batch = SweepBatch::new(bench, &cfg);
        batch.set_trace_parent(root.link());
        let _ = batch.eval(vec![Box::new(Sbtb::paper()), Box::new(Cbtb::paper())]);
        let _ = batch.ras(&[8]);
        batch.run().unwrap();
        let root_id = root.id();
        drop(root);
        let trace = ctx.finish();
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        for phase in [
            "sweep_capture",
            "score_shard",
            "sweep_merge",
            "block_replay",
        ] {
            assert!(names.contains(&phase), "missing {phase} in {names:?}");
        }
        let shards: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.name == "score_shard")
            .collect();
        assert!(shards.len() >= 2, "expected ≥2 shards, got {shards:?}");
        assert!(shards.iter().all(|s| s.parent == Some(root_id)));
        assert!(shards.iter().all(|s| s.work > 0), "shards carry event work");
        let points: u64 = shards.iter().filter_map(|s| s.arg_value("points")).sum();
        assert_eq!(points, 3, "2 predictors + 1 RAS across shards");

        // Serial path: one sweep_score span with per-run replay spans
        // recorded by the trace crate underneath it.
        let cfg = ExperimentConfig {
            sweep_threads: Some(1),
            ..ExperimentConfig::test()
        };
        let ctx = TraceContext::new();
        let root = ctx.root("compute");
        let mut batch = SweepBatch::new(bench, &cfg);
        batch.set_trace_parent(root.link());
        let _ = batch.eval(vec![Box::new(Sbtb::paper())]);
        batch.run().unwrap();
        drop(root);
        let trace = ctx.finish();
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"sweep_score"), "{names:?}");
        assert!(names.contains(&"replay_run"), "{names:?}");
    }

    /// A lane-heavy plan: a CBTB counter family, a gshare pair, a
    /// local pair, plus deliberately unpackable points (an Sbtb, a
    /// counter too wide for the planes).
    fn lane_plan<'a>(
        bench: &'a Benchmark,
        cfg: &'a ExperimentConfig,
    ) -> (SweepBatch<'a>, PredTicket, PredTicket) {
        use branchlab_predict::{CbtbConfig, Gshare, LocalHistory};
        let mut batch = SweepBatch::new(bench, cfg);
        let a = batch.eval(vec![
            Box::new(Cbtb::new(CbtbConfig {
                threshold: 1,
                ..CbtbConfig::paper()
            })) as Box<dyn BranchPredictor>,
            Box::new(Sbtb::paper()),
            Box::new(Cbtb::paper()),
            Box::new(Cbtb::new(CbtbConfig {
                counter_bits: 3,
                threshold: 4,
                ..CbtbConfig::paper()
            })),
            Box::new(Cbtb::new(CbtbConfig {
                counter_bits: 7,
                threshold: 64,
                ..CbtbConfig::paper()
            })),
        ]);
        let b = batch.eval(vec![
            Box::new(Gshare::new(12, 8)) as Box<dyn BranchPredictor>,
            Box::new(LocalHistory::new(12, 6)),
            Box::new(Gshare::new(10, 4)),
            Box::new(LocalHistory::new(10, 2)),
        ]);
        (batch, a, b)
    }

    #[test]
    fn lane_scoring_is_bit_identical_to_scalar() {
        let bench = benchmark("wc").unwrap();
        let scalar_cfg = ExperimentConfig {
            use_lane_scoring: false,
            sweep_threads: Some(1),
            ..ExperimentConfig::test()
        };
        let (batch, sa, sb) = lane_plan(bench, &scalar_cfg);
        let scalar = batch.run().unwrap();
        // Serial path here (the parallel × lanes cross product runs in
        // tests/replay_fidelity.rs, in its own process); counters are
        // process-wide, so assertions are monotonic-safe `>=`.
        let cfg = ExperimentConfig {
            sweep_threads: Some(1),
            ..ExperimentConfig::test()
        };
        let before = LaneStats::snapshot();
        let (batch, la, lb) = lane_plan(bench, &cfg);
        let laned = batch.run().unwrap();
        assert_eq!(laned.stats(la), scalar.stats(sa));
        assert_eq!(laned.stats(lb), scalar.stats(sb));
        let delta = LaneStats::snapshot().since(&before);
        assert!(delta.passes >= 1);
        // One CBTB family (3 paper-geometry lanes), one gshare pair,
        // one local pair; the Sbtb and the 7-bit counter stay scalar.
        assert!(delta.families >= 3, "{delta:?}");
        assert!(delta.lanes >= 7, "{delta:?}");
        assert!(delta.scalar_points >= 2, "{delta:?}");
        assert!(delta.events > 0, "{delta:?}");
    }

    #[test]
    fn lane_planner_returns_singletons_to_the_scalar_path() {
        use branchlab_predict::Gshare;
        // One point per family key: nothing to amortize anywhere, so
        // every predictor must come back on the scalar path in order.
        let points: Vec<Box<dyn BranchPredictor>> = vec![
            Box::new(Cbtb::paper()),
            Box::new(Gshare::default()),
            Box::new(Sbtb::paper()),
        ];
        let (scalars, families) = plan_lanes(points);
        assert!(families.is_empty());
        let idx: Vec<usize> = scalars.iter().map(|(i, _)| *i).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn lane_planner_packs_compatible_points_and_overflows_at_cap() {
        use branchlab_predict::CbtbConfig;
        // 35 compatible paper-geometry variants (threshold cycled) plus
        // one incompatible geometry: 32 lanes + a 3-lane overflow
        // family + 1 singleton back to scalar.
        let mut points: Vec<Box<dyn BranchPredictor>> = (0..35)
            .map(|i| {
                Box::new(Cbtb::new(CbtbConfig {
                    threshold: 1 + (i % 3),
                    ..CbtbConfig::paper()
                })) as Box<dyn BranchPredictor>
            })
            .collect();
        points.push(Box::new(Cbtb::new(CbtbConfig {
            entries: 64,
            ways: 4,
            ..CbtbConfig::paper()
        })));
        let (scalars, families) = plan_lanes(points);
        assert_eq!(families.len(), 2);
        assert_eq!(families[0].indices.len(), MAX_LANES);
        assert_eq!(families[1].indices.len(), 3);
        assert_eq!(scalars.len(), 1);
        assert_eq!(scalars[0].0, 35);
    }

    #[test]
    fn live_batch_matches_replayed_batch() {
        let bench = benchmark("cmp").unwrap();
        let build = || -> Vec<Box<dyn BranchPredictor>> {
            vec![Box::new(Sbtb::paper()), Box::new(Cbtb::paper())]
        };
        let replay_cfg = ExperimentConfig::test();
        let mut batch = SweepBatch::new(bench, &replay_cfg);
        let t = batch.eval(build());
        let replayed = batch.run().unwrap();

        for sweep_per_point in [false, true] {
            let live_cfg = ExperimentConfig {
                use_trace_replay: false,
                sweep_per_point,
                ..ExperimentConfig::test()
            };
            let mut batch = SweepBatch::new(bench, &live_cfg);
            let lt = batch.eval(build());
            let live = batch.run().unwrap();
            assert_eq!(
                live.stats(lt),
                replayed.stats(t),
                "sweep_per_point={sweep_per_point}"
            );
        }
    }
}
