//! Deferred sweep evaluation: studies enqueue their predictor and
//! return-address-stack configurations into a [`SweepBatch`], then one
//! pass over the benchmark's event stream scores every configuration
//! point at once — the paper's own trace-driven shape (trace the
//! program once, score all schemes off the recording).
//!
//! With [`ExperimentConfig::use_trace_replay`] set, the pass replays
//! the cached trace, so a whole ablation study set costs one capture
//! plus one decode per benchmark. In baseline mode each enqueued group
//! keeps its own live interpreter pass (the pre-replay cost shape), and
//! [`ExperimentConfig::sweep_per_point`] degrades that further to one
//! full compile→profile→interpret pipeline per configuration point —
//! the O(points × interpret) re-interpretation baseline that
//! `replay_bench` measures trace replay against.

use branchlab_interp::run;
use branchlab_ir::{lower, Addr, FuncId};
use branchlab_predict::{BranchPredictor, Evaluator, PredStats, ReturnAddressStack};
use branchlab_profile::profile_module_with;
use branchlab_trace::{BranchEvent, ExecHooks};
use branchlab_workloads::Benchmark;

use crate::harness::{eval_predictors_live, ExperimentConfig, ExperimentError};
use crate::trace_replay::{captured_runs, replay_runs};

/// Handle to one enqueued predictor group (one study's sweep points);
/// redeem with [`SweepResults::stats`].
#[derive(Copy, Clone, Debug)]
pub struct PredTicket(usize);

/// Handle to one enqueued set of return-address stacks; redeem with
/// [`SweepResults::ras`].
#[derive(Copy, Clone, Debug)]
pub struct RasTicket {
    start: usize,
    len: usize,
}

/// A deferred evaluation over one benchmark's event stream.
pub struct SweepBatch<'a> {
    bench: &'a Benchmark,
    config: &'a ExperimentConfig,
    groups: Vec<Vec<Box<dyn BranchPredictor>>>,
    ras: Vec<ReturnAddressStack>,
}

impl<'a> SweepBatch<'a> {
    /// An empty batch over `bench`'s conventional binary.
    #[must_use]
    pub fn new(bench: &'a Benchmark, config: &'a ExperimentConfig) -> Self {
        SweepBatch {
            bench,
            config,
            groups: Vec::new(),
            ras: Vec::new(),
        }
    }

    /// The benchmark this batch evaluates.
    #[must_use]
    pub fn bench(&self) -> &'a Benchmark {
        self.bench
    }

    /// The configuration this batch evaluates under.
    #[must_use]
    pub fn config(&self) -> &'a ExperimentConfig {
        self.config
    }

    /// Enqueue one group of predictors (typically one study's sweep
    /// points), scored identically to [`eval_predictors`].
    ///
    /// [`eval_predictors`]: crate::harness::eval_predictors
    pub fn eval(&mut self, predictors: Vec<Box<dyn BranchPredictor>>) -> PredTicket {
        self.groups.push(predictors);
        PredTicket(self.groups.len() - 1)
    }

    /// Enqueue return-address stacks of the given depths (they consume
    /// the trace's call/return events).
    pub fn ras(&mut self, depths: &[usize]) -> RasTicket {
        let start = self.ras.len();
        self.ras
            .extend(depths.iter().map(|&d| ReturnAddressStack::new(d)));
        RasTicket {
            start,
            len: depths.len(),
        }
    }

    /// Execute every enqueued evaluation and hand back the results.
    ///
    /// # Errors
    /// Returns [`ExperimentError`] on compile/lower/run/replay failure.
    pub fn run(self) -> Result<SweepResults, ExperimentError> {
        if self.config.use_trace_replay {
            self.run_replay()
        } else {
            self.run_live()
        }
    }

    /// One replay pass feeds every evaluator and stack at once.
    fn run_replay(self) -> Result<SweepResults, ExperimentError> {
        let runs = captured_runs(self.bench, self.config)?;
        let group_sizes: Vec<usize> = self.groups.iter().map(Vec::len).collect();
        let mut evals: Vec<Evaluator<Box<dyn BranchPredictor>>> = self
            .groups
            .into_iter()
            .flatten()
            .map(Evaluator::new)
            .collect();
        let mut ras = self.ras;
        {
            let mut sink = BatchSink {
                evals: &mut evals,
                ras: &mut ras,
                block: Vec::with_capacity(EVENT_BLOCK),
            };
            replay_runs(&runs, &mut sink)?;
            sink.drain_block();
        }
        let mut stats = evals.into_iter().map(|e| e.stats);
        let groups = group_sizes
            .into_iter()
            .map(|n| stats.by_ref().take(n).collect())
            .collect();
        Ok(SweepResults { groups, ras })
    }

    /// The re-interpretation baseline: one live pass per group (the
    /// pre-replay cost shape), or one full pipeline per predictor when
    /// [`ExperimentConfig::sweep_per_point`] is set.
    fn run_live(self) -> Result<SweepResults, ExperimentError> {
        let mut groups = Vec::with_capacity(self.groups.len());
        for preds in self.groups {
            if self.config.sweep_per_point {
                let mut stats = Vec::with_capacity(preds.len());
                for p in preds {
                    // The pre-replay methodology, reconstructed point
                    // for point: every sweep configuration re-runs the
                    // full compile→profile→interpret pipeline (the
                    // profile feeds the point's predictor construction
                    // in that methodology; here the batch already built
                    // its predictors, so only the cost shape matters).
                    let module = self.bench.compile()?;
                    let _profile = profile_module_with(
                        &module,
                        &self.bench.runs(self.config.scale, self.config.seed),
                        &self.config.exec_config(),
                    )?;
                    stats.extend(eval_predictors_live(self.bench, self.config, vec![p])?);
                }
                groups.push(stats);
            } else {
                groups.push(eval_predictors_live(self.bench, self.config, preds)?);
            }
        }
        let mut ras = self.ras;
        if !ras.is_empty() {
            let module = self.bench.compile()?;
            let program = lower(&module)?;
            let exec_cfg = self.config.exec_config();
            for r in &mut ras {
                for streams in self.bench.runs(self.config.scale, self.config.seed) {
                    let refs: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
                    run(&program, &exec_cfg, &refs, r)?;
                }
            }
        }
        Ok(SweepResults { groups, ras })
    }
}

/// Results of a [`SweepBatch`], indexed by the tickets it issued.
pub struct SweepResults {
    groups: Vec<Vec<PredStats>>,
    ras: Vec<ReturnAddressStack>,
}

impl SweepResults {
    /// The scored statistics for one enqueued predictor group, in
    /// enqueue order.
    #[must_use]
    pub fn stats(&self, ticket: PredTicket) -> &[PredStats] {
        &self.groups[ticket.0]
    }

    /// The driven return-address stacks for one enqueued depth set.
    #[must_use]
    pub fn ras(&self, ticket: RasTicket) -> &[ReturnAddressStack] {
        &self.ras[ticket.start..ticket.start + ticket.len]
    }
}

/// Branch events buffered per fan-out block. Each evaluator consumes a
/// long run of events with its tables cache-hot — round-robining tens
/// of predictors per event thrashes L1 and costs several times the
/// per-event work of a dedicated live pass.
const EVENT_BLOCK: usize = 16 * 1024;

/// Fans one event stream out to every enqueued sink, block-wise for
/// the branch evaluators.
///
/// Blocking is invisible to the results: each evaluator still sees the
/// exact event sequence in order, and branch events never interact with
/// the call/return stream (predictors consume only `branch`, stacks
/// only `call`/`ret`), so delivering them on different schedules cannot
/// change any statistic.
struct BatchSink<'a> {
    evals: &'a mut [Evaluator<Box<dyn BranchPredictor>>],
    ras: &'a mut [ReturnAddressStack],
    block: Vec<BranchEvent>,
}

impl BatchSink<'_> {
    fn drain_block(&mut self) {
        for e in self.evals.iter_mut() {
            e.branch_block(&self.block);
        }
        self.block.clear();
    }
}

impl ExecHooks for BatchSink<'_> {
    fn branch(&mut self, ev: &BranchEvent) {
        self.block.push(*ev);
        if self.block.len() == EVENT_BLOCK {
            self.drain_block();
        }
    }

    fn call(&mut self, from: Addr, callee: FuncId) {
        for r in self.ras.iter_mut() {
            r.call(from, callee);
        }
    }

    fn ret(&mut self, from: Addr, to: Addr) {
        for r in self.ras.iter_mut() {
            r.ret(from, to);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::eval_predictors;
    use branchlab_predict::{AlwaysTaken, Cbtb, Sbtb};
    use branchlab_workloads::benchmark;

    #[test]
    fn batched_stats_match_individual_eval_calls() {
        let bench = benchmark("wc").unwrap();
        let cfg = ExperimentConfig::test();
        let mut batch = SweepBatch::new(bench, &cfg);
        let a = batch.eval(vec![Box::new(Sbtb::paper()), Box::new(AlwaysTaken)]);
        let b = batch.eval(vec![Box::new(Cbtb::paper())]);
        let r = batch.ras(&[4, 64]);
        let results = batch.run().unwrap();

        let solo_a = eval_predictors(
            bench,
            &cfg,
            vec![Box::new(Sbtb::paper()), Box::new(AlwaysTaken)],
        )
        .unwrap();
        let solo_b = eval_predictors(bench, &cfg, vec![Box::new(Cbtb::paper())]).unwrap();
        assert_eq!(results.stats(a), solo_a.as_slice());
        assert_eq!(results.stats(b), solo_b.as_slice());
        let ras = results.ras(r);
        assert_eq!(ras.len(), 2);
        assert!(ras[0].returns > 0);
        assert!(ras[1].accuracy() >= ras[0].accuracy());
    }

    #[test]
    fn live_batch_matches_replayed_batch() {
        let bench = benchmark("cmp").unwrap();
        let build = || -> Vec<Box<dyn BranchPredictor>> {
            vec![Box::new(Sbtb::paper()), Box::new(Cbtb::paper())]
        };
        let replay_cfg = ExperimentConfig::test();
        let mut batch = SweepBatch::new(bench, &replay_cfg);
        let t = batch.eval(build());
        let replayed = batch.run().unwrap();

        for sweep_per_point in [false, true] {
            let live_cfg = ExperimentConfig {
                use_trace_replay: false,
                sweep_per_point,
                ..ExperimentConfig::test()
            };
            let mut batch = SweepBatch::new(bench, &live_cfg);
            let lt = batch.eval(build());
            let live = batch.run().unwrap();
            assert_eq!(
                live.stats(lt),
                replayed.stats(t),
                "sweep_per_point={sweep_per_point}"
            );
        }
    }
}
