//! Regeneration of the paper's Tables 1–5 from a [`SuiteResult`].

use branchlab_pipeline::{branch_cost, FlushModel};

use crate::harness::{mean_std, BenchResult, SuiteResult};
use crate::render::{f2, mcount, pct, rho, Table};
use crate::supervisor::BenchFailure;

/// A per-benchmark statistic selector used by the summary rows.
type Stat = fn(&BenchResult) -> f64;

/// Annotation rows for benchmarks the supervisor could not complete: a
/// partial table names every casualty explicitly instead of silently
/// shrinking. The failure summary lands in the second column and the
/// remaining cells are dashed out.
fn failure_rows<'a>(
    t: &mut Table,
    failures: impl Iterator<Item = &'a BenchFailure>,
    columns: usize,
) {
    for f in failures {
        let mut row = vec![
            f.name.clone(),
            format!("FAILED({}, {} attempts)", f.class, f.attempts),
        ];
        row.resize(columns, "-".to_string());
        t.row(row);
    }
}

/// Table 1: benchmark characteristics.
#[must_use]
pub fn table1(suite: &SuiteResult) -> Table {
    let mut t = Table::new(
        "Table 1: Benchmark characteristics",
        &["Benchmark", "Lines", "Runs", "Inst.", "Control"],
    );
    for b in suite.main_benches() {
        t.row(vec![
            b.name.to_string(),
            b.source_lines.to_string(),
            b.runs.to_string(),
            mcount(b.stats.insts),
            pct(b.stats.control_fraction()),
        ]);
    }
    failure_rows(&mut t, suite.main_failures(), 5);
    t
}

/// Table 2: conditional taken/not-taken and unconditional known/unknown
/// percentages.
#[must_use]
pub fn table2(suite: &SuiteResult) -> Table {
    let mut t = Table::new(
        "Table 2: Benchmark branch statistics",
        &["Benchmark", "Taken", "Not", "Known", "Unknown"],
    );
    for b in suite.main_benches() {
        let taken = b.mix.taken_fraction();
        let known = b.mix.known_fraction();
        t.row(vec![
            b.name.to_string(),
            pct(taken),
            pct(1.0 - taken),
            pct(known),
            pct(1.0 - known),
        ]);
    }
    failure_rows(&mut t, suite.main_failures(), 5);
    let (mt, _) = suite.mean_std(|b| b.mix.taken_fraction());
    let (mk, _) = suite.mean_std(|b| b.mix.known_fraction());
    t.row(vec![
        "Average".into(),
        pct(mt),
        pct(1.0 - mt),
        pct(mk),
        pct(1.0 - mk),
    ]);
    t
}

/// Table 3: prediction performance — ρ and A for the SBTB and CBTB, and
/// A for the Forward Semantic, plus mean/σ rows.
#[must_use]
pub fn table3(suite: &SuiteResult) -> Table {
    let mut t = Table::new(
        "Table 3: Branch prediction performance",
        &[
            "Benchmark",
            "rho_SBTB",
            "A_SBTB",
            "rho_CBTB",
            "A_CBTB",
            "A_FS",
        ],
    );
    for b in suite.main_benches() {
        t.row(vec![
            b.name.to_string(),
            rho(b.sbtb.miss_ratio()),
            pct(b.sbtb.accuracy()),
            rho(b.cbtb.miss_ratio()),
            pct(b.cbtb.accuracy()),
            pct(b.fs.accuracy()),
        ]);
    }
    failure_rows(&mut t, suite.main_failures(), 6);
    let stats: Vec<(&str, Stat)> = vec![
        ("rho_SBTB", |b| b.sbtb.miss_ratio()),
        ("A_SBTB", |b| b.sbtb.accuracy()),
        ("rho_CBTB", |b| b.cbtb.miss_ratio()),
        ("A_CBTB", |b| b.cbtb.accuracy()),
        ("A_FS", |b| b.fs.accuracy()),
    ];
    let mut avg = vec!["Average".to_string()];
    let mut sd = vec!["Std. dev.".to_string()];
    for (i, (_, f)) in stats.iter().enumerate() {
        let (m, s) = suite.mean_std(*f);
        let is_rho = i == 0 || i == 2;
        avg.push(if is_rho { rho(m) } else { pct(m) });
        sd.push(if is_rho { rho(s) } else { pct(s) });
    }
    t.row(avg);
    t.row(sd);
    t
}

/// Branch cost of one benchmark under one scheme's accuracy at
/// `k + ℓ̄ = kl`, `m̄ = 1` — the paper's Table 4 setting.
fn t4_cost(accuracy: f64, kl: u32) -> f64 {
    // k + ℓ̄ + m̄ = kl + 1; split arbitrarily as k = kl, ℓ̄ = 0, m̄ = 1.
    branch_cost(
        accuracy,
        kl,
        &FlushModel {
            l_bar: 0.0,
            m_bar: 1.0,
        },
    )
}

/// Table 4: branch cost at k + ℓ̄ = 2 and 3 (m̄ = 1), plus the average
/// percentage cost growth from the shallower to the deeper machine per
/// scheme (the scalability observation of §3).
#[must_use]
pub fn table4(suite: &SuiteResult) -> Table {
    let mut t = Table::new(
        "Table 4: Branch cost for k+l=2 and 3 (m=1)",
        &[
            "Benchmark",
            "SBTB k+l=2",
            "CBTB k+l=2",
            "FS k+l=2",
            "SBTB k+l=3",
            "CBTB k+l=3",
            "FS k+l=3",
        ],
    );
    for b in suite.main_benches() {
        t.row(vec![
            b.name.to_string(),
            f2(t4_cost(b.sbtb.accuracy(), 2)),
            f2(t4_cost(b.cbtb.accuracy(), 2)),
            f2(t4_cost(b.fs.accuracy(), 2)),
            f2(t4_cost(b.sbtb.accuracy(), 3)),
            f2(t4_cost(b.cbtb.accuracy(), 3)),
            f2(t4_cost(b.fs.accuracy(), 3)),
        ]);
    }
    failure_rows(&mut t, suite.main_failures(), 7);
    let cols: Vec<(Stat, u32)> = vec![
        (|b| b.sbtb.accuracy(), 2),
        (|b| b.cbtb.accuracy(), 2),
        (|b| b.fs.accuracy(), 2),
        (|b| b.sbtb.accuracy(), 3),
        (|b| b.cbtb.accuracy(), 3),
        (|b| b.fs.accuracy(), 3),
    ];
    let mut avg = vec!["Average".to_string()];
    let mut sd = vec!["Std. dev.".to_string()];
    for (f, kl) in &cols {
        let (m, s) = suite.mean_std(|b| t4_cost(f(b), *kl));
        avg.push(f2(m));
        sd.push(format!("{s:.3}"));
    }
    t.row(avg);
    t.row(sd);
    t
}

/// The §3 scalability numbers derived from Table 4: average percentage
/// increase in branch cost from k+ℓ̄ = 2 to 3 for (SBTB, CBTB, FS). The
/// paper reports 7.7%, 6.9%, 5.3% — FS scales best.
#[must_use]
pub fn cost_growth(suite: &SuiteResult) -> (f64, f64, f64) {
    let growth = |f: &dyn Fn(&BenchResult) -> f64| {
        let xs: Vec<f64> = suite
            .main_benches()
            .map(|b| {
                let a = f(b);
                (t4_cost(a, 3) - t4_cost(a, 2)) / t4_cost(a, 2) * 100.0
            })
            .collect();
        mean_std(&xs).0
    };
    (
        growth(&|b: &BenchResult| b.sbtb.accuracy()),
        growth(&|b: &BenchResult| b.cbtb.accuracy()),
        growth(&|b: &BenchResult| b.fs.accuracy()),
    )
}

/// Table 5: percentage code-size increase as a function of k + ℓ
/// (all 12 benchmarks, incl. eqn and espresso, like the paper).
#[must_use]
pub fn table5(suite: &SuiteResult) -> Table {
    let mut t = Table::new(
        "Table 5: Code-size increase vs forward-slot depth",
        &["Benchmark", "k+l=1", "k+l=2", "k+l=4", "k+l=8"],
    );
    let pct1 = |x: f64| format!("{x:.2}%");
    let mut sorted: Vec<&BenchResult> = suite.benches.iter().collect();
    sorted.sort_by_key(|b| b.name);
    for b in &sorted {
        t.row(
            std::iter::once(b.name.to_string())
                .chain(b.expansion.iter().map(|p| pct1(p.increase_pct())))
                .collect(),
        );
    }
    // Table 5 covers all 12 benchmarks, so annotate every failure.
    failure_rows(&mut t, suite.failures.iter(), 5);
    for (label, stat) in [("Average", 0), ("Std. dev.", 1)] {
        let mut row = vec![label.to_string()];
        for d in 0..4 {
            let xs: Vec<f64> = sorted
                .iter()
                .map(|b| b.expansion[d].increase_pct())
                .collect();
            let (m, s) = mean_std(&xs);
            row.push(pct1(if stat == 0 { m } else { s }));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_benchmark, ExperimentConfig};
    use branchlab_workloads::benchmark;

    fn mini_suite() -> SuiteResult {
        let cfg = ExperimentConfig::test();
        let benches = ["wc", "cmp", "eqn"]
            .iter()
            .map(|n| run_benchmark(benchmark(n).unwrap(), &cfg).unwrap())
            .collect();
        SuiteResult::from_benches(benches)
    }

    #[test]
    fn tables_render_without_panicking() {
        let suite = mini_suite();
        for table in [
            table1(&suite),
            table2(&suite),
            table3(&suite),
            table4(&suite),
            table5(&suite),
        ] {
            let text = table.to_text();
            assert!(text.contains("wc"), "{text}");
            assert!(!table.to_markdown().is_empty());
            assert!(!table.to_csv().is_empty());
        }
    }

    #[test]
    fn partial_suite_annotates_failures_in_every_table() {
        let mut suite = mini_suite();
        suite.failures.push(BenchFailure {
            name: "grep".into(),
            error: "injected fault at compile".into(),
            class: crate::ErrorClass::Transient,
            attempts: 3,
            elapsed: std::time::Duration::from_millis(5),
        });
        for t in [
            table1(&suite),
            table2(&suite),
            table3(&suite),
            table4(&suite),
            table5(&suite),
        ] {
            let text = t.to_text();
            assert!(text.contains("grep"), "{text}");
            assert!(text.contains("FAILED(transient, 3 attempts)"), "{text}");
            // Completed benches keep their rows.
            assert!(text.contains("wc"), "{text}");
        }
        // eqn is not a main-table bench: its failure annotates only Table 5.
        suite.failures[0].name = "eqn".into();
        assert!(!table1(&suite).to_text().contains("FAILED"));
        assert!(table5(&suite).to_text().contains("FAILED"));
    }

    #[test]
    fn table5_includes_eqn_but_tables_1_to_4_do_not() {
        let suite = mini_suite();
        assert!(!table1(&suite).to_text().contains("eqn"));
        assert!(table5(&suite).to_text().contains("eqn"));
    }

    #[test]
    fn t4_cost_matches_paper_formula() {
        // A = 0.986, k+l̄=2, m̄=1 → 0.986 + 3·0.014 = 1.028.
        assert!((t4_cost(0.986, 2) - 1.028).abs() < 1e-9);
        // Deeper pipeline costs more.
        assert!(t4_cost(0.9, 3) > t4_cost(0.9, 2));
    }

    #[test]
    fn cost_growth_orders_match_accuracy_orders() {
        // Growth from k+l=2→3 is smaller for higher accuracy; with
        // synthetic accuracies the order must hold.
        let mk = |a: f64| (t4_cost(a, 3) - t4_cost(a, 2)) / t4_cost(a, 2);
        assert!(mk(0.935) < mk(0.915));
    }
}
