//! Plain-text / markdown / CSV rendering of experiment tables.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Align {
    /// Left-aligned (names).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A rendered experiment table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (e.g. "Table 3: Branch prediction performance").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Per-column alignment (defaults to Left for col 0, Right after).
    pub aligns: Vec<Align>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with headers; alignment defaults to left for the
    /// first column and right for the rest.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        let aligns = (0..headers.len())
            .map(|i| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            aligns,
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Fixed-width text rendering (what the bench binaries print).
    #[must_use]
    pub fn to_text(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let render_row = |out: &mut String, cells: &[String]| {
            for i in 0..ncols {
                if i > 0 {
                    out.push_str("  ");
                }
                let w = widths[i];
                match self.aligns[i] {
                    Align::Left => {
                        let _ = write!(out, "{:<w$}", cells[i]);
                    }
                    Align::Right => {
                        let _ = write!(out, "{:>w$}", cells[i]);
                    }
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// GitHub-flavored markdown rendering.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "**{}**\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let seps: Vec<&str> = self
            .aligns
            .iter()
            .map(|a| if *a == Align::Left { ":--" } else { "--:" })
            .collect();
        let _ = writeln!(out, "| {} |", seps.join(" | "));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// CSV rendering (quotes cells containing commas).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &String| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Format a probability as a percentage with one decimal (Table 2/3
/// style).
#[must_use]
pub fn pct(p: f64) -> String {
    format!("{:.1}%", p * 100.0)
}

/// Format a cost/ratio with the paper's two-decimal style.
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a miss ratio with up to four significant decimals (the paper
/// prints ρ_CBTB values like 0.0053).
#[must_use]
pub fn rho(x: f64) -> String {
    if x >= 0.01 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Format an instruction count like the paper's Table 1 ("11.7M").
#[must_use]
pub fn mcount(n: u64) -> String {
    format!("{:.1}M", n as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["name", "x"]);
        t.row(vec!["alpha".into(), "1.00".into()]);
        t.row(vec!["b".into(), "12.50".into()]);
        t
    }

    #[test]
    fn text_rendering_aligns_columns() {
        let text = sample().to_text();
        assert!(text.contains("alpha   1.00"), "{text}");
        assert!(text.contains("b      12.50"), "{text}");
    }

    #[test]
    fn markdown_has_header_separator() {
        let md = sample().to_markdown();
        assert!(md.contains("| :-- | --: |"), "{md}");
        assert!(md.contains("| alpha | 1.00 |"), "{md}");
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("c", &["a", "b"]);
        t.row(vec!["x,y".into(), "2".into()]);
        assert!(t.to_csv().contains("\"x,y\",2"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_rejected() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.915), "91.5%");
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(rho(0.48), "0.48");
        assert_eq!(rho(0.0053), "0.0053");
        assert_eq!(mcount(11_700_000), "11.7M");
    }
}
