//! # branchlab-experiments
//!
//! The experiment harness that regenerates every table and figure of
//! Hwu, Conte & Chang (ISCA 1989):
//!
//! * [`run_suite`] / [`run_benchmark`]: compile → profile → Forward
//!   Semantic transform → evaluate SBTB/CBTB/FS (plus static baselines)
//!   over the 12-benchmark suite, verifying that the transformed binary
//!   is observationally equivalent to the conventional one.
//! * [`tables`] — Tables 1–5.
//! * [`figures`] — Figures 3–4 (cost-vs-pipelining curves + ASCII plots).
//! * [`ablation`] — geometry/counter/context-switch/static-baseline
//!   sweeps that extend the paper's discussion quantitatively.
//!
//! The `branchlab-bench` crate exposes one binary per table/figure; see
//! EXPERIMENTS.md for paper-vs-measured values.

#![warn(missing_docs)]

pub mod ablation;
pub mod figures;
mod harness;
mod render;
pub mod tables;

pub use harness::{
    eval_predictors, mean_std, run_benchmark, run_suite, BenchResult, ExperimentConfig,
    ExperimentError, SuiteResult, PHASES,
};
pub use render::{f2, mcount, pct, rho, Align, Table};
