//! # branchlab-experiments
//!
//! The experiment harness that regenerates every table and figure of
//! Hwu, Conte & Chang (ISCA 1989):
//!
//! * [`run_suite`] / [`run_benchmark`]: compile → profile → Forward
//!   Semantic transform → evaluate SBTB/CBTB/FS (plus static baselines)
//!   over the 12-benchmark suite, verifying that the transformed binary
//!   is observationally equivalent to the conventional one.
//! * [`tables`] — Tables 1–5.
//! * [`figures`] — Figures 3–4 (cost-vs-pipelining curves + ASCII plots).
//! * [`ablation`] — geometry/counter/context-switch/static-baseline
//!   sweeps that extend the paper's discussion quantitatively.
//! * [`trace_replay`] — the trace-driven engine behind the sweeps:
//!   each benchmark's dynamic event stream is captured once (cached in
//!   memory and optionally on disk) and replayed into every predictor
//!   configuration at memory speed, bit-identical to live
//!   interpretation.
//! * [`supervisor`]/[`fault`]/[`checkpoint`] — *branchlab-guard*: the
//!   fault-tolerance layer. Benchmarks run behind panic isolation, an
//!   optional watchdog, and retry-with-backoff; failures degrade to
//!   per-bench records instead of aborting the suite; completed
//!   benches checkpoint to JSONL for `--resume`; and a seeded
//!   [`FaultInjector`] proves all of it deterministically.
//!
//! ## Error taxonomy
//!
//! Supervision is driven by a two-class taxonomy
//! ([`branchlab_interp::ErrorClass`], surfaced through
//! [`ExperimentError::class`]):
//!
//! | Class | Errors | Retry? |
//! |---|---|---|
//! | **Permanent** | every real interpreter error (`OutOfFuel`, `MemoryFault`, `StackOverflow`, `CallDepthExceeded`, `PcOutOfRange`, `MemoryTooSmall`), compile/lower/profile errors, FS equivalence violations | never — they are deterministic functions of (program, input, config) |
//! | **Transient** | injected faults (`ExecError::Injected`), caught panics, watchdog timeouts | yes, with exponential backoff up to `max_attempts` |
//!
//! The `branchlab-bench` crate exposes one binary per table/figure; see
//! EXPERIMENTS.md for paper-vs-measured values.

#![warn(missing_docs)]

pub mod ablation;
pub mod batch;
pub mod checkpoint;
pub mod fault;
pub mod figures;
mod harness;
mod lane_stats;
mod render;
pub mod supervisor;
mod sweep_stats;
pub mod tables;
pub mod trace_replay;

pub use batch::{PredTicket, RasTicket, SweepBatch, SweepResults};
pub use branchlab_interp::ErrorClass;
pub use fault::{FaultConfig, FaultInjector};
pub use harness::{
    eval_predictors, eval_predictors_live, mean_std, run_benchmark, run_benchmark_attempt,
    run_suite, BenchResult, ExperimentConfig, ExperimentError, SuiteResult, PHASES,
};
pub use lane_stats::LaneStats;
pub use render::{f2, mcount, pct, rho, Align, Table};
pub use supervisor::{
    run_suite_supervised, supervise, AttemptFn, BenchFailure, SupervisorConfig, SupervisorStats,
};
pub use sweep_stats::SweepStats;
pub use trace_replay::TraceStats;
