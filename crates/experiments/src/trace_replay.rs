//! Trace-driven replay: capture each benchmark's dynamic event stream
//! once, then feed every sweep configuration from the captured trace at
//! memory speed.
//!
//! This is the paper's own methodology — the ten Unix benchmarks were
//! traced once and every scheme was scored off those traces — and it
//! turns the sweep cost from O(points × interpret) into
//! O(interpret + points × replay).
//!
//! * [`captured_runs`]: the natural-layout trace of a benchmark, one
//!   [`TraceBuf`] per input run, from (in priority order) the
//!   process-wide in-memory cache, the optional on-disk cache
//!   ([`ExperimentConfig::trace_cache_dir`], hash-validated), or a
//!   fresh capture pass. Keyed by benchmark name + program content
//!   hash + scale + seed ([`TraceKey`]), so a source edit or input
//!   change can never serve a stale trace.
//! * [`replay_runs`]: drive any [`ExecHooks`] sink from the buffers,
//!   run by run, exactly as the live interpreter would have.
//! * [`cached_profile`]: the profiling pass, computed once per key and
//!   shared by the studies that need branch-site statistics.
//! * [`TraceStats`]: process-wide counters (`suite.trace.*` in the
//!   metrics registry) recording cache traffic and capture/replay
//!   wall-clock, from which the bench binaries synthesize `Timeline`
//!   spans.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use branchlab_interp::run;
use branchlab_ir::lower;
use branchlab_profile::{profile_module_with, Profile};
use branchlab_telemetry::{JsonValue, MetricsRegistry, PhaseSpan};
use branchlab_trace::{
    hash_bytes, load_trace, replay_traced, save_trace, Capture, ExecHooks, TraceBuf, TraceKey,
};
use branchlab_workloads::{Benchmark, Scale};

use crate::harness::{ExperimentConfig, ExperimentError};

/// The canonical short name for a scale (`"test"` / `"small"` /
/// `"paper"`), as used in trace keys and request canonicalization.
#[must_use]
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

/// The cache key identifying one benchmark's trace under one input
/// configuration.
#[must_use]
pub fn trace_key(bench: &Benchmark, config: &ExperimentConfig) -> TraceKey {
    TraceKey {
        bench: bench.name.to_string(),
        program_hash: hash_bytes(bench.source.as_bytes()),
        scale: scale_name(config.scale).to_string(),
        seed: config.seed,
    }
}

type TraceMap = Mutex<HashMap<TraceKey, Arc<Vec<TraceBuf>>>>;
type ProfileMap = Mutex<HashMap<TraceKey, Arc<Profile>>>;

fn trace_map() -> &'static TraceMap {
    static MAP: OnceLock<TraceMap> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(HashMap::new()))
}

fn profile_map() -> &'static ProfileMap {
    static MAP: OnceLock<ProfileMap> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(HashMap::new()))
}

macro_rules! counters {
    ($($name:ident),* $(,)?) => {
        // Cell names intentionally mirror the snake_case field/metric
        // names they back.
        #[allow(non_upper_case_globals)]
        mod counter_cells {
            use super::AtomicU64;
            $(pub static $name: AtomicU64 = AtomicU64::new(0);)*
        }

        /// A snapshot of the process-wide trace-engine counters.
        #[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
        #[allow(missing_docs)] // field names mirror the metric names below
        pub struct TraceStats {
            $(pub $name: u64,)*
        }

        impl TraceStats {
            /// Current counter values.
            #[must_use]
            pub fn snapshot() -> TraceStats {
                TraceStats {
                    $($name: counter_cells::$name.load(Ordering::Relaxed),)*
                }
            }

            /// The counters as `(name, value)` pairs, for metrics
            /// export under a `suite.trace.` prefix.
            #[must_use]
            pub fn counters(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($name), self.$name),)*]
            }

            /// Counter deltas since `earlier` (per-phase accounting
            /// for one sweep or one bench run).
            #[must_use]
            pub fn since(&self, earlier: &TraceStats) -> TraceStats {
                TraceStats {
                    $($name: self.$name.saturating_sub(earlier.$name),)*
                }
            }
        }
    };
}

counters!(
    captures,
    memory_hits,
    disk_hits,
    disk_invalid,
    replays,
    events_captured,
    events_replayed,
    capture_us,
    replay_us,
    profile_computes,
    profile_hits,
);

fn bump(cell: &AtomicU64, by: u64) {
    cell.fetch_add(by, Ordering::Relaxed);
}

impl TraceStats {
    /// Export every counter as `suite.trace.<name>` into a metrics
    /// registry.
    pub fn export(&self, registry: &MetricsRegistry) {
        for (name, value) in self.counters() {
            registry.counter(&format!("suite.trace.{name}")).add(value);
        }
    }

    /// JSON object form for run manifests.
    #[must_use]
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Obj(
            self.counters()
                .into_iter()
                .map(|(k, v)| (k.to_string(), JsonValue::from(v)))
                .collect(),
        )
    }

    /// Synthesize `Timeline`-style capture/replay spans from the
    /// accumulated wall-clock counters.
    #[must_use]
    pub fn phase_spans(&self) -> Vec<PhaseSpan> {
        vec![
            PhaseSpan {
                name: "trace_capture".to_string(),
                wall: std::time::Duration::from_micros(self.capture_us),
                work: self.events_captured,
            },
            PhaseSpan {
                name: "trace_replay".to_string(),
                wall: std::time::Duration::from_micros(self.replay_us),
                work: self.events_replayed,
            },
        ]
    }
}

/// Drop every in-memory cached trace and profile (tests use this to
/// force re-capture; the on-disk cache is untouched).
pub fn clear_cache() {
    trace_map().lock().expect("trace cache lock").clear();
    profile_map().lock().expect("profile cache lock").clear();
}

/// Capture the benchmark's event stream by running the conventional
/// binary over every input run with a [`Capture`] sink.
fn capture(bench: &Benchmark, config: &ExperimentConfig) -> Result<Vec<TraceBuf>, ExperimentError> {
    let started = Instant::now();
    let module = bench.compile()?;
    let program = lower(&module)?;
    let exec_cfg = config.exec_config();
    let mut bufs = Vec::new();
    let mut events = 0u64;
    for streams in bench.runs(config.scale, config.seed) {
        let refs: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
        let mut cap = Capture::new();
        run(&program, &exec_cfg, &refs, &mut cap)?;
        let buf = cap.into_buf();
        events += buf.events();
        bufs.push(buf);
    }
    bump(&counter_cells::captures, 1);
    bump(&counter_cells::events_captured, events);
    bump(
        &counter_cells::capture_us,
        started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
    );
    Ok(bufs)
}

/// The benchmark's per-run trace buffers: in-memory cache first, then
/// the hash-validated on-disk cache (when
/// [`ExperimentConfig::trace_cache_dir`] is set), then a fresh capture
/// pass — which populates both caches for the next caller.
///
/// An unreadable, corrupt, or stale on-disk entry is counted
/// (`disk_invalid`) and silently degrades to re-capture; a failed
/// best-effort save never fails the experiment.
///
/// # Errors
/// Returns [`ExperimentError`] when the capture pipeline
/// (compile/lower/run) fails.
pub fn captured_runs(
    bench: &Benchmark,
    config: &ExperimentConfig,
) -> Result<Arc<Vec<TraceBuf>>, ExperimentError> {
    let key = trace_key(bench, config);
    if let Some(hit) = trace_map().lock().expect("trace cache lock").get(&key) {
        bump(&counter_cells::memory_hits, 1);
        return Ok(Arc::clone(hit));
    }

    let disk_path = config
        .trace_cache_dir
        .as_ref()
        .map(|d| d.join(key.file_name()));
    if let Some(path) = &disk_path {
        match load_trace(path, &key) {
            Ok(Some(runs)) => {
                bump(&counter_cells::disk_hits, 1);
                let runs = Arc::new(runs);
                trace_map()
                    .lock()
                    .expect("trace cache lock")
                    .insert(key, Arc::clone(&runs));
                return Ok(runs);
            }
            Ok(None) => {}
            Err(_) => bump(&counter_cells::disk_invalid, 1),
        }
    }

    let runs = Arc::new(capture(bench, config)?);
    if let Some(path) = &disk_path {
        let _ = save_trace(path, &key, &runs);
    }
    trace_map()
        .lock()
        .expect("trace cache lock")
        .insert(key, Arc::clone(&runs));
    Ok(runs)
}

/// Replay every run's buffer into `hooks`, in run order, with no state
/// reset between runs — exactly the event sequence the live
/// interpreter would have delivered. Returns the total event count.
///
/// # Errors
/// Returns [`ExperimentError::Trace`] on a malformed buffer (impossible
/// for buffers produced by [`Capture`]; reachable only through cache
/// corruption that slipped past the checksum).
pub fn replay_runs<H: ExecHooks>(runs: &[TraceBuf], hooks: &mut H) -> Result<u64, ExperimentError> {
    replay_runs_traced(runs, hooks, None)
}

/// [`replay_runs`], recording one `replay_run` child span per buffer
/// under `parent` (see [`branchlab_telemetry::trace`]). With `parent`
/// `None` this is exactly [`replay_runs`].
///
/// # Errors
/// Returns [`ExperimentError::Trace`] on a corrupt or truncated buffer.
pub fn replay_runs_traced<H: ExecHooks>(
    runs: &[TraceBuf],
    hooks: &mut H,
    parent: Option<&branchlab_telemetry::SpanLink>,
) -> Result<u64, ExperimentError> {
    let started = Instant::now();
    let mut events = 0u64;
    for buf in runs {
        events +=
            replay_traced(buf, hooks, parent).map_err(|e| ExperimentError::Trace(e.to_string()))?;
    }
    bump(&counter_cells::replays, 1);
    bump(&counter_cells::events_replayed, events);
    bump(
        &counter_cells::replay_us,
        started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
    );
    Ok(events)
}

/// Credit the trace counters for a replay pass performed outside
/// [`replay_runs`] — the parallel sweep executor decodes the shared
/// buffers itself (one streaming decode per work batch) and reports
/// its decode traffic here so `suite.trace.*` stays an honest account
/// of replay work.
pub(crate) fn note_replay(events: u64, wall_us: u64) {
    bump(&counter_cells::replays, 1);
    bump(&counter_cells::events_replayed, events);
    bump(&counter_cells::replay_us, wall_us);
}

/// The benchmark's profiling pass (instrumented layout), computed once
/// per [`TraceKey`] and shared — `context_switch_study` and
/// `delay_slot_study` both need it, and under replay neither should
/// pay for it twice.
///
/// # Errors
/// Returns [`ExperimentError`] when compiling or profiling fails.
pub fn cached_profile(
    bench: &Benchmark,
    config: &ExperimentConfig,
) -> Result<Arc<Profile>, ExperimentError> {
    let key = trace_key(bench, config);
    if let Some(hit) = profile_map().lock().expect("profile cache lock").get(&key) {
        bump(&counter_cells::profile_hits, 1);
        return Ok(Arc::clone(hit));
    }
    let module = bench.compile()?;
    let profile = Arc::new(profile_module_with(
        &module,
        &bench.runs(config.scale, config.seed),
        &config.exec_config(),
    )?);
    bump(&counter_cells::profile_computes, 1);
    profile_map()
        .lock()
        .expect("profile cache lock")
        .insert(key, Arc::clone(&profile));
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchlab_trace::BranchMix;
    use branchlab_workloads::benchmark;

    #[test]
    fn captured_runs_hit_memory_cache_on_second_call() {
        let config = ExperimentConfig {
            seed: 0xC0FFEE, // private key: avoid cross-test interference
            ..ExperimentConfig::test()
        };
        let bench = benchmark("wc").unwrap();
        let before = TraceStats::snapshot();
        let first = captured_runs(bench, &config).unwrap();
        let second = captured_runs(bench, &config).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let delta = TraceStats::snapshot().since(&before);
        assert_eq!(delta.captures, 1, "{delta:?}");
        assert!(delta.memory_hits >= 1, "{delta:?}");
        assert!(delta.events_captured > 0);
    }

    #[test]
    fn replayed_mix_matches_capture_event_count() {
        let config = ExperimentConfig {
            seed: 0xBEEF01,
            ..ExperimentConfig::test()
        };
        let bench = benchmark("cmp").unwrap();
        let runs = captured_runs(bench, &config).unwrap();
        let total: u64 = runs.iter().map(TraceBuf::events).sum();
        let mut mix = BranchMix::new();
        let replayed = replay_runs(&runs, &mut mix).unwrap();
        assert_eq!(replayed, total);
        assert!(mix.cond_total() > 0);
    }

    #[test]
    fn trace_key_distinguishes_scale_seed_and_bench() {
        let config = ExperimentConfig::test();
        let wc = trace_key(benchmark("wc").unwrap(), &config);
        let grep = trace_key(benchmark("grep").unwrap(), &config);
        assert_ne!(wc, grep);
        let other_seed = ExperimentConfig {
            seed: 7,
            ..ExperimentConfig::test()
        };
        assert_ne!(wc, trace_key(benchmark("wc").unwrap(), &other_seed));
    }

    #[test]
    fn stats_snapshot_since_and_json_are_consistent() {
        let a = TraceStats {
            captures: 2,
            replay_us: 10,
            ..TraceStats::default()
        };
        let b = TraceStats {
            captures: 5,
            replay_us: 25,
            ..TraceStats::default()
        };
        let d = b.since(&a);
        assert_eq!(d.captures, 3);
        assert_eq!(d.replay_us, 15);
        let json = d.to_json_value();
        assert_eq!(json.get("captures").and_then(JsonValue::as_int), Some(3));
        let spans = d.phase_spans();
        assert_eq!(spans[1].name, "trace_replay");
        assert_eq!(spans[1].wall, std::time::Duration::from_micros(15));
    }
}
