//! JSONL suite checkpoints.
//!
//! [`run_suite_supervised`](crate::run_suite_supervised) appends one
//! line per *completed* benchmark as it finishes, so a crashed or
//! partially failed run can be resumed (`--resume`) without re-running
//! what already succeeded. A line carries everything the tables and
//! figures need — exec stats, branch mix, all six predictor scorings,
//! code-expansion points — but not phase spans or per-site probes,
//! which are observability extras and come back empty after a restore.
//!
//! Loading is deliberately forgiving: a torn final line (the process
//! died mid-append) or an unknown benchmark name is skipped, not
//! fatal — a checkpoint must never be able to wedge the harness that
//! reads it.

use std::io::{self, Write};
use std::path::Path;

use branchlab_fsem::ExpansionPoint;
use branchlab_interp::ExecStats;
use branchlab_predict::PredStats;
use branchlab_telemetry::{JsonValue, SiteProbe};
use branchlab_trace::BranchMix;

use crate::harness::BenchResult;

/// Checkpoint line format version; bumped on incompatible change, and
/// mismatched lines are skipped on load.
pub const CHECKPOINT_VERSION: u64 = 1;

fn stats_json(s: &ExecStats) -> JsonValue {
    JsonValue::obj(vec![
        ("insts", s.insts.into()),
        ("branches", s.branches.into()),
        ("cond_branches", s.cond_branches.into()),
        ("taken_cond", s.taken_cond.into()),
        ("uncond_direct", s.uncond_direct.into()),
        ("uncond_indirect", s.uncond_indirect.into()),
        ("calls", s.calls.into()),
    ])
}

fn mix_json(m: &BranchMix) -> JsonValue {
    JsonValue::obj(vec![
        ("cond_taken", m.cond_taken.into()),
        ("cond_not_taken", m.cond_not_taken.into()),
        ("uncond_known", m.uncond_known.into()),
        ("uncond_unknown", m.uncond_unknown.into()),
    ])
}

fn pred_json(p: &PredStats) -> JsonValue {
    JsonValue::obj(vec![
        ("events", p.events.into()),
        ("correct", p.correct.into()),
        ("cond_events", p.cond_events.into()),
        ("cond_correct", p.cond_correct.into()),
        ("btb_lookups", p.btb_lookups.into()),
        ("btb_misses", p.btb_misses.into()),
    ])
}

fn expansion_json(e: &ExpansionPoint) -> JsonValue {
    JsonValue::obj(vec![
        ("slots", u64::from(e.slots).into()),
        ("natural_size", e.natural_size.into()),
        ("base_size", e.base_size.into()),
        ("fs_size", e.fs_size.into()),
        ("slot_insts", e.slot_insts.into()),
    ])
}

/// One checkpoint line for `result` (without trailing newline).
#[must_use]
pub fn to_line(result: &BenchResult) -> String {
    JsonValue::obj(vec![
        ("v", CHECKPOINT_VERSION.into()),
        ("bench", result.name.into()),
        ("source_lines", result.source_lines.into()),
        ("runs", result.runs.into()),
        ("stats", stats_json(&result.stats)),
        ("mix", mix_json(&result.mix)),
        ("sbtb", pred_json(&result.sbtb)),
        ("cbtb", pred_json(&result.cbtb)),
        ("fs", pred_json(&result.fs)),
        ("always_taken", pred_json(&result.always_taken)),
        ("always_not_taken", pred_json(&result.always_not_taken)),
        ("btfn", pred_json(&result.btfn)),
        (
            "expansion",
            JsonValue::Arr(result.expansion.iter().map(expansion_json).collect()),
        ),
    ])
    .to_json()
}

/// Append one benchmark record to an open checkpoint stream.
///
/// # Errors
/// Propagates write errors.
pub fn append(w: &mut impl Write, result: &BenchResult) -> io::Result<()> {
    writeln!(w, "{}", to_line(result))
}

/// A crash-safe JSONL checkpoint file.
///
/// Plain `O_APPEND` + `flush` leaves two windows where a kill can
/// poison a later `--resume`: a torn final line (tolerated by
/// [`load`], but the record is lost) and a page-cache-only write that
/// never reaches disk at all. `CheckpointFile` closes both: every
/// append rewrites the full line set to `<path>.tmp`, fsyncs it, and
/// renames it over `path`, so the on-disk checkpoint atomically steps
/// from one complete, durable state to the next. Checkpoints are a few
/// KiB and append once per *benchmark*, so the rewrite is noise next
/// to the run it records.
#[derive(Debug)]
pub struct CheckpointFile {
    path: std::path::PathBuf,
    lines: Vec<String>,
}

impl CheckpointFile {
    /// Open `path`, carrying over any lines a previous run left there
    /// (a missing file is an empty checkpoint). Pre-existing torn or
    /// alien lines are kept verbatim — [`load`] skips them — so
    /// opening never destroys bytes it didn't write.
    ///
    /// # Errors
    /// Propagates read errors other than "not found".
    pub fn open(path: &Path) -> io::Result<Self> {
        let lines = match std::fs::read_to_string(path) {
            Ok(text) => text.lines().map(String::from).collect(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        Ok(CheckpointFile {
            path: path.to_path_buf(),
            lines,
        })
    }

    /// Append `result` and atomically publish the updated checkpoint.
    ///
    /// # Errors
    /// Propagates write/fsync/rename errors; on error the previous
    /// on-disk checkpoint is still intact.
    pub fn append_result(&mut self, result: &BenchResult) -> io::Result<()> {
        self.lines.push(to_line(result));
        self.write_atomic()
    }

    /// Records currently held (including carried-over ones).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Is the checkpoint empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    fn write_atomic(&self) -> io::Result<()> {
        let tmp = self.path.with_extension("jsonl.tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            for line in &self.lines {
                writeln!(file, "{line}")?;
            }
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // Make the rename itself durable where possible; failure here
        // only narrows the crash window, it doesn't corrupt anything.
        if let Some(parent) = self.path.parent() {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }
}

fn u(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key)?.as_int().and_then(|i| u64::try_from(i).ok())
}

fn us(v: &JsonValue, key: &str) -> Option<usize> {
    u(v, key).and_then(|n| usize::try_from(n).ok())
}

fn parse_stats(v: &JsonValue) -> Option<ExecStats> {
    Some(ExecStats {
        insts: u(v, "insts")?,
        branches: u(v, "branches")?,
        cond_branches: u(v, "cond_branches")?,
        taken_cond: u(v, "taken_cond")?,
        uncond_direct: u(v, "uncond_direct")?,
        uncond_indirect: u(v, "uncond_indirect")?,
        calls: u(v, "calls")?,
    })
}

fn parse_mix(v: &JsonValue) -> Option<BranchMix> {
    Some(BranchMix {
        cond_taken: u(v, "cond_taken")?,
        cond_not_taken: u(v, "cond_not_taken")?,
        uncond_known: u(v, "uncond_known")?,
        uncond_unknown: u(v, "uncond_unknown")?,
    })
}

fn parse_pred(v: &JsonValue, key: &str) -> Option<PredStats> {
    let v = v.get(key)?;
    Some(PredStats {
        events: u(v, "events")?,
        correct: u(v, "correct")?,
        cond_events: u(v, "cond_events")?,
        cond_correct: u(v, "cond_correct")?,
        btb_lookups: u(v, "btb_lookups")?,
        btb_misses: u(v, "btb_misses")?,
    })
}

fn parse_expansion(v: &JsonValue) -> Option<Vec<ExpansionPoint>> {
    v.get("expansion")?
        .as_arr()?
        .iter()
        .map(|p| {
            Some(ExpansionPoint {
                slots: u16::try_from(u(p, "slots")?).ok()?,
                natural_size: us(p, "natural_size")?,
                base_size: us(p, "base_size")?,
                fs_size: us(p, "fs_size")?,
                slot_insts: us(p, "slot_insts")?,
            })
        })
        .collect()
}

/// Parse one checkpoint line; `None` for malformed lines, version
/// mismatches, and benchmark names not in the current suite.
#[must_use]
pub fn from_line(line: &str) -> Option<BenchResult> {
    let v = branchlab_telemetry::json::parse(line).ok()?;
    if u(&v, "v")? != CHECKPOINT_VERSION {
        return None;
    }
    let name = v.get("bench")?.as_str()?;
    // Intern through the suite table: BenchResult holds &'static str.
    let bench = branchlab_workloads::benchmark(name)?;
    Some(BenchResult {
        name: bench.name,
        source_lines: us(&v, "source_lines")?,
        runs: us(&v, "runs")?,
        stats: parse_stats(v.get("stats")?)?,
        mix: parse_mix(v.get("mix")?)?,
        sbtb: parse_pred(&v, "sbtb")?,
        cbtb: parse_pred(&v, "cbtb")?,
        fs: parse_pred(&v, "fs")?,
        always_taken: parse_pred(&v, "always_taken")?,
        always_not_taken: parse_pred(&v, "always_not_taken")?,
        btfn: parse_pred(&v, "btfn")?,
        expansion: parse_expansion(&v)?,
        phases: Vec::new(),
        sbtb_sites: SiteProbe::disabled(),
        cbtb_sites: SiteProbe::disabled(),
    })
}

/// Load every restorable benchmark record from a checkpoint file.
/// Malformed lines (including a torn final line) are skipped; when the
/// same benchmark appears more than once, the last record wins.
///
/// # Errors
/// Propagates the file-read error (callers typically treat a missing
/// file as an empty checkpoint).
pub fn load(path: &Path) -> io::Result<Vec<BenchResult>> {
    let text = std::fs::read_to_string(path)?;
    let mut results: Vec<BenchResult> = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Some(r) = from_line(line) {
            if let Some(existing) = results.iter_mut().find(|e| e.name == r.name) {
                *existing = r;
            } else {
                results.push(r);
            }
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_benchmark, ExperimentConfig};
    use branchlab_workloads::benchmark;

    fn sample() -> BenchResult {
        run_benchmark(benchmark("wc").unwrap(), &ExperimentConfig::test()).unwrap()
    }

    #[test]
    fn round_trips_everything_tables_need() {
        let r = sample();
        let back = from_line(&to_line(&r)).expect("round trip");
        assert_eq!(back.name, r.name);
        assert_eq!(back.source_lines, r.source_lines);
        assert_eq!(back.runs, r.runs);
        assert_eq!(back.stats, r.stats);
        assert_eq!(back.mix, r.mix);
        assert_eq!(back.sbtb, r.sbtb);
        assert_eq!(back.cbtb, r.cbtb);
        assert_eq!(back.fs, r.fs);
        assert_eq!(back.always_taken, r.always_taken);
        assert_eq!(back.always_not_taken, r.always_not_taken);
        assert_eq!(back.btfn, r.btfn);
        assert_eq!(back.expansion, r.expansion);
        // Observability extras are not persisted.
        assert!(back.phases.is_empty());
        assert!(back.sbtb_sites.sites().is_empty());
    }

    #[test]
    fn torn_and_alien_lines_are_skipped() {
        let r = sample();
        let mut buf = Vec::new();
        append(&mut buf, &r).unwrap();
        buf.extend_from_slice(b"{\"v\": 999, \"bench\": \"wc\"}\n");
        buf.extend_from_slice(b"{\"bench\": \"no-such-bench\"");
        let dir = std::env::temp_dir().join(format!("bl-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        std::fs::write(&path, &buf).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].name, "wc");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_file_is_complete_after_every_append() {
        let dir = std::env::temp_dir().join(format!("bl-ckpt-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.jsonl");

        let r = sample();
        let mut ckpt = CheckpointFile::open(&path).unwrap();
        assert!(ckpt.is_empty());
        for i in 0..3 {
            ckpt.append_result(&r).unwrap();
            // After each append, the on-disk state is a complete,
            // parseable checkpoint — never a torn intermediate — and
            // the temp file has been renamed away.
            let text = std::fs::read_to_string(&path).unwrap();
            assert_eq!(text.lines().count(), i + 1);
            assert!(text.ends_with('\n'));
            assert!(load(&path).unwrap().iter().all(|b| b.name == r.name));
            assert!(!path.with_extension("jsonl.tmp").exists());
        }
        assert_eq!(ckpt.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopening_preserves_existing_lines_and_neutralizes_torn_tails() {
        let dir = std::env::temp_dir().join(format!("bl-ckpt-reopen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.jsonl");

        let r = sample();
        // A previous run: one good record, then a kill mid-append left
        // a torn tail with no trailing newline.
        std::fs::write(&path, format!("{}\n{{\"bench\": \"wc", to_line(&r))).unwrap();

        let mut ckpt = CheckpointFile::open(&path).unwrap();
        assert_eq!(ckpt.len(), 2); // good line + torn tail, carried verbatim
        ckpt.append_result(&r).unwrap();

        // The rewrite newline-terminates the torn tail, so the new
        // record is NOT glued onto it: both good records load.
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 1); // same bench, last wins
        assert_eq!(loaded[0].name, r.name);
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_bench_lines_keep_the_last() {
        let mut a = sample();
        let b = sample();
        a.runs += 17;
        let text = format!("{}\n{}\n", to_line(&b), to_line(&a));
        let dir = std::env::temp_dir().join(format!("bl-ckpt-dup-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dup.jsonl");
        std::fs::write(&path, text).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].runs, a.runs);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
