//! Regeneration of the paper's Figures 3 and 4: branch cost vs ℓ̄ + m̄
//! for k ∈ {1, 2, 4, 8}, one curve per scheme, using the suite-average
//! accuracies (exactly how the paper produced them from Table 3).

use branchlab_pipeline::cost_curve;

use crate::harness::SuiteResult;
use crate::render::{f2, Table};

/// The three average accuracies a figure is drawn from.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SchemeAccuracies {
    /// Average SBTB accuracy.
    pub sbtb: f64,
    /// Average CBTB accuracy.
    pub cbtb: f64,
    /// Average Forward Semantic accuracy.
    pub fs: f64,
}

impl SchemeAccuracies {
    /// Suite averages (the means of Table 3).
    #[must_use]
    pub fn from_suite(suite: &SuiteResult) -> Self {
        SchemeAccuracies {
            sbtb: suite.mean_std(|b| b.sbtb.accuracy()).0,
            cbtb: suite.mean_std(|b| b.cbtb.accuracy()).0,
            fs: suite.mean_std(|b| b.fs.accuracy()).0,
        }
    }

    /// The paper's own Table 3 averages, for overlaying the original
    /// curves next to measured ones.
    #[must_use]
    pub fn paper() -> Self {
        SchemeAccuracies {
            sbtb: 0.915,
            cbtb: 0.924,
            fs: 0.935,
        }
    }
}

/// One figure panel: cost-vs-(ℓ̄+m̄) series for a fixed k.
#[must_use]
pub fn figure_panel(acc: &SchemeAccuracies, k: u32) -> Table {
    let mut t = Table::new(
        format!("Branch cost vs l+m for k = {k}"),
        &["l+m", "SBTB", "CBTB", "FS"],
    );
    let sbtb = cost_curve(acc.sbtb, k, 10.0, 1.0);
    let cbtb = cost_curve(acc.cbtb, k, 10.0, 1.0);
    let fs = cost_curve(acc.fs, k, 10.0, 1.0);
    for i in 0..sbtb.len() {
        t.row(vec![
            format!("{:.0}", sbtb[i].lm),
            f2(sbtb[i].cost),
            f2(cbtb[i].cost),
            f2(fs[i].cost),
        ]);
    }
    t
}

/// Figure 3: panels for k = 1 and k = 2.
#[must_use]
pub fn figure3(acc: &SchemeAccuracies) -> Vec<Table> {
    vec![figure_panel(acc, 1), figure_panel(acc, 2)]
}

/// Figure 4: panels for k = 4 and k = 8.
#[must_use]
pub fn figure4(acc: &SchemeAccuracies) -> Vec<Table> {
    vec![figure_panel(acc, 4), figure_panel(acc, 8)]
}

/// A low-tech ASCII plot of a figure panel (three curves, one character
/// column per ℓ̄+m̄ step), so the bench binaries can show the *shape*
/// the paper plots.
#[must_use]
pub fn ascii_plot(acc: &SchemeAccuracies, k: u32, height: usize) -> String {
    let curves = [
        ('S', cost_curve(acc.sbtb, k, 10.0, 1.0)),
        ('C', cost_curve(acc.cbtb, k, 10.0, 1.0)),
        ('F', cost_curve(acc.fs, k, 10.0, 1.0)),
    ];
    let max = curves
        .iter()
        .flat_map(|(_, c)| c.iter().map(|p| p.cost))
        .fold(1.0f64, f64::max);
    let min = 1.0;
    let cols = curves[0].1.len();
    let mut grid = vec![vec![b' '; cols * 3]; height];
    for (ch, curve) in &curves {
        for (x, p) in curve.iter().enumerate() {
            let frac = (p.cost - min) / (max - min).max(1e-9);
            let y = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            let cell = &mut grid[y.min(height - 1)][x * 3];
            // Stack overlapping curves left to right.
            if *cell == b' ' {
                *cell = *ch as u8;
            } else {
                grid[y.min(height - 1)][x * 3 + 1] = *ch as u8;
            }
        }
    }
    let mut out = format!(
        "k = {k}  (S = SBTB, C = CBTB, F = FS; y: {:.2}..{:.2} cycles, x: l+m 0..10)\n",
        min, max
    );
    for row in grid {
        out.push_str(String::from_utf8_lossy(&row).trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_have_eleven_points() {
        let t = figure_panel(&SchemeAccuracies::paper(), 1);
        assert_eq!(t.rows.len(), 11);
        assert_eq!(t.rows[0][0], "0");
        assert_eq!(t.rows[10][0], "10");
    }

    #[test]
    fn fs_curve_below_sbtb_curve_everywhere() {
        // With A_FS > A_SBTB, FS cost < SBTB cost for every lm > 0.
        let acc = SchemeAccuracies::paper();
        let t = figure_panel(&acc, 4);
        for row in &t.rows[1..] {
            let sbtb: f64 = row[1].parse().unwrap();
            let fs: f64 = row[3].parse().unwrap();
            assert!(fs < sbtb, "{row:?}");
        }
    }

    #[test]
    fn figures_cover_paper_k_values() {
        let acc = SchemeAccuracies::paper();
        assert_eq!(figure3(&acc).len(), 2);
        assert_eq!(figure4(&acc).len(), 2);
        assert!(figure4(&acc)[1].title.contains("k = 8"));
    }

    #[test]
    fn ascii_plot_renders() {
        let plot = ascii_plot(&SchemeAccuracies::paper(), 2, 12);
        assert!(plot.contains('S'));
        assert!(plot.contains('F'));
        assert!(plot.lines().count() >= 12);
    }

    #[test]
    fn deeper_k_panels_cost_more_at_same_lm() {
        let acc = SchemeAccuracies::paper();
        let k1 = figure_panel(&acc, 1);
        let k8 = figure_panel(&acc, 8);
        let c1: f64 = k1.rows[5][1].parse().unwrap();
        let c8: f64 = k8.rows[5][1].parse().unwrap();
        assert!(c8 > c1);
    }
}
