//! Process-wide counters for the parallel sweep executor
//! (`suite.sweep.parallel.*` in the metrics registry), following the
//! same snapshot/since pattern as [`TraceStats`](crate::TraceStats).
//!
//! The executor in [`SweepBatch`](crate::SweepBatch) bumps these on
//! every parallel scoring pass: how many sweeps ran, how many workers
//! they spawned, how many sweep points and work batches were scored,
//! how many batches were claimed beyond each worker's first (the
//! dynamic load-balancing traffic), total worker busy time, and the
//! plan-order merge time. The bench binaries export them into the
//! metrics registry and the run manifest, and synthesize `Timeline`
//! spans from the wall-clock counters.

use std::sync::atomic::{AtomicU64, Ordering};

use branchlab_telemetry::{JsonValue, MetricsRegistry, PhaseSpan};

// Cell names intentionally mirror the snake_case field/metric names
// they back.
#[allow(non_upper_case_globals)]
mod cells {
    use super::AtomicU64;
    pub static sweeps: AtomicU64 = AtomicU64::new(0);
    pub static workers: AtomicU64 = AtomicU64::new(0);
    pub static points: AtomicU64 = AtomicU64::new(0);
    pub static batches: AtomicU64 = AtomicU64::new(0);
    pub static stolen_batches: AtomicU64 = AtomicU64::new(0);
    pub static busy_us: AtomicU64 = AtomicU64::new(0);
    pub static merge_us: AtomicU64 = AtomicU64::new(0);
}

fn bump(cell: &AtomicU64, by: u64) {
    cell.fetch_add(by, Ordering::Relaxed);
}

/// A snapshot of the process-wide parallel-sweep counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Parallel scoring passes executed.
    pub sweeps: u64,
    /// Worker threads spawned, summed over sweeps.
    pub workers: u64,
    /// Predictor sweep points scored in parallel passes.
    pub points: u64,
    /// Work batches (predictor chunks + RAS sets) processed.
    pub batches: u64,
    /// Batches claimed beyond each worker's first — the work the
    /// dynamic queue redistributed instead of a static pre-split.
    pub stolen_batches: u64,
    /// Total worker busy wall-clock, in microseconds (sums across
    /// concurrent workers, so it can exceed elapsed time).
    pub busy_us: u64,
    /// Wall-clock spent merging worker results back into plan order,
    /// in microseconds.
    pub merge_us: u64,
}

impl SweepStats {
    /// Current counter values.
    #[must_use]
    pub fn snapshot() -> SweepStats {
        SweepStats {
            sweeps: cells::sweeps.load(Ordering::Relaxed),
            workers: cells::workers.load(Ordering::Relaxed),
            points: cells::points.load(Ordering::Relaxed),
            batches: cells::batches.load(Ordering::Relaxed),
            stolen_batches: cells::stolen_batches.load(Ordering::Relaxed),
            busy_us: cells::busy_us.load(Ordering::Relaxed),
            merge_us: cells::merge_us.load(Ordering::Relaxed),
        }
    }

    /// The counters as `(name, value)` pairs, for metrics export under
    /// a `suite.sweep.parallel.` prefix.
    #[must_use]
    pub fn counters(&self) -> [(&'static str, u64); 7] {
        [
            ("sweeps", self.sweeps),
            ("workers", self.workers),
            ("points", self.points),
            ("batches", self.batches),
            ("stolen_batches", self.stolen_batches),
            ("busy_us", self.busy_us),
            ("merge_us", self.merge_us),
        ]
    }

    /// Counter deltas since `earlier`.
    #[must_use]
    pub fn since(&self, earlier: &SweepStats) -> SweepStats {
        SweepStats {
            sweeps: self.sweeps.saturating_sub(earlier.sweeps),
            workers: self.workers.saturating_sub(earlier.workers),
            points: self.points.saturating_sub(earlier.points),
            batches: self.batches.saturating_sub(earlier.batches),
            stolen_batches: self.stolen_batches.saturating_sub(earlier.stolen_batches),
            busy_us: self.busy_us.saturating_sub(earlier.busy_us),
            merge_us: self.merge_us.saturating_sub(earlier.merge_us),
        }
    }

    /// Export every counter as `suite.sweep.parallel.<name>` into a
    /// metrics registry.
    pub fn export(&self, registry: &MetricsRegistry) {
        for (name, value) in self.counters() {
            registry
                .counter(&format!("suite.sweep.parallel.{name}"))
                .add(value);
        }
    }

    /// JSON object form for run manifests.
    #[must_use]
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Obj(
            self.counters()
                .into_iter()
                .map(|(k, v)| (k.to_string(), JsonValue::from(v)))
                .collect(),
        )
    }

    /// Synthesize `Timeline`-style spans from the accumulated
    /// wall-clock counters: aggregate worker scoring time (work =
    /// points scored) and plan-order merge time (work = batches
    /// merged).
    #[must_use]
    pub fn phase_spans(&self) -> Vec<PhaseSpan> {
        vec![
            PhaseSpan {
                name: "sweep_score".to_string(),
                wall: std::time::Duration::from_micros(self.busy_us),
                work: self.points,
            },
            PhaseSpan {
                name: "sweep_merge".to_string(),
                wall: std::time::Duration::from_micros(self.merge_us),
                work: self.batches,
            },
        ]
    }
}

/// One parallel pass's accounting, applied to the process-wide cells
/// in a single call (internal to the sweep executor).
pub(crate) fn note_sweep(delta: &SweepStats) {
    bump(&cells::sweeps, delta.sweeps);
    bump(&cells::workers, delta.workers);
    bump(&cells::points, delta.points);
    bump(&cells::batches, delta.batches);
    bump(&cells::stolen_batches, delta.stolen_batches);
    bump(&cells::busy_us, delta.busy_us);
    bump(&cells::merge_us, delta.merge_us);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_sweep_accumulates_and_since_subtracts() {
        let before = SweepStats::snapshot();
        note_sweep(&SweepStats {
            sweeps: 1,
            workers: 4,
            points: 36,
            batches: 13,
            stolen_batches: 9,
            busy_us: 1000,
            merge_us: 5,
        });
        let delta = SweepStats::snapshot().since(&before);
        assert!(delta.sweeps >= 1);
        assert!(delta.workers >= 4);
        assert!(delta.points >= 36);
    }

    #[test]
    fn json_and_spans_are_consistent() {
        let s = SweepStats {
            sweeps: 2,
            workers: 8,
            points: 72,
            batches: 26,
            stolen_batches: 18,
            busy_us: 2000,
            merge_us: 10,
        };
        let json = s.to_json_value();
        assert_eq!(json.get("workers").and_then(JsonValue::as_int), Some(8));
        assert_eq!(
            json.get("stolen_batches").and_then(JsonValue::as_int),
            Some(18)
        );
        let spans = s.phase_spans();
        assert_eq!(spans[0].name, "sweep_score");
        assert_eq!(spans[0].work, 72);
        assert_eq!(spans[1].name, "sweep_merge");
        assert_eq!(spans[1].wall, std::time::Duration::from_micros(10));
    }
}
