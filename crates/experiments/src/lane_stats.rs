//! Process-wide counters for the bit-parallel lane planner
//! (`suite.sweep.lane.*` in the metrics registry), following the same
//! snapshot/since pattern as [`SweepStats`](crate::SweepStats).
//!
//! [`SweepBatch`](crate::SweepBatch) bumps these once per scoring pass
//! after lane planning: how many passes consulted the planner, how
//! many [`LaneFamily`](branchlab_predict::LaneFamily) work items it
//! packed, how many sweep points rode inside them as lanes, how many
//! points stayed on the scalar path, and how many branch events were
//! scored through lane kernels (each event counts once per family, not
//! once per lane — that amortization *is* the speedup). The bench
//! binaries export them into the registry and the run manifest, and
//! `branchlabd` merges them into `/metrics`.

use std::sync::atomic::{AtomicU64, Ordering};

use branchlab_telemetry::{JsonValue, MetricsRegistry};

// Cell names intentionally mirror the snake_case field/metric names
// they back.
#[allow(non_upper_case_globals)]
mod cells {
    use super::AtomicU64;
    pub static passes: AtomicU64 = AtomicU64::new(0);
    pub static families: AtomicU64 = AtomicU64::new(0);
    pub static lanes: AtomicU64 = AtomicU64::new(0);
    pub static scalar_points: AtomicU64 = AtomicU64::new(0);
    pub static events: AtomicU64 = AtomicU64::new(0);
}

fn bump(cell: &AtomicU64, by: u64) {
    cell.fetch_add(by, Ordering::Relaxed);
}

/// A snapshot of the process-wide lane-planner counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Scoring passes that ran the lane planner.
    pub passes: u64,
    /// Lane families packed (each scores all its lanes in one walk).
    pub families: u64,
    /// Sweep points scored as packed lanes.
    pub lanes: u64,
    /// Sweep points that fell back to the scalar path.
    pub scalar_points: u64,
    /// Branch events walked by lane kernels (once per family).
    pub events: u64,
}

impl LaneStats {
    /// Current counter values.
    #[must_use]
    pub fn snapshot() -> LaneStats {
        LaneStats {
            passes: cells::passes.load(Ordering::Relaxed),
            families: cells::families.load(Ordering::Relaxed),
            lanes: cells::lanes.load(Ordering::Relaxed),
            scalar_points: cells::scalar_points.load(Ordering::Relaxed),
            events: cells::events.load(Ordering::Relaxed),
        }
    }

    /// The counters as `(name, value)` pairs, for metrics export under
    /// a `suite.sweep.lane.` prefix.
    #[must_use]
    pub fn counters(&self) -> [(&'static str, u64); 5] {
        [
            ("passes", self.passes),
            ("families", self.families),
            ("lanes", self.lanes),
            ("scalar_points", self.scalar_points),
            ("events", self.events),
        ]
    }

    /// Counter deltas since `earlier`.
    #[must_use]
    pub fn since(&self, earlier: &LaneStats) -> LaneStats {
        LaneStats {
            passes: self.passes.saturating_sub(earlier.passes),
            families: self.families.saturating_sub(earlier.families),
            lanes: self.lanes.saturating_sub(earlier.lanes),
            scalar_points: self.scalar_points.saturating_sub(earlier.scalar_points),
            events: self.events.saturating_sub(earlier.events),
        }
    }

    /// Export every counter as `suite.sweep.lane.<name>` into a
    /// metrics registry.
    pub fn export(&self, registry: &MetricsRegistry) {
        for (name, value) in self.counters() {
            registry
                .counter(&format!("suite.sweep.lane.{name}"))
                .add(value);
        }
    }

    /// JSON object form for run manifests.
    #[must_use]
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Obj(
            self.counters()
                .into_iter()
                .map(|(k, v)| (k.to_string(), JsonValue::from(v)))
                .collect(),
        )
    }
}

/// One scoring pass's accounting, applied to the process-wide cells in
/// a single call (internal to the sweep executor).
pub(crate) fn note_lanes(delta: &LaneStats) {
    bump(&cells::passes, delta.passes);
    bump(&cells::families, delta.families);
    bump(&cells::lanes, delta.lanes);
    bump(&cells::scalar_points, delta.scalar_points);
    bump(&cells::events, delta.events);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_lanes_accumulates_and_since_subtracts() {
        let before = LaneStats::snapshot();
        note_lanes(&LaneStats {
            passes: 1,
            families: 2,
            lanes: 28,
            scalar_points: 3,
            events: 5000,
        });
        let delta = LaneStats::snapshot().since(&before);
        assert!(delta.passes >= 1);
        assert!(delta.families >= 2);
        assert!(delta.lanes >= 28);
        assert!(delta.scalar_points >= 3);
        assert!(delta.events >= 5000);
    }

    #[test]
    fn json_matches_counters() {
        let s = LaneStats {
            passes: 3,
            families: 4,
            lanes: 64,
            scalar_points: 7,
            events: 12345,
        };
        let json = s.to_json_value();
        assert_eq!(json.get("families").and_then(JsonValue::as_int), Some(4));
        assert_eq!(json.get("lanes").and_then(JsonValue::as_int), Some(64));
        assert_eq!(json.get("events").and_then(JsonValue::as_int), Some(12345));
    }
}
