//! Deterministic fault injection for the experiment harness.
//!
//! A [`FaultInjector`] sits at the phase boundaries of
//! [`run_benchmark`](crate::run_benchmark) and — at configurable,
//! seeded rates — injects three kinds of trouble:
//!
//! * **exec errors** ([`ExecError::Injected`], classified transient, so
//!   the supervisor's retry policy engages),
//! * **delays** (a `thread::sleep`, the way to exercise the watchdog),
//! * **panics** (the way to exercise `catch_unwind` isolation).
//!
//! Decisions are *stateless*: whether site `s` of benchmark `b` faults
//! on attempt `a` is a pure SplitMix64 hash of
//! `(seed, b, s, a, fault-kind)`, so outcomes are independent of thread
//! scheduling, identical across reruns with the same seed, and a
//! retried attempt gets a fresh draw (injected faults really are
//! transient). This mirrors how the probe-experiment harnesses of the
//! BTB reverse-engineering literature make flaky-trial handling
//! testable: the failure pattern is part of the experiment seed.

use std::time::Duration;

use branchlab_interp::ExecError;
use branchlab_telemetry::Rng;

/// Fault-injection configuration, carried by
/// [`ExperimentConfig`](crate::ExperimentConfig).
///
/// All rates are probabilities in `[0, 1]` evaluated independently at
/// every injection site; the default configuration injects nothing.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed for the injection hash (independent of the workload seed so
    /// fault patterns can be varied without changing inputs).
    pub seed: u64,
    /// Probability of injecting an [`ExecError::Injected`] at a site.
    pub exec_error_rate: f64,
    /// Probability of panicking at a site.
    pub panic_rate: f64,
    /// Probability of sleeping for [`FaultConfig::delay`] at a site.
    pub delay_rate: f64,
    /// Sleep duration for delay faults.
    pub delay: Duration,
    /// Restrict injection to these benchmarks; empty means all.
    pub benches: Vec<String>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xFA_17,
            exec_error_rate: 0.0,
            panic_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::from_millis(50),
            benches: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// `true` when any fault kind has a nonzero rate.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.exec_error_rate > 0.0 || self.panic_rate > 0.0 || self.delay_rate > 0.0
    }

    /// `true` when injection applies to `bench` (the filter list is
    /// empty or names it).
    #[must_use]
    pub fn targets(&self, bench: &str) -> bool {
        self.benches.is_empty() || self.benches.iter().any(|b| b == bench)
    }
}

/// 64-bit FNV-1a, the site/bench-name component of the decision hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The three independent decision lanes at each site. Embedders that
/// bring their own fault classes (see [`FaultInjector::draw`]) must
/// use lane tags ≥ [`FIRST_CUSTOM_LANE`] to stay decorrelated from
/// these.
#[derive(Copy, Clone)]
enum Lane {
    Delay = 1,
    Panic = 2,
    Exec = 3,
}

/// Lowest lane tag available to [`FaultInjector::draw`] callers; tags
/// below this are reserved for the built-in exec/panic/delay lanes.
pub const FIRST_CUSTOM_LANE: u64 = 16;

/// Per-(benchmark, attempt) fault injector. See the module docs for the
/// determinism contract.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    bench_hash: u64,
    attempt: u32,
    armed: bool,
}

impl FaultInjector {
    /// An injector for one attempt of one benchmark. Disarmed (all
    /// [`FaultInjector::trip`] calls are free no-ops) when `cfg` has no
    /// nonzero rate or does not target `bench`.
    #[must_use]
    pub fn new(cfg: &FaultConfig, bench: &str, attempt: u32) -> Self {
        FaultInjector {
            armed: cfg.enabled() && cfg.targets(bench),
            bench_hash: fnv1a(bench.as_bytes()),
            cfg: cfg.clone(),
            attempt,
        }
    }

    /// An injector that never fires.
    #[must_use]
    pub fn disarmed() -> Self {
        FaultInjector::new(&FaultConfig::default(), "", 1)
    }

    /// Whether this injector can fire at all.
    #[must_use]
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// One seeded draw on a decision lane.
    fn fires(&self, site: &str, lane: Lane, rate: f64) -> bool {
        self.draw(site, lane as u64, rate)
    }

    /// One deterministic draw on a caller-defined decision lane.
    ///
    /// This is the extension point for embedders with fault classes
    /// outside the exec-error taxonomy (the server's chaos sites:
    /// cache-read corruption, spill-write failure, ...). The decision
    /// is the same pure hash of `(seed, scope, site, attempt, lane)`
    /// the built-in lanes use, but — unlike [`FaultInjector::trip`] —
    /// it is *not* gated on [`FaultInjector::armed`]: the caller owns
    /// its rates, so a zero rate is the only off switch. Use lane tags
    /// ≥ [`FIRST_CUSTOM_LANE`].
    #[must_use]
    pub fn draw(&self, site: &str, lane: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let key = self
            .cfg
            .seed
            .wrapping_add(self.bench_hash.rotate_left(7))
            .wrapping_add(fnv1a(site.as_bytes()).rotate_left(29))
            .wrapping_add(u64::from(self.attempt).wrapping_mul(0x9e37_79b9))
            .wrapping_add(lane.wrapping_mul(0x517c_c1b7_2722_0a95));
        Rng::seed_from_u64(key).gen_bool(rate)
    }

    /// Evaluate the injection site `site`: possibly sleep, possibly
    /// panic, possibly return an [`ExecError::Injected`].
    ///
    /// # Errors
    /// Returns [`ExecError::Injected`] when the exec-error lane fires.
    ///
    /// # Panics
    /// Panics (deliberately) when the panic lane fires — the supervisor
    /// converts the payload into a benchmark failure record.
    pub fn trip(&self, site: &'static str) -> Result<(), ExecError> {
        if !self.armed {
            return Ok(());
        }
        if self.fires(site, Lane::Delay, self.cfg.delay_rate) {
            std::thread::sleep(self.cfg.delay);
        }
        if self.fires(site, Lane::Panic, self.cfg.panic_rate) {
            panic!(
                "fault injection: panic at {site} (attempt {})",
                self.attempt
            );
        }
        if self.fires(site, Lane::Exec, self.cfg.exec_error_rate) {
            return Err(ExecError::Injected { site });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_exec(benches: Vec<String>) -> FaultConfig {
        FaultConfig {
            exec_error_rate: 1.0,
            benches,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn disabled_config_never_fires() {
        let inj = FaultInjector::new(&FaultConfig::default(), "wc", 1);
        assert!(!inj.armed());
        for _ in 0..100 {
            assert!(inj.trip("compile").is_ok());
        }
    }

    #[test]
    fn rate_one_always_fires_with_site_identity() {
        let inj = FaultInjector::new(&full_exec(vec![]), "wc", 1);
        assert_eq!(
            inj.trip("compile"),
            Err(ExecError::Injected { site: "compile" })
        );
        assert_eq!(
            inj.trip("natural_eval"),
            Err(ExecError::Injected {
                site: "natural_eval"
            })
        );
    }

    #[test]
    fn bench_filter_restricts_targets() {
        let cfg = full_exec(vec!["wc".into()]);
        assert!(FaultInjector::new(&cfg, "wc", 1).trip("compile").is_err());
        assert!(FaultInjector::new(&cfg, "grep", 1).trip("compile").is_ok());
        assert!(!FaultInjector::new(&cfg, "grep", 1).armed());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let mk = |seed, bench: &str, attempt| {
            let cfg = FaultConfig {
                exec_error_rate: 0.5,
                seed,
                ..FaultConfig::default()
            };
            let inj = FaultInjector::new(&cfg, bench, attempt);
            ["compile", "profile", "natural_eval", "fs_eval"].map(|s| inj.trip(s).is_err())
        };
        // Same key → same pattern.
        assert_eq!(mk(1, "wc", 1), mk(1, "wc", 1));
        // Different seeds/benches/attempts decorrelate. At rate 0.5 over
        // 4 sites each pair collides with probability 1/16; the triple
        // assertion failing by chance would mean three simultaneous
        // collisions under fixed seeds (it either always passes or the
        // constants must change).
        let base = mk(1, "wc", 1);
        assert!(
            base != mk(2, "wc", 1) || base != mk(3, "wc", 1) || base != mk(4, "wc", 1),
            "seed does not influence decisions"
        );
        assert!(
            mk(1, "grep", 1) != base || mk(1, "cmp", 1) != base || mk(1, "tee", 1) != base,
            "bench does not influence decisions"
        );
        assert!(
            mk(1, "wc", 2) != base || mk(1, "wc", 3) != base || mk(1, "wc", 4) != base,
            "attempt does not influence decisions"
        );
    }

    #[test]
    fn custom_lanes_draw_without_arming_and_decorrelate() {
        // A config with every built-in rate at zero never arms...
        let cfg = FaultConfig {
            seed: 11,
            ..FaultConfig::default()
        };
        let inj = FaultInjector::new(&cfg, "server", 1);
        assert!(!inj.armed());
        // ...but custom lanes still draw: rate 1 fires, rate 0 never.
        assert!(inj.draw("cache_read", FIRST_CUSTOM_LANE, 1.0));
        assert!(!inj.draw("cache_read", FIRST_CUSTOM_LANE, 0.0));
        // Draws are deterministic and lane/site-sensitive.
        let pattern = |site: &str, lane: u64| {
            (1..64)
                .map(|a| FaultInjector::new(&cfg, "server", a).draw(site, lane, 0.5))
                .collect::<Vec<_>>()
        };
        assert_eq!(pattern("spill", 17), pattern("spill", 17));
        assert_ne!(pattern("spill", 17), pattern("spill", 18));
        assert_ne!(pattern("spill", 17), pattern("cache_read", 17));
    }

    #[test]
    fn delay_lane_sleeps() {
        let cfg = FaultConfig {
            delay_rate: 1.0,
            delay: Duration::from_millis(30),
            ..FaultConfig::default()
        };
        let inj = FaultInjector::new(&cfg, "wc", 1);
        let t0 = std::time::Instant::now();
        inj.trip("compile").unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    #[should_panic(expected = "fault injection: panic at compile")]
    fn panic_lane_panics() {
        let cfg = FaultConfig {
            panic_rate: 1.0,
            ..FaultConfig::default()
        };
        let _ = FaultInjector::new(&cfg, "wc", 1).trip("compile");
    }
}
