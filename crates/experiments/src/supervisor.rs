//! branchlab-guard: the supervision layer between `run_suite` and the
//! per-benchmark pipeline.
//!
//! Every benchmark attempt runs on its own thread behind
//! `catch_unwind`, an optional wall-clock watchdog, and a
//! retry-with-exponential-backoff policy driven by the
//! transient/permanent error taxonomy ([`ExperimentError::class`]):
//!
//! * a panicking benchmark becomes a [`BenchFailure`] record instead of
//!   tearing down the whole suite;
//! * a benchmark that exceeds the watchdog deadline is abandoned and
//!   recorded as [`ExperimentError::Timeout`] (the stuck thread is
//!   detached — it can burn CPU until the process exits, which is the
//!   price of a deadline `std` threads cannot enforce cooperatively);
//! * transient errors (injected faults, panics, timeouts) are retried
//!   up to [`SupervisorConfig::max_attempts`] with exponential backoff,
//!   permanent errors (every real interpreter/pipeline error) fail
//!   immediately — retrying a deterministic fault is wasted work;
//! * completed benchmarks are appended to a JSONL checkpoint so a
//!   `--resume` rerun only re-executes what previously failed.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

use branchlab_interp::ErrorClass;
use branchlab_workloads::{Benchmark, SUITE};

use crate::checkpoint;
use crate::harness::{
    run_benchmark_attempt, BenchResult, ExperimentConfig, ExperimentError, SuiteResult,
};

/// Thread-name prefix marking supervised benchmark attempts; the panic
/// hook installed by the supervisor suppresses the default
/// panic-message spew for these threads only (their payloads are
/// captured and reported as failure records instead).
const SUPERVISED_THREAD_PREFIX: &str = "bl-sup:";

/// Supervision policy for a suite run.
#[derive(Clone, Debug, PartialEq)]
pub struct SupervisorConfig {
    /// Maximum attempts per benchmark (≥ 1); only transient errors are
    /// retried.
    pub max_attempts: u32,
    /// Backoff before retry `n` is `backoff_base × 2^(n−1)`, capped at
    /// [`SupervisorConfig::backoff_max`].
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_max: Duration,
    /// Wall-clock deadline per attempt; `None` disables the watchdog.
    pub watchdog: Option<Duration>,
    /// JSONL checkpoint file: completed benchmarks are appended as they
    /// finish, and [`SupervisorConfig::resume`] reads it back.
    pub checkpoint: Option<PathBuf>,
    /// Skip benchmarks already recorded in the checkpoint file.
    pub resume: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_attempts: 3,
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_secs(2),
            watchdog: None,
            checkpoint: None,
            resume: false,
        }
    }
}

impl SupervisorConfig {
    /// The backoff slept after failed attempt `attempt` (1-based).
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << (attempt - 1).min(16);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_max)
    }
}

/// One benchmark the supervisor gave up on.
#[derive(Clone, Debug)]
pub struct BenchFailure {
    /// Benchmark name.
    pub name: String,
    /// Rendered last error.
    pub error: String,
    /// Classification of the last error.
    pub class: ErrorClass,
    /// Attempts consumed (1 for a permanent error, up to
    /// [`SupervisorConfig::max_attempts`] for transient ones).
    pub attempts: u32,
    /// Wall clock from first attempt to giving up.
    pub elapsed: Duration,
}

impl std::fmt::Display for BenchFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: FAILED ({}, {} attempt{}, {:.2}s): {}",
            self.name,
            self.class,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.elapsed.as_secs_f64(),
            self.error
        )
    }
}

/// Counters describing what the supervisor did during a run; exported
/// into the telemetry metrics registry and the run manifest by the
/// bench binaries.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Benchmarks that completed (excluding restored ones).
    pub completed: u64,
    /// Benchmarks that failed after supervision.
    pub failed: u64,
    /// Benchmarks restored from the resume checkpoint.
    pub resumed: u64,
    /// Retry attempts performed (attempts beyond each benchmark's
    /// first).
    pub retries: u64,
    /// Watchdog deadline firings.
    pub watchdog_fired: u64,
    /// Panics caught and converted into errors.
    pub panics_caught: u64,
}

impl SupervisorStats {
    /// Accumulate another stats block.
    pub fn merge(&mut self, other: &SupervisorStats) {
        self.completed += other.completed;
        self.failed += other.failed;
        self.resumed += other.resumed;
        self.retries += other.retries;
        self.watchdog_fired += other.watchdog_fired;
        self.panics_caught += other.panics_caught;
    }

    /// The counters as `(name, value)` pairs, for metrics export.
    #[must_use]
    pub fn counters(&self) -> [(&'static str, u64); 6] {
        [
            ("benches_completed", self.completed),
            ("benches_failed", self.failed),
            ("benches_resumed", self.resumed),
            ("retries", self.retries),
            ("watchdog_fired", self.watchdog_fired),
            ("panics_caught", self.panics_caught),
        ]
    }
}

/// Install (once per process) a panic hook that suppresses the default
/// stderr report for supervised benchmark threads — their panics are
/// captured and become failure records — while delegating every other
/// thread's panic to the previously installed hook.
fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let supervised = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(SUPERVISED_THREAD_PREFIX));
            if !supervised {
                previous(info);
            }
        }));
    });
}

/// Render a caught panic payload.
fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The attempt closure [`supervise`] drives: called with the 1-based
/// attempt number, from a freshly spawned thread each attempt.
pub type AttemptFn<T> = Arc<dyn Fn(u32) -> Result<T, ExperimentError> + Send + Sync>;

/// Run `attempt_fn` under full supervision — panic isolation, optional
/// watchdog deadline, transient-error retries with exponential
/// backoff — and report what happened.
///
/// Returns the value and the number of attempts consumed on success, a
/// [`BenchFailure`] once retries are exhausted or a permanent error
/// surfaces, and the supervision counters either way.
pub fn supervise<T: Send + 'static>(
    name: &str,
    sup: &SupervisorConfig,
    attempt_fn: AttemptFn<T>,
) -> (Result<(T, u32), BenchFailure>, SupervisorStats) {
    install_quiet_panic_hook();
    let mut stats = SupervisorStats::default();
    let start = Instant::now();
    let max_attempts = sup.max_attempts.max(1);
    let mut last: Option<ExperimentError> = None;
    let mut attempts_used = 0;

    for attempt in 1..=max_attempts {
        attempts_used = attempt;
        if attempt > 1 {
            stats.retries += 1;
            std::thread::sleep(sup.backoff(attempt - 1));
        }

        let (tx, rx) = mpsc::channel();
        let f = Arc::clone(&attempt_fn);
        let spawned = std::thread::Builder::new()
            .name(format!("{SUPERVISED_THREAD_PREFIX}{name}:a{attempt}"))
            .spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| f(attempt)));
                let _ = tx.send(result);
            });

        let outcome = match spawned {
            Err(e) => Err(ExperimentError::Panic(format!("thread spawn failed: {e}"))),
            Ok(_handle) => {
                let received = match sup.watchdog {
                    Some(limit) => rx.recv_timeout(limit).map_err(|e| match e {
                        RecvTimeoutError::Timeout => {
                            stats.watchdog_fired += 1;
                            ExperimentError::Timeout { limit }
                        }
                        RecvTimeoutError::Disconnected => {
                            ExperimentError::Panic("benchmark thread vanished".to_string())
                        }
                    }),
                    None => rx.recv().map_err(|_| {
                        ExperimentError::Panic("benchmark thread vanished".to_string())
                    }),
                };
                match received {
                    Err(e) => Err(e),
                    Ok(Err(payload)) => {
                        stats.panics_caught += 1;
                        Err(ExperimentError::Panic(panic_payload(payload.as_ref())))
                    }
                    Ok(Ok(run_result)) => run_result,
                }
            }
        };

        match outcome {
            Ok(value) => {
                stats.completed += 1;
                return (Ok((value, attempt)), stats);
            }
            Err(e) => {
                let transient = e.class().is_transient();
                last = Some(e);
                if !transient {
                    break;
                }
            }
        }
    }

    stats.failed += 1;
    let error = last.expect("at least one attempt ran");
    (
        Err(BenchFailure {
            name: name.to_string(),
            class: error.class(),
            error: error.to_string(),
            attempts: attempts_used,
            elapsed: start.elapsed(),
        }),
        stats,
    )
}

/// Shared handle to the crash-safe checkpoint file (each append
/// publishes a complete, fsynced snapshot via temp-file + rename).
type CheckpointWriter = Arc<Mutex<checkpoint::CheckpointFile>>;

fn open_checkpoint(path: &std::path::Path) -> Option<CheckpointWriter> {
    match checkpoint::CheckpointFile::open(path) {
        Ok(f) => Some(Arc::new(Mutex::new(f))),
        Err(e) => {
            eprintln!(
                "branchlab-guard: cannot open checkpoint {} ({e}); continuing without checkpointing",
                path.display()
            );
            None
        }
    }
}

/// Run the full 12-benchmark suite under supervision, degrading
/// gracefully: every benchmark the supervisor cannot complete becomes a
/// [`BenchFailure`] record in the returned [`SuiteResult`] while all
/// other results are kept.
///
/// With [`SupervisorConfig::checkpoint`] set, completed benchmarks are
/// appended to the JSONL checkpoint as they finish; with
/// [`SupervisorConfig::resume`] additionally set, benchmarks already in
/// the checkpoint are restored instead of re-run (their phase spans and
/// site probes are not persisted and come back empty). A missing or
/// corrupt checkpoint degrades to a fresh run.
#[must_use]
pub fn run_suite_supervised(config: &ExperimentConfig, sup: &SupervisorConfig) -> SuiteResult {
    let mut stats = SupervisorStats::default();

    let mut restored: HashMap<&'static str, BenchResult> = HashMap::new();
    if sup.resume {
        if let Some(path) = &sup.checkpoint {
            for result in checkpoint::load(path).unwrap_or_default() {
                restored.insert(result.name, result);
            }
        }
    }
    stats.resumed = restored.len() as u64;

    let writer = sup.checkpoint.as_deref().and_then(open_checkpoint);

    // A bounded worker pool: in-flight supervisor threads are capped at
    // the machine's available parallelism instead of one thread per
    // benchmark. Workers claim pending benchmarks through a shared
    // cursor and write into a fixed slot per benchmark, so the
    // assembled results are in suite order regardless of completion
    // order (and independent of the worker count).
    let pending: Vec<&'static Benchmark> = SUITE
        .iter()
        .filter(|b| !restored.contains_key(b.name))
        .collect();
    let n_workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(pending.len());
    // Divide the sweep-thread budget across the supervisor workers:
    // each in-flight benchmark gets an equal share (at least 1), so
    // supervisor threads × sweep workers never exceeds the configured
    // budget — without this, every concurrent benchmark would spawn a
    // full complement of sweep workers and oversubscribe the machine.
    let config = &ExperimentConfig {
        sweep_threads: Some((config.resolved_sweep_threads() / n_workers.max(1)).max(1)),
        ..config.clone()
    };
    type Slot = Option<(Result<(BenchResult, u32), BenchFailure>, SupervisorStats)>;
    let slots: Arc<Mutex<Vec<Slot>>> = Arc::new(Mutex::new(vec![None; pending.len()]));
    let cursor = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let pending = Arc::new(pending);

    let mut workers = Vec::new();
    for _ in 0..n_workers {
        let cfg = config.clone();
        let supc = sup.clone();
        let w = writer.clone();
        let slots = Arc::clone(&slots);
        let cursor = Arc::clone(&cursor);
        let pending = Arc::clone(&pending);
        workers.push(std::thread::spawn(move || loop {
            let i = cursor.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            let Some(bench) = pending.get(i).copied() else {
                break;
            };
            let cfg = cfg.clone();
            // `supervise` already isolates benchmark panics; this outer
            // guard keeps a supervisor-level panic (a harness bug) from
            // killing the worker and starving the remaining benchmarks.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let attempt_fn: AttemptFn<BenchResult> =
                    Arc::new(move |attempt| run_benchmark_attempt(bench, &cfg, attempt));
                supervise(bench.name, &supc, attempt_fn)
            }));
            if let (Ok((Ok((result, _)), _)), Some(w)) = (&outcome, &w) {
                // A poisoned lock or full disk loses checkpointing,
                // never the in-memory result.
                if let Ok(mut file) = w.lock() {
                    let _ = file.append_result(result);
                }
            }
            let slot = match outcome {
                Ok(pair) => pair,
                Err(payload) => {
                    let s = SupervisorStats {
                        failed: 1,
                        ..SupervisorStats::default()
                    };
                    (
                        Err(BenchFailure {
                            name: bench.name.to_string(),
                            error: format!(
                                "supervisor panicked: {}",
                                panic_payload(payload.as_ref())
                            ),
                            class: ErrorClass::Transient,
                            attempts: 0,
                            elapsed: Duration::ZERO,
                        }),
                        s,
                    )
                }
            };
            if let Ok(mut slots) = slots.lock() {
                slots[i] = Some(slot);
            }
        }));
    }
    for worker in workers {
        let _ = worker.join();
    }

    let mut completed: HashMap<&'static str, BenchResult> = HashMap::new();
    let mut failed: HashMap<&'static str, BenchFailure> = HashMap::new();
    let slots = std::mem::take(
        &mut *slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    for (i, slot) in slots.into_iter().enumerate() {
        let name = pending[i].name;
        match slot {
            Some((outcome, s)) => {
                stats.merge(&s);
                match outcome {
                    Ok((result, _attempts)) => {
                        completed.insert(name, result);
                    }
                    Err(failure) => {
                        failed.insert(name, failure);
                    }
                }
            }
            // A worker died before filling the slot (should be
            // unreachable given the guard above) — still a failure
            // record, never a silently dropped benchmark.
            None => {
                stats.failed += 1;
                failed.insert(
                    name,
                    BenchFailure {
                        name: name.to_string(),
                        error: "supervisor worker lost before completing".to_string(),
                        class: ErrorClass::Transient,
                        attempts: 0,
                        elapsed: Duration::ZERO,
                    },
                );
            }
        }
    }

    let mut benches = Vec::new();
    let mut failures = Vec::new();
    for bench in SUITE {
        if let Some(r) = restored.remove(bench.name) {
            benches.push(r);
        } else if let Some(r) = completed.remove(bench.name) {
            benches.push(r);
        } else if let Some(f) = failed.remove(bench.name) {
            failures.push(f);
        }
    }
    SuiteResult {
        benches,
        failures,
        supervisor: stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchlab_interp::ExecError;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn fast() -> SupervisorConfig {
        SupervisorConfig {
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(4),
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn first_attempt_success_needs_no_retry() {
        let (out, stats) = supervise("t", &fast(), Arc::new(|_| Ok(42u32)));
        let (v, attempts) = out.unwrap();
        assert_eq!((v, attempts), (42, 1));
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn transient_errors_are_retried_until_success() {
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        let (out, stats) = supervise(
            "t",
            &fast(),
            Arc::new(move |attempt| {
                c.fetch_add(1, Ordering::SeqCst);
                if attempt < 3 {
                    Err(ExperimentError::Exec(ExecError::Injected { site: "x" }))
                } else {
                    Ok(attempt)
                }
            }),
        );
        let (v, attempts) = out.unwrap();
        assert_eq!((v, attempts), (3, 3));
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(stats.retries, 2);
    }

    #[test]
    fn permanent_errors_fail_without_retry() {
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        let (out, stats) = supervise::<u32>(
            "t",
            &fast(),
            Arc::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
                Err(ExperimentError::Exec(ExecError::OutOfFuel {
                    at: branchlab_ir::Addr(0),
                }))
            }),
        );
        let failure = out.unwrap_err();
        assert_eq!(failure.attempts, 1);
        assert_eq!(failure.class, ErrorClass::Permanent);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn retries_exhausted_reports_last_error_and_attempts() {
        let (out, stats) = supervise::<u32>(
            "t",
            &fast(),
            Arc::new(|_| Err(ExperimentError::Exec(ExecError::Injected { site: "s" }))),
        );
        let failure = out.unwrap_err();
        assert_eq!(failure.attempts, 3);
        assert_eq!(failure.class, ErrorClass::Transient);
        assert!(failure.error.contains("injected fault at s"), "{failure}");
        assert_eq!(stats.retries, 2);
    }

    #[test]
    fn panics_are_captured_and_classified_transient() {
        let (out, stats) = supervise::<u32>(
            "t",
            &SupervisorConfig {
                max_attempts: 2,
                ..fast()
            },
            Arc::new(|attempt| panic!("boom {attempt}")),
        );
        let failure = out.unwrap_err();
        assert_eq!(failure.class, ErrorClass::Transient);
        assert_eq!(failure.attempts, 2);
        assert!(failure.error.contains("boom 2"), "{}", failure.error);
        assert_eq!(stats.panics_caught, 2);
    }

    #[test]
    fn watchdog_abandons_stuck_attempts() {
        let sup = SupervisorConfig {
            max_attempts: 2,
            watchdog: Some(Duration::from_millis(20)),
            ..fast()
        };
        let (out, stats) = supervise::<u32>(
            "t",
            &sup,
            Arc::new(|_| {
                std::thread::sleep(Duration::from_millis(400));
                Ok(1)
            }),
        );
        let failure = out.unwrap_err();
        assert_eq!(failure.class, ErrorClass::Transient);
        assert!(failure.error.contains("watchdog"), "{}", failure.error);
        assert_eq!(stats.watchdog_fired, 2);
        assert_eq!(failure.attempts, 2);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let sup = SupervisorConfig {
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_millis(350),
            ..SupervisorConfig::default()
        };
        assert_eq!(sup.backoff(1), Duration::from_millis(100));
        assert_eq!(sup.backoff(2), Duration::from_millis(200));
        assert_eq!(sup.backoff(3), Duration::from_millis(350));
        assert_eq!(sup.backoff(60), Duration::from_millis(350));
    }
}
