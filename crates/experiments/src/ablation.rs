//! Ablation studies beyond the paper's tables: buffer geometry sweeps,
//! counter parameter sweeps, context-switch sensitivity, and the static
//! baselines from the related-work section. Each sweep evaluates all its
//! predictor variants in a single interpreter pass per run.

use branchlab_fsem::delayed::fill_rates;
use branchlab_interp::run;
use branchlab_ir::lower;
use branchlab_predict::{
    AlwaysNotTaken, AlwaysTaken, BackwardTakenForwardNot, BranchPredictor, Cbtb, CbtbConfig,
    ContextSwitched, ForwardSemantic, Gshare, LocalHistory, OpcodeBias, PredStats,
    ReturnAddressStack, Sbtb, SbtbConfig,
};
use branchlab_profile::profile_module_with;
use branchlab_workloads::Benchmark;

use crate::harness::{eval_predictors, ExperimentConfig, ExperimentError};
use crate::render::{pct, rho, Table};

/// Sweep SBTB and CBTB total size (fully associative) on one benchmark.
///
/// # Errors
/// Returns [`ExperimentError`] on pipeline failure.
pub fn sweep_btb_size(
    bench: &Benchmark,
    config: &ExperimentConfig,
    sizes: &[usize],
) -> Result<Table, ExperimentError> {
    let mut preds: Vec<Box<dyn BranchPredictor>> = Vec::new();
    for &s in sizes {
        preds.push(Box::new(Sbtb::new(SbtbConfig {
            entries: s,
            ways: s,
        })));
        preds.push(Box::new(Cbtb::new(CbtbConfig {
            entries: s,
            ways: s,
            ..CbtbConfig::paper()
        })));
    }
    let stats = eval_predictors(bench, config, preds)?;
    let mut t = Table::new(
        format!("BTB size sweep ({}, fully associative)", bench.name),
        &["Entries", "rho_SBTB", "A_SBTB", "rho_CBTB", "A_CBTB"],
    );
    for (i, &s) in sizes.iter().enumerate() {
        let sb = &stats[2 * i];
        let cb = &stats[2 * i + 1];
        t.row(vec![
            s.to_string(),
            rho(sb.miss_ratio()),
            pct(sb.accuracy()),
            rho(cb.miss_ratio()),
            pct(cb.accuracy()),
        ]);
    }
    Ok(t)
}

/// Sweep associativity at fixed capacity (the paper notes full
/// associativity may be infeasible at 256 entries — this quantifies the
/// cost of realistic set-associative designs).
///
/// # Errors
/// Returns [`ExperimentError`] on pipeline failure.
pub fn sweep_associativity(
    bench: &Benchmark,
    config: &ExperimentConfig,
    entries: usize,
    ways_list: &[usize],
) -> Result<Table, ExperimentError> {
    let mut preds: Vec<Box<dyn BranchPredictor>> = Vec::new();
    for &w in ways_list {
        preds.push(Box::new(Cbtb::new(CbtbConfig {
            entries,
            ways: w,
            ..CbtbConfig::paper()
        })));
    }
    let stats = eval_predictors(bench, config, preds)?;
    let mut t = Table::new(
        format!(
            "CBTB associativity sweep ({}, {entries} entries)",
            bench.name
        ),
        &["Ways", "rho_CBTB", "A_CBTB"],
    );
    for (i, &w) in ways_list.iter().enumerate() {
        t.row(vec![
            w.to_string(),
            rho(stats[i].miss_ratio()),
            pct(stats[i].accuracy()),
        ]);
    }
    Ok(t)
}

/// Sweep counter width and threshold of the CBTB (J. E. Smith observed
/// that wider counters add "inertia" and can *lose* accuracy).
///
/// # Errors
/// Returns [`ExperimentError`] on pipeline failure.
pub fn sweep_counters(
    bench: &Benchmark,
    config: &ExperimentConfig,
    variants: &[(u8, u8)],
) -> Result<Table, ExperimentError> {
    let preds: Vec<Box<dyn BranchPredictor>> = variants
        .iter()
        .map(|&(bits, threshold)| {
            Box::new(Cbtb::new(CbtbConfig {
                counter_bits: bits,
                threshold,
                ..CbtbConfig::paper()
            })) as Box<dyn BranchPredictor>
        })
        .collect();
    let stats = eval_predictors(bench, config, preds)?;
    let mut t = Table::new(
        format!("CBTB counter sweep ({})", bench.name),
        &["Bits", "Threshold", "A_CBTB"],
    );
    for (i, &(bits, thr)) in variants.iter().enumerate() {
        t.row(vec![
            bits.to_string(),
            thr.to_string(),
            pct(stats[i].accuracy()),
        ]);
    }
    Ok(t)
}

/// Context-switch sensitivity (§3/§4 discussion): flush the hardware
/// buffers every `interval` branches and watch their accuracy fall while
/// the Forward Semantic stays put.
///
/// # Errors
/// Returns [`ExperimentError`] on pipeline failure.
pub fn context_switch_study(
    bench: &Benchmark,
    config: &ExperimentConfig,
    intervals: &[u64],
) -> Result<Table, ExperimentError> {
    let module = bench.compile()?;
    let profile = profile_module_with(
        &module,
        &bench.runs(config.scale, config.seed),
        &branchlab_interp::ExecConfig {
            max_insts: config.max_insts_per_run,
            ..Default::default()
        },
    )?;
    let mut preds: Vec<Box<dyn BranchPredictor>> = Vec::new();
    for &iv in intervals {
        preds.push(Box::new(ContextSwitched::new(Sbtb::paper(), iv)));
        preds.push(Box::new(ContextSwitched::new(Cbtb::paper(), iv)));
        preds.push(Box::new(ContextSwitched::new(
            ForwardSemantic::from_profile(&profile.sites),
            iv,
        )));
    }
    let stats = eval_predictors(bench, config, preds)?;
    let mut t = Table::new(
        format!("Context-switch sensitivity ({})", bench.name),
        &["Flush interval", "A_SBTB", "A_CBTB", "A_FS"],
    );
    for (i, &iv) in intervals.iter().enumerate() {
        t.row(vec![
            iv.to_string(),
            pct(stats[3 * i].accuracy()),
            pct(stats[3 * i + 1].accuracy()),
            pct(stats[3 * i + 2].accuracy()),
        ]);
    }
    Ok(t)
}

/// The related-work static baselines on one benchmark: always-taken
/// (the paper cites ≈63–77%), always-not-taken, BTFN (≈76.5% in
/// J. E. Smith's study), and opcode-bias (66.2–86.7% in the surveys).
///
/// # Errors
/// Returns [`ExperimentError`] on pipeline failure.
pub fn static_baselines(
    bench: &Benchmark,
    config: &ExperimentConfig,
) -> Result<Table, ExperimentError> {
    let stats = eval_predictors(
        bench,
        config,
        vec![
            Box::new(AlwaysTaken),
            Box::new(AlwaysNotTaken),
            Box::new(BackwardTakenForwardNot),
            Box::new(OpcodeBias::heuristic()),
        ],
    )?;
    let mut t = Table::new(
        format!(
            "Static baselines ({}) — conditional-branch accuracy",
            bench.name
        ),
        &["Scheme", "A (cond)", "A (all)"],
    );
    for (name, s) in ["always-taken", "always-not-taken", "btfn", "opcode-bias"]
        .iter()
        .zip(&stats)
    {
        t.row(vec![
            (*name).to_string(),
            pct(s.cond_accuracy()),
            pct(s.accuracy()),
        ]);
    }
    Ok(t)
}

/// Validate the model's return-handling assumption: a small
/// return-address stack predicts returns near-perfectly, which is why
/// returns are excluded from branch statistics (DESIGN.md).
///
/// # Errors
/// Returns [`ExperimentError`] on pipeline failure.
pub fn ras_study(
    bench: &Benchmark,
    config: &ExperimentConfig,
    depths: &[usize],
) -> Result<Table, ExperimentError> {
    let module = bench.compile()?;
    let program = lower(&module)?;
    let exec_cfg = branchlab_interp::ExecConfig {
        max_insts: config.max_insts_per_run,
        ..Default::default()
    };
    let mut t = Table::new(
        format!("Return-address stack ({})", bench.name),
        &["Depth", "Returns", "Accuracy", "Overflows"],
    );
    for &d in depths {
        let mut ras = ReturnAddressStack::new(d);
        for streams in bench.runs(config.scale, config.seed) {
            let refs: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
            run(&program, &exec_cfg, &refs, &mut ras)?;
        }
        t.row(vec![
            d.to_string(),
            ras.returns.to_string(),
            pct(ras.accuracy()),
            ras.overflows.to_string(),
        ]);
    }
    Ok(t)
}

/// Delayed-branch slot filling (McFarling & Hennessy's measurement,
/// reproduced): how often slots 1..=N after a conditional branch can be
/// filled *from above*. On this compare-and-branch IR the rates come
/// out far below their ≈70%/≈25% — the case for target-path filling
/// that the Forward Semantic generalizes.
///
/// # Errors
/// Returns [`ExperimentError`] on pipeline failure.
pub fn delay_slot_study(
    bench: &Benchmark,
    config: &ExperimentConfig,
    max_slots: usize,
) -> Result<Table, ExperimentError> {
    let module = bench.compile()?;
    let profile = branchlab_profile::profile_module_with(
        &module,
        &bench.runs(config.scale, config.seed),
        &branchlab_interp::ExecConfig {
            max_insts: config.max_insts_per_run,
            ..Default::default()
        },
    )?;
    let r = fill_rates(&module, &profile, max_slots);
    let mut t = Table::new(
        format!("Delayed-branch from-above slot filling ({})", bench.name),
        &["Slot", "Static fill", "Dynamic fill"],
    );
    for slot in 1..=max_slots {
        t.row(vec![
            slot.to_string(),
            pct(r.static_rate(slot)),
            pct(r.dynamic_rate(slot)),
        ]);
    }
    Ok(t)
}

/// Post-1989 headroom: two-level adaptive predictors (the "future work"
/// the paper closes on) against the paper's best schemes.
///
/// # Errors
/// Returns [`ExperimentError`] on pipeline failure.
pub fn beyond_1989(bench: &Benchmark, config: &ExperimentConfig) -> Result<Table, ExperimentError> {
    let stats = eval_predictors(
        bench,
        config,
        vec![
            Box::new(Cbtb::paper()),
            Box::new(Gshare::default()),
            Box::new(LocalHistory::default()),
        ],
    )?;
    let mut t = Table::new(
        format!(
            "Beyond 1989: two-level adaptive prediction ({})",
            bench.name
        ),
        &["Scheme", "A (cond)", "A (all)"],
    );
    for (name, s) in ["CBTB (paper)", "gshare 12/8", "local 12/6"]
        .iter()
        .zip(&stats)
    {
        t.row(vec![
            (*name).to_string(),
            pct(s.cond_accuracy()),
            pct(s.accuracy()),
        ]);
    }
    Ok(t)
}

/// Convenience: per-scheme accuracies for a list of predictors (used by
/// the criterion benches).
#[must_use]
pub fn accuracies(stats: &[PredStats]) -> Vec<f64> {
    stats.iter().map(PredStats::accuracy).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchlab_workloads::benchmark;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::test()
    }

    #[test]
    fn size_sweep_monotone_miss_ratio() {
        let t = sweep_btb_size(benchmark("compress").unwrap(), &cfg(), &[4, 64, 256]).unwrap();
        assert_eq!(t.rows.len(), 3);
        // CBTB miss ratio must not increase with size.
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let m4 = parse(&t.rows[0][3]);
        let m256 = parse(&t.rows[2][3]);
        assert!(m256 <= m4, "{t:?}");
    }

    #[test]
    fn associativity_sweep_runs() {
        let t = sweep_associativity(benchmark("wc").unwrap(), &cfg(), 64, &[1, 4, 64]).unwrap();
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn counter_sweep_includes_paper_point() {
        let t =
            sweep_counters(benchmark("wc").unwrap(), &cfg(), &[(1, 1), (2, 2), (3, 4)]).unwrap();
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[1][0], "2");
    }

    #[test]
    fn context_switches_hurt_hardware_not_software() {
        let t =
            context_switch_study(benchmark("grep").unwrap(), &cfg(), &[50, 1_000_000_000]).unwrap();
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        // FS identical across intervals; SBTB strictly worse when
        // flushed every 50 branches.
        assert_eq!(t.rows[0][3], t.rows[1][3], "{t:?}");
        assert!(parse(&t.rows[0][1]) < parse(&t.rows[1][1]), "{t:?}");
    }

    #[test]
    fn ras_is_near_perfect_at_realistic_depths() {
        let t = ras_study(benchmark("make").unwrap(), &cfg(), &[1, 8, 64]).unwrap();
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        // make recurses through build(); a 64-deep RAS must be ≥ 99.9%.
        assert!(parse(&t.rows[2][2]) > 99.9, "{t:?}");
        // Accuracy is monotone in depth.
        assert!(parse(&t.rows[0][2]) <= parse(&t.rows[2][2]));
    }

    #[test]
    fn opcode_bias_beats_coin_flip_on_suite_programs() {
        let t = static_baselines(benchmark("wc").unwrap(), &cfg()).unwrap();
        assert_eq!(t.rows.len(), 4);
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let opcode = parse(&t.rows[3][1]);
        assert!(opcode > 40.0, "opcode-bias cond accuracy {opcode}");
    }

    #[test]
    fn delay_slot_fill_rates_are_low_and_monotone() {
        let t = delay_slot_study(benchmark("wc").unwrap(), &cfg(), 2).unwrap();
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let s1 = parse(&t.rows[0][2]);
        let s2 = parse(&t.rows[1][2]);
        assert!(s2 <= s1, "{t:?}");
        assert!(s1 < 70.0, "from-above filling should be hard here: {s1}%");
    }

    #[test]
    fn two_level_predictors_compete_with_cbtb() {
        let t = beyond_1989(benchmark("compress").unwrap(), &cfg()).unwrap();
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let cbtb = parse(&t.rows[0][2]);
        let gshare = parse(&t.rows[1][2]);
        assert!(gshare > cbtb - 5.0, "gshare {gshare} vs cbtb {cbtb}");
    }

    #[test]
    fn static_baselines_sum_to_one_on_conditionals() {
        let t = static_baselines(benchmark("wc").unwrap(), &cfg()).unwrap();
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let at = parse(&t.rows[0][1]);
        let ant = parse(&t.rows[1][1]);
        assert!((at + ant - 100.0).abs() < 0.2, "{at} + {ant}");
    }
}
