//! Ablation studies beyond the paper's tables: buffer geometry sweeps,
//! counter parameter sweeps, context-switch sensitivity, and the static
//! baselines from the related-work section.
//!
//! Every study is split into a *plan* (enqueue its predictors into a
//! [`SweepBatch`]) and a *render* (format its rows from the scored
//! statistics), so [`full_study`] can score the whole study set off a
//! single pass over the benchmark's captured trace. The per-study entry
//! points ([`sweep_btb_size`] & co.) remain and simply run a
//! single-study batch.

use branchlab_fsem::delayed::fill_rates;
use branchlab_predict::{
    AlwaysNotTaken, AlwaysTaken, BackwardTakenForwardNot, BranchPredictor, Cbtb, CbtbConfig,
    ContextSwitched, ForwardSemantic, Gshare, LocalHistory, OpcodeBias, PredStats,
    ReturnAddressStack, Sbtb, SbtbConfig,
};
use branchlab_profile::profile_module_with;
use branchlab_workloads::Benchmark;

use std::sync::Arc;

use branchlab_profile::Profile;

use crate::batch::{PredTicket, SweepBatch};
use crate::harness::{ExperimentConfig, ExperimentError};
use crate::render::{pct, rho, Table};
use crate::trace_replay::cached_profile;

/// The profiling pass for a study: shared via the trace-replay cache
/// by default, recomputed from scratch in baseline
/// (`use_trace_replay = false`) mode so the re-interpretation baseline
/// keeps its original cost profile.
fn study_profile(
    bench: &Benchmark,
    config: &ExperimentConfig,
) -> Result<Arc<Profile>, ExperimentError> {
    if config.use_trace_replay {
        return cached_profile(bench, config);
    }
    let module = bench.compile()?;
    Ok(Arc::new(profile_module_with(
        &module,
        &bench.runs(config.scale, config.seed),
        &branchlab_interp::ExecConfig {
            max_insts: config.max_insts_per_run,
            ..Default::default()
        },
    )?))
}

/// Sweep SBTB and CBTB total size (fully associative) on one benchmark.
///
/// # Errors
/// Returns [`ExperimentError`] on pipeline failure.
pub fn sweep_btb_size(
    bench: &Benchmark,
    config: &ExperimentConfig,
    sizes: &[usize],
) -> Result<Table, ExperimentError> {
    let mut batch = SweepBatch::new(bench, config);
    let ticket = plan_btb_size(&mut batch, sizes);
    let results = batch.run()?;
    Ok(render_btb_size(bench, sizes, results.stats(ticket)))
}

fn plan_btb_size(batch: &mut SweepBatch<'_>, sizes: &[usize]) -> PredTicket {
    let mut preds: Vec<Box<dyn BranchPredictor>> = Vec::new();
    for &s in sizes {
        preds.push(Box::new(Sbtb::new(SbtbConfig {
            entries: s,
            ways: s,
        })));
        preds.push(Box::new(Cbtb::new(CbtbConfig {
            entries: s,
            ways: s,
            ..CbtbConfig::paper()
        })));
    }
    batch.eval(preds)
}

fn render_btb_size(bench: &Benchmark, sizes: &[usize], stats: &[PredStats]) -> Table {
    let mut t = Table::new(
        format!("BTB size sweep ({}, fully associative)", bench.name),
        &["Entries", "rho_SBTB", "A_SBTB", "rho_CBTB", "A_CBTB"],
    );
    for (i, &s) in sizes.iter().enumerate() {
        let sb = &stats[2 * i];
        let cb = &stats[2 * i + 1];
        t.row(vec![
            s.to_string(),
            rho(sb.miss_ratio()),
            pct(sb.accuracy()),
            rho(cb.miss_ratio()),
            pct(cb.accuracy()),
        ]);
    }
    t
}

/// Sweep associativity at fixed capacity (the paper notes full
/// associativity may be infeasible at 256 entries — this quantifies the
/// cost of realistic set-associative designs).
///
/// # Errors
/// Returns [`ExperimentError`] on pipeline failure.
pub fn sweep_associativity(
    bench: &Benchmark,
    config: &ExperimentConfig,
    entries: usize,
    ways_list: &[usize],
) -> Result<Table, ExperimentError> {
    let mut batch = SweepBatch::new(bench, config);
    let ticket = plan_associativity(&mut batch, entries, ways_list);
    let results = batch.run()?;
    Ok(render_associativity(
        bench,
        entries,
        ways_list,
        results.stats(ticket),
    ))
}

fn plan_associativity(
    batch: &mut SweepBatch<'_>,
    entries: usize,
    ways_list: &[usize],
) -> PredTicket {
    let preds: Vec<Box<dyn BranchPredictor>> = ways_list
        .iter()
        .map(|&w| {
            Box::new(Cbtb::new(CbtbConfig {
                entries,
                ways: w,
                ..CbtbConfig::paper()
            })) as Box<dyn BranchPredictor>
        })
        .collect();
    batch.eval(preds)
}

fn render_associativity(
    bench: &Benchmark,
    entries: usize,
    ways_list: &[usize],
    stats: &[PredStats],
) -> Table {
    let mut t = Table::new(
        format!(
            "CBTB associativity sweep ({}, {entries} entries)",
            bench.name
        ),
        &["Ways", "rho_CBTB", "A_CBTB"],
    );
    for (i, &w) in ways_list.iter().enumerate() {
        t.row(vec![
            w.to_string(),
            rho(stats[i].miss_ratio()),
            pct(stats[i].accuracy()),
        ]);
    }
    t
}

/// Sweep counter width and threshold of the CBTB (J. E. Smith observed
/// that wider counters add "inertia" and can *lose* accuracy).
///
/// # Errors
/// Returns [`ExperimentError`] on pipeline failure.
pub fn sweep_counters(
    bench: &Benchmark,
    config: &ExperimentConfig,
    variants: &[(u8, u8)],
) -> Result<Table, ExperimentError> {
    let mut batch = SweepBatch::new(bench, config);
    let ticket = plan_counters(&mut batch, variants);
    let results = batch.run()?;
    Ok(render_counters(bench, variants, results.stats(ticket)))
}

fn plan_counters(batch: &mut SweepBatch<'_>, variants: &[(u8, u8)]) -> PredTicket {
    let preds: Vec<Box<dyn BranchPredictor>> = variants
        .iter()
        .map(|&(bits, threshold)| {
            Box::new(Cbtb::new(CbtbConfig {
                counter_bits: bits,
                threshold,
                ..CbtbConfig::paper()
            })) as Box<dyn BranchPredictor>
        })
        .collect();
    batch.eval(preds)
}

fn render_counters(bench: &Benchmark, variants: &[(u8, u8)], stats: &[PredStats]) -> Table {
    let mut t = Table::new(
        format!("CBTB counter sweep ({})", bench.name),
        &["Bits", "Threshold", "A_CBTB"],
    );
    for (i, &(bits, thr)) in variants.iter().enumerate() {
        t.row(vec![
            bits.to_string(),
            thr.to_string(),
            pct(stats[i].accuracy()),
        ]);
    }
    t
}

/// Context-switch sensitivity (§3/§4 discussion): flush the hardware
/// buffers every `interval` branches and watch their accuracy fall while
/// the Forward Semantic stays put.
///
/// # Errors
/// Returns [`ExperimentError`] on pipeline failure.
pub fn context_switch_study(
    bench: &Benchmark,
    config: &ExperimentConfig,
    intervals: &[u64],
) -> Result<Table, ExperimentError> {
    let mut batch = SweepBatch::new(bench, config);
    let ticket = plan_context_switch(&mut batch, intervals)?;
    let results = batch.run()?;
    Ok(render_context_switch(
        bench,
        intervals,
        results.stats(ticket),
    ))
}

fn plan_context_switch(
    batch: &mut SweepBatch<'_>,
    intervals: &[u64],
) -> Result<PredTicket, ExperimentError> {
    let profile = study_profile(batch.bench(), batch.config())?;
    let mut preds: Vec<Box<dyn BranchPredictor>> = Vec::new();
    for &iv in intervals {
        preds.push(Box::new(ContextSwitched::new(Sbtb::paper(), iv)));
        preds.push(Box::new(ContextSwitched::new(Cbtb::paper(), iv)));
        preds.push(Box::new(ContextSwitched::new(
            ForwardSemantic::from_profile(&profile.sites),
            iv,
        )));
    }
    Ok(batch.eval(preds))
}

fn render_context_switch(bench: &Benchmark, intervals: &[u64], stats: &[PredStats]) -> Table {
    let mut t = Table::new(
        format!("Context-switch sensitivity ({})", bench.name),
        &["Flush interval", "A_SBTB", "A_CBTB", "A_FS"],
    );
    for (i, &iv) in intervals.iter().enumerate() {
        t.row(vec![
            iv.to_string(),
            pct(stats[3 * i].accuracy()),
            pct(stats[3 * i + 1].accuracy()),
            pct(stats[3 * i + 2].accuracy()),
        ]);
    }
    t
}

/// The related-work static baselines on one benchmark: always-taken
/// (the paper cites ≈63–77%), always-not-taken, BTFN (≈76.5% in
/// J. E. Smith's study), and opcode-bias (66.2–86.7% in the surveys).
///
/// # Errors
/// Returns [`ExperimentError`] on pipeline failure.
pub fn static_baselines(
    bench: &Benchmark,
    config: &ExperimentConfig,
) -> Result<Table, ExperimentError> {
    let mut batch = SweepBatch::new(bench, config);
    let ticket = plan_static_baselines(&mut batch);
    let results = batch.run()?;
    Ok(render_static_baselines(bench, results.stats(ticket)))
}

fn plan_static_baselines(batch: &mut SweepBatch<'_>) -> PredTicket {
    batch.eval(vec![
        Box::new(AlwaysTaken),
        Box::new(AlwaysNotTaken),
        Box::new(BackwardTakenForwardNot),
        Box::new(OpcodeBias::heuristic()),
    ])
}

fn render_static_baselines(bench: &Benchmark, stats: &[PredStats]) -> Table {
    let mut t = Table::new(
        format!(
            "Static baselines ({}) — conditional-branch accuracy",
            bench.name
        ),
        &["Scheme", "A (cond)", "A (all)"],
    );
    for (name, s) in ["always-taken", "always-not-taken", "btfn", "opcode-bias"]
        .iter()
        .zip(stats)
    {
        t.row(vec![
            (*name).to_string(),
            pct(s.cond_accuracy()),
            pct(s.accuracy()),
        ]);
    }
    t
}

/// Validate the model's return-handling assumption: a small
/// return-address stack predicts returns near-perfectly, which is why
/// returns are excluded from branch statistics (DESIGN.md).
///
/// # Errors
/// Returns [`ExperimentError`] on pipeline failure.
pub fn ras_study(
    bench: &Benchmark,
    config: &ExperimentConfig,
    depths: &[usize],
) -> Result<Table, ExperimentError> {
    let mut batch = SweepBatch::new(bench, config);
    let ticket = batch.ras(depths);
    let results = batch.run()?;
    Ok(render_ras(bench, depths, results.ras(ticket)))
}

fn render_ras(bench: &Benchmark, depths: &[usize], stacks: &[ReturnAddressStack]) -> Table {
    let mut t = Table::new(
        format!("Return-address stack ({})", bench.name),
        &["Depth", "Returns", "Accuracy", "Overflows"],
    );
    for (&d, ras) in depths.iter().zip(stacks) {
        t.row(vec![
            d.to_string(),
            ras.returns.to_string(),
            pct(ras.accuracy()),
            ras.overflows.to_string(),
        ]);
    }
    t
}

/// Delayed-branch slot filling (McFarling & Hennessy's measurement,
/// reproduced): how often slots 1..=N after a conditional branch can be
/// filled *from above*. On this compare-and-branch IR the rates come
/// out far below their ≈70%/≈25% — the case for target-path filling
/// that the Forward Semantic generalizes.
///
/// # Errors
/// Returns [`ExperimentError`] on pipeline failure.
pub fn delay_slot_study(
    bench: &Benchmark,
    config: &ExperimentConfig,
    max_slots: usize,
) -> Result<Table, ExperimentError> {
    let module = bench.compile()?;
    let profile = study_profile(bench, config)?;
    let r = fill_rates(&module, &profile, max_slots);
    let mut t = Table::new(
        format!("Delayed-branch from-above slot filling ({})", bench.name),
        &["Slot", "Static fill", "Dynamic fill"],
    );
    for slot in 1..=max_slots {
        t.row(vec![
            slot.to_string(),
            pct(r.static_rate(slot)),
            pct(r.dynamic_rate(slot)),
        ]);
    }
    Ok(t)
}

/// Post-1989 headroom: two-level adaptive predictors (the "future work"
/// the paper closes on) against the paper's best schemes.
///
/// # Errors
/// Returns [`ExperimentError`] on pipeline failure.
pub fn beyond_1989(bench: &Benchmark, config: &ExperimentConfig) -> Result<Table, ExperimentError> {
    let mut batch = SweepBatch::new(bench, config);
    let ticket = plan_beyond_1989(&mut batch);
    let results = batch.run()?;
    Ok(render_beyond_1989(bench, results.stats(ticket)))
}

fn plan_beyond_1989(batch: &mut SweepBatch<'_>) -> PredTicket {
    batch.eval(vec![
        Box::new(Cbtb::paper()),
        Box::new(Gshare::default()),
        Box::new(LocalHistory::default()),
    ])
}

fn render_beyond_1989(bench: &Benchmark, stats: &[PredStats]) -> Table {
    let mut t = Table::new(
        format!(
            "Beyond 1989: two-level adaptive prediction ({})",
            bench.name
        ),
        &["Scheme", "A (cond)", "A (all)"],
    );
    for (name, s) in ["CBTB (paper)", "gshare 12/8", "local 12/6"]
        .iter()
        .zip(stats)
    {
        t.row(vec![
            (*name).to_string(),
            pct(s.cond_accuracy()),
            pct(s.accuracy()),
        ]);
    }
    t
}

/// Parameters for the complete ablation study set; the defaults are the
/// `ablation` binary's configuration.
#[derive(Copy, Clone, Debug)]
pub struct StudySpec<'a> {
    /// Fully-associative BTB sizes for [`sweep_btb_size`].
    pub btb_sizes: &'a [usize],
    /// Capacity held fixed by [`sweep_associativity`].
    pub assoc_entries: usize,
    /// Way counts for [`sweep_associativity`].
    pub assoc_ways: &'a [usize],
    /// `(counter_bits, threshold)` variants for [`sweep_counters`].
    pub counter_variants: &'a [(u8, u8)],
    /// Flush intervals for [`context_switch_study`].
    pub context_intervals: &'a [u64],
    /// Stack depths for [`ras_study`].
    pub ras_depths: &'a [usize],
    /// Slot count for [`delay_slot_study`].
    pub delay_max_slots: usize,
}

impl Default for StudySpec<'_> {
    fn default() -> Self {
        StudySpec {
            btb_sizes: &[16, 64, 256, 1024],
            assoc_entries: 256,
            assoc_ways: &[1, 2, 4, 8, 256],
            counter_variants: &[(1, 1), (2, 2), (3, 4), (4, 8)],
            context_intervals: &[100, 1_000, 10_000, u64::MAX / 2],
            ras_depths: &[4, 16, 64],
            delay_max_slots: 2,
        }
    }
}

/// Run the complete ablation study set on one benchmark, scoring every
/// sweep configuration in a *single* pass over the captured trace (one
/// capture + one replay per benchmark; in baseline mode the batch
/// falls back to per-study or per-point live interpretation). Tables
/// are returned in the `ablation` binary's print order and are
/// bit-identical to calling each study function on its own.
///
/// # Errors
/// Returns [`ExperimentError`] on pipeline failure.
pub fn full_study(
    bench: &Benchmark,
    config: &ExperimentConfig,
    spec: &StudySpec<'_>,
) -> Result<Vec<Table>, ExperimentError> {
    let mut batch = SweepBatch::new(bench, config);
    let size = plan_btb_size(&mut batch, spec.btb_sizes);
    let assoc = plan_associativity(&mut batch, spec.assoc_entries, spec.assoc_ways);
    let counters = plan_counters(&mut batch, spec.counter_variants);
    let context = plan_context_switch(&mut batch, spec.context_intervals)?;
    let statics = plan_static_baselines(&mut batch);
    let ras = batch.ras(spec.ras_depths);
    let beyond = plan_beyond_1989(&mut batch);
    let results = batch.run()?;
    Ok(vec![
        render_btb_size(bench, spec.btb_sizes, results.stats(size)),
        render_associativity(
            bench,
            spec.assoc_entries,
            spec.assoc_ways,
            results.stats(assoc),
        ),
        render_counters(bench, spec.counter_variants, results.stats(counters)),
        render_context_switch(bench, spec.context_intervals, results.stats(context)),
        render_static_baselines(bench, results.stats(statics)),
        render_ras(bench, spec.ras_depths, results.ras(ras)),
        delay_slot_study(bench, config, spec.delay_max_slots)?,
        render_beyond_1989(bench, results.stats(beyond)),
    ])
}

/// [`full_study`] over a list of benchmarks with capture/score overlap:
/// a producer thread runs the capture+profile pipeline for benchmark
/// *i + 1* (warming the process-wide trace and profile caches) while
/// the current thread scores benchmark *i* off its freshly cached
/// trace. The handoff is a zero-capacity rendezvous channel, so the
/// pipeline is bounded at two slots — one benchmark being captured, one
/// being scored — and never buffers more than one trace ahead.
///
/// Prefetch errors are deliberately swallowed: the scoring side re-runs
/// the failed pipeline stage itself (a cache miss) and reports the
/// error in its own result slot, keeping per-benchmark error
/// attribution identical to the sequential path. Tables are
/// bit-identical to calling [`full_study`] per benchmark in order.
///
/// In baseline (`use_trace_replay = false`) mode there is no trace to
/// prefetch and the suite degrades to the plain sequential loop.
pub fn full_study_suite(
    benches: &[&Benchmark],
    config: &ExperimentConfig,
    spec: &StudySpec<'_>,
) -> Vec<(&'static str, Result<Vec<Table>, ExperimentError>)> {
    if !config.use_trace_replay || benches.len() < 2 {
        return benches
            .iter()
            .map(|b| (b.name, full_study(b, config, spec)))
            .collect();
    }
    std::thread::scope(|s| {
        let (ready_tx, ready_rx) = std::sync::mpsc::sync_channel::<()>(0);
        s.spawn(move || {
            for b in benches {
                let _ = crate::trace_replay::captured_runs(b, config);
                let _ = cached_profile(b, config);
                if ready_tx.send(()).is_err() {
                    return; // consumer gone; stop prefetching
                }
            }
        });
        benches
            .iter()
            .map(|b| {
                // Wait for this benchmark's prefetch slot; a dead
                // producer only costs the overlap, never the result.
                let _ = ready_rx.recv();
                (b.name, full_study(b, config, spec))
            })
            .collect()
    })
}

/// Convenience: per-scheme accuracies for a list of predictors (used by
/// the criterion benches).
#[must_use]
pub fn accuracies(stats: &[PredStats]) -> Vec<f64> {
    stats.iter().map(PredStats::accuracy).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchlab_workloads::benchmark;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::test()
    }

    #[test]
    fn size_sweep_monotone_miss_ratio() {
        let t = sweep_btb_size(benchmark("compress").unwrap(), &cfg(), &[4, 64, 256]).unwrap();
        assert_eq!(t.rows.len(), 3);
        // CBTB miss ratio must not increase with size.
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let m4 = parse(&t.rows[0][3]);
        let m256 = parse(&t.rows[2][3]);
        assert!(m256 <= m4, "{t:?}");
    }

    #[test]
    fn associativity_sweep_runs() {
        let t = sweep_associativity(benchmark("wc").unwrap(), &cfg(), 64, &[1, 4, 64]).unwrap();
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn counter_sweep_includes_paper_point() {
        let t =
            sweep_counters(benchmark("wc").unwrap(), &cfg(), &[(1, 1), (2, 2), (3, 4)]).unwrap();
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[1][0], "2");
    }

    #[test]
    fn context_switches_hurt_hardware_not_software() {
        let t =
            context_switch_study(benchmark("grep").unwrap(), &cfg(), &[50, 1_000_000_000]).unwrap();
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        // FS identical across intervals; SBTB strictly worse when
        // flushed every 50 branches.
        assert_eq!(t.rows[0][3], t.rows[1][3], "{t:?}");
        assert!(parse(&t.rows[0][1]) < parse(&t.rows[1][1]), "{t:?}");
    }

    #[test]
    fn ras_is_near_perfect_at_realistic_depths() {
        let t = ras_study(benchmark("make").unwrap(), &cfg(), &[1, 8, 64]).unwrap();
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        // make recurses through build(); a 64-deep RAS must be ≥ 99.9%.
        assert!(parse(&t.rows[2][2]) > 99.9, "{t:?}");
        // Accuracy is monotone in depth.
        assert!(parse(&t.rows[0][2]) <= parse(&t.rows[2][2]));
    }

    #[test]
    fn opcode_bias_beats_coin_flip_on_suite_programs() {
        let t = static_baselines(benchmark("wc").unwrap(), &cfg()).unwrap();
        assert_eq!(t.rows.len(), 4);
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let opcode = parse(&t.rows[3][1]);
        assert!(opcode > 40.0, "opcode-bias cond accuracy {opcode}");
    }

    #[test]
    fn delay_slot_fill_rates_are_low_and_monotone() {
        let t = delay_slot_study(benchmark("wc").unwrap(), &cfg(), 2).unwrap();
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let s1 = parse(&t.rows[0][2]);
        let s2 = parse(&t.rows[1][2]);
        assert!(s2 <= s1, "{t:?}");
        assert!(s1 < 70.0, "from-above filling should be hard here: {s1}%");
    }

    #[test]
    fn two_level_predictors_compete_with_cbtb() {
        let t = beyond_1989(benchmark("compress").unwrap(), &cfg()).unwrap();
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let cbtb = parse(&t.rows[0][2]);
        let gshare = parse(&t.rows[1][2]);
        assert!(gshare > cbtb - 5.0, "gshare {gshare} vs cbtb {cbtb}");
    }

    #[test]
    fn full_study_suite_matches_sequential_studies() {
        let cfg = cfg();
        let spec = StudySpec {
            btb_sizes: &[16, 64],
            assoc_entries: 64,
            assoc_ways: &[1, 64],
            counter_variants: &[(2, 2)],
            context_intervals: &[1_000],
            ras_depths: &[8],
            delay_max_slots: 1,
        };
        let benches = [benchmark("wc").unwrap(), benchmark("cmp").unwrap()];
        let piped = full_study_suite(&benches, &cfg, &spec);
        assert_eq!(piped.len(), 2);
        for (name, result) in piped {
            let solo = full_study(benchmark(name).unwrap(), &cfg, &spec).unwrap();
            let tables = result.unwrap();
            assert_eq!(format!("{tables:?}"), format!("{solo:?}"), "{name}");
        }
    }

    #[test]
    fn static_baselines_sum_to_one_on_conditionals() {
        let t = static_baselines(benchmark("wc").unwrap(), &cfg()).unwrap();
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let at = parse(&t.rows[0][1]);
        let ant = parse(&t.rows[1][1]);
        assert!((at + ant - 100.0).abs() < 0.2, "{at} + {ant}");
    }
}
