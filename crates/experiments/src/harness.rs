//! The end-to-end experiment pipeline: compile → profile → transform →
//! evaluate all three schemes (plus static baselines) over every
//! benchmark, in a single interpreter pass per run per layout.
//!
//! Every stage of [`run_benchmark`] runs inside a telemetry span, so
//! each [`BenchResult`] carries a per-phase wall-clock (and work-count)
//! breakdown; with [`ExperimentConfig::collect_site_telemetry`] set,
//! the SBTB/CBTB additionally tally per-branch-site hit/miss/evict/
//! alias/mispredict counters through a [`SiteProbe`].

use branchlab_fsem::{code_expansion, fs_program, ExpansionPoint, FsConfig};
use branchlab_interp::{run, ErrorClass, ExecConfig, ExecError, ExecStats};
use branchlab_ir::{lower, LowerError, Program};
use branchlab_minic::CompileError;
use branchlab_predict::{
    AlwaysNotTaken, AlwaysTaken, BackwardTakenForwardNot, BranchPredictor, Cbtb, Evaluator,
    LikelyBit, PredStats, Sbtb,
};
use branchlab_profile::{profile_module_with, Profile, ProfileError};
use branchlab_telemetry::{PhaseSpan, SiteProbe, Timeline};
use branchlab_trace::{BranchEvent, BranchMix, ExecHooks};
use branchlab_workloads::{Benchmark, Scale};

use crate::fault::{FaultConfig, FaultInjector};
use crate::supervisor::{run_suite_supervised, BenchFailure, SupervisorConfig, SupervisorStats};

/// The phases every [`BenchResult`] reports, in pipeline order.
pub const PHASES: [&str; 7] = [
    "compile",
    "profile",
    "lower",
    "fs_build",
    "natural_eval",
    "fs_eval",
    "expansion",
];

/// Experiment-wide knobs.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Input scale for every benchmark.
    pub scale: Scale,
    /// Master seed for input generation.
    pub seed: u64,
    /// Forward slots (k + ℓ) used when building the FS binary whose
    /// dynamic accuracy is measured. Accuracy is insensitive to this;
    /// Table 5 sweeps its own depths.
    pub fs_slots: u16,
    /// Instruction budget per run (guards against runaway inputs).
    pub max_insts_per_run: u64,
    /// Cross-check that the FS binary produces byte-identical outputs to
    /// the conventional binary on every run.
    pub verify_equivalence: bool,
    /// Use the paper's literal "predicted taken when C > T" counter rule
    /// (see DESIGN.md); `false` selects the Smith-style `C ≥ T` reading.
    pub cbtb_strict: bool,
    /// Collect per-branch-site BTB telemetry (hits, misses, evictions,
    /// aliases, mispredicts). Off by default: the accounting HashMap
    /// costs a few percent of evaluation throughput.
    pub collect_site_telemetry: bool,
    /// Interpreter data memory in words (globals + frame stack); small
    /// values surface `MemoryTooSmall`/`StackOverflow` through the
    /// harness, which the robustness tests rely on.
    pub memory_words: usize,
    /// Interpreter call-depth limit.
    pub max_call_depth: usize,
    /// Deterministic fault injection (disabled by default).
    pub fault: FaultConfig,
    /// Feed sweep-style evaluations ([`eval_predictors`] and the
    /// ablation studies) from captured traces instead of
    /// re-interpreting every configuration point. Replay is
    /// bit-identical to live interpretation (enforced by test); turn
    /// off only to measure the re-interpretation baseline.
    pub use_trace_replay: bool,
    /// Directory for the on-disk trace cache (`--trace-cache DIR`);
    /// `None` keeps traces in memory only.
    pub trace_cache_dir: Option<std::path::PathBuf>,
    /// With `use_trace_replay` off, run one full compile→profile→interpret
    /// pipeline per sweep configuration point in [`SweepBatch`]-driven
    /// studies, instead of amortizing a study's points into one live
    /// pass. This is the O(points × interpret) re-interpretation
    /// methodology that trace-driven replay replaces; `replay_bench`
    /// uses it as the measured baseline. No effect on results — every
    /// evaluation mode is bit-identical.
    ///
    /// [`SweepBatch`]: crate::batch::SweepBatch
    pub sweep_per_point: bool,
    /// Worker threads for parallel sweep scoring in [`SweepBatch`]-driven
    /// studies (`--sweep-threads N`). `None` consults the
    /// `BRANCHLAB_SWEEP_THREADS` environment variable, then falls back
    /// to `available_parallelism`; an explicit value may exceed the core
    /// count (useful for scheduling experiments). Results are
    /// bit-identical at every thread count — each sweep point consumes
    /// the complete event stream in capture order regardless of which
    /// worker scores it.
    ///
    /// [`SweepBatch`]: crate::batch::SweepBatch
    pub sweep_threads: Option<usize>,
    /// Let [`SweepBatch`](crate::SweepBatch) pack compatible sweep
    /// points into bit-parallel lane families
    /// ([`LaneFamily`](branchlab_predict::LaneFamily)) during replay
    /// scoring. On by default; results are bit-identical either way,
    /// so turning it off only serves as the scalar baseline for
    /// `replay_bench`'s lane phase.
    pub use_lane_scoring: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        let exec = ExecConfig::default();
        ExperimentConfig {
            scale: Scale::Small,
            seed: 1989,
            fs_slots: 2,
            max_insts_per_run: 2_000_000_000,
            verify_equivalence: true,
            cbtb_strict: true,
            collect_site_telemetry: false,
            memory_words: exec.memory_words,
            max_call_depth: exec.max_call_depth,
            fault: FaultConfig::default(),
            use_trace_replay: true,
            trace_cache_dir: None,
            sweep_per_point: false,
            sweep_threads: None,
            use_lane_scoring: true,
        }
    }
}

impl ExperimentConfig {
    /// A fast configuration for tests.
    #[must_use]
    pub fn test() -> Self {
        ExperimentConfig {
            scale: Scale::Test,
            ..ExperimentConfig::default()
        }
    }

    /// The effective sweep worker count: [`ExperimentConfig::sweep_threads`]
    /// if set, else the `BRANCHLAB_SWEEP_THREADS` environment variable,
    /// else `available_parallelism`. Always at least 1. Only the
    /// automatic fallback is capped by the machine's core count; an
    /// explicit request is honored as given.
    #[must_use]
    pub fn resolved_sweep_threads(&self) -> usize {
        if let Some(n) = self.sweep_threads {
            return n.max(1);
        }
        if let Some(n) = std::env::var("BRANCHLAB_SWEEP_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            return n.max(1);
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    pub(crate) fn exec_config(&self) -> ExecConfig {
        ExecConfig {
            max_insts: self.max_insts_per_run,
            memory_words: self.memory_words,
            max_call_depth: self.max_call_depth,
        }
    }

    fn site_probe(&self) -> SiteProbe {
        if self.collect_site_telemetry {
            SiteProbe::enabled()
        } else {
            SiteProbe::disabled()
        }
    }
}

/// Everything measured for one benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Static source lines (Table 1 *Lines* analogue).
    pub source_lines: usize,
    /// Number of input runs (Table 1 *Runs*).
    pub runs: usize,
    /// Dynamic statistics accumulated over all runs on the conventional
    /// layout (Table 1 *Inst.* / *Control*).
    pub stats: ExecStats,
    /// Taken/not-taken and known/unknown mixes (Table 2).
    pub mix: BranchMix,
    /// SBTB scoring (Table 3 ρ, A).
    pub sbtb: PredStats,
    /// CBTB scoring (Table 3 ρ, A).
    pub cbtb: PredStats,
    /// Forward Semantic scoring, measured on the FS binary (Table 3 A).
    pub fs: PredStats,
    /// Always-taken baseline (related-work ablation).
    pub always_taken: PredStats,
    /// Always-not-taken baseline.
    pub always_not_taken: PredStats,
    /// Backward-taken/forward-not-taken baseline.
    pub btfn: PredStats,
    /// Code expansion at k + ℓ ∈ {1, 2, 4, 8} (Table 5).
    pub expansion: Vec<ExpansionPoint>,
    /// Wall-clock/work breakdown of the pipeline stages, one span per
    /// entry of [`PHASES`] (plus interpreter sub-spans in run order).
    pub phases: Vec<PhaseSpan>,
    /// Per-branch-site SBTB telemetry (empty unless
    /// [`ExperimentConfig::collect_site_telemetry`] was set).
    pub sbtb_sites: SiteProbe,
    /// Per-branch-site CBTB telemetry (empty unless
    /// [`ExperimentConfig::collect_site_telemetry`] was set).
    pub cbtb_sites: SiteProbe,
}

impl BenchResult {
    /// The recorded wall-clock duration of `phase`, if present.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<&PhaseSpan> {
        self.phases.iter().find(|p| p.name == name)
    }
}

/// Errors from the experiment pipeline.
#[derive(Debug)]
pub enum ExperimentError {
    /// A benchmark failed to compile (would be a bug in the suite).
    Compile(CompileError),
    /// Lowering failed.
    Lower(LowerError),
    /// Profiling failed.
    Profile(ProfileError),
    /// An evaluation run failed.
    Exec(ExecError),
    /// The FS binary diverged from the conventional binary.
    EquivalenceViolation {
        /// Benchmark name.
        bench: &'static str,
        /// Which run diverged.
        run: usize,
    },
    /// The benchmark thread panicked; the supervisor caught the unwind
    /// and captured the payload.
    Panic(String),
    /// The watchdog deadline elapsed before the benchmark finished.
    Timeout {
        /// The configured deadline.
        limit: std::time::Duration,
    },
    /// A captured trace failed to replay (malformed buffer). Only
    /// reachable through cache corruption that slipped past the
    /// checksum, and deterministic given the bytes — permanent.
    Trace(String),
}

impl ExperimentError {
    /// Transient/permanent classification driving the supervisor's
    /// retry policy (see the crate docs for the full taxonomy).
    /// Compile/lower/profile errors and equivalence violations are
    /// deterministic pipeline outcomes; interpreter errors delegate to
    /// [`ExecError::class`] (everything real is permanent, injected
    /// faults are transient); panics and watchdog timeouts are
    /// environmental and therefore retry-eligible.
    #[must_use]
    pub fn class(&self) -> ErrorClass {
        match self {
            ExperimentError::Exec(e) => e.class(),
            ExperimentError::Panic(_) | ExperimentError::Timeout { .. } => ErrorClass::Transient,
            ExperimentError::Compile(_)
            | ExperimentError::Lower(_)
            | ExperimentError::Profile(_)
            | ExperimentError::Trace(_)
            | ExperimentError::EquivalenceViolation { .. } => ErrorClass::Permanent,
        }
    }
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Compile(e) => write!(f, "compile failed: {e}"),
            ExperimentError::Lower(e) => write!(f, "lowering failed: {e}"),
            ExperimentError::Profile(e) => write!(f, "profiling failed: {e}"),
            ExperimentError::Exec(e) => write!(f, "evaluation run failed: {e}"),
            ExperimentError::EquivalenceViolation { bench, run } => {
                write!(
                    f,
                    "FS binary diverged from conventional binary: {bench} run {run}"
                )
            }
            ExperimentError::Panic(payload) => write!(f, "benchmark panicked: {payload}"),
            ExperimentError::Timeout { limit } => {
                write!(f, "watchdog deadline ({limit:?}) exceeded")
            }
            ExperimentError::Trace(reason) => write!(f, "trace replay failed: {reason}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<CompileError> for ExperimentError {
    fn from(e: CompileError) -> Self {
        ExperimentError::Compile(e)
    }
}
impl From<LowerError> for ExperimentError {
    fn from(e: LowerError) -> Self {
        ExperimentError::Lower(e)
    }
}
impl From<ProfileError> for ExperimentError {
    fn from(e: ProfileError) -> Self {
        ExperimentError::Profile(e)
    }
}
impl From<ExecError> for ExperimentError {
    fn from(e: ExecError) -> Self {
        ExperimentError::Exec(e)
    }
}

/// All evaluators fed by one pass over the conventional binary.
struct NaturalSinks {
    mix: BranchMix,
    sbtb: Evaluator<Sbtb<SiteProbe>>,
    cbtb: Evaluator<Cbtb<SiteProbe>>,
    at: Evaluator<AlwaysTaken>,
    ant: Evaluator<AlwaysNotTaken>,
    btfn: Evaluator<BackwardTakenForwardNot>,
}

impl NaturalSinks {
    /// Each input run is a separate program invocation: hardware buffers
    /// start cold (the compiler schemes keep their bits, of course).
    fn start_run(&mut self) {
        self.sbtb.predictor.flush();
        self.cbtb.predictor.flush();
    }
}

impl ExecHooks for NaturalSinks {
    fn branch(&mut self, ev: &BranchEvent) {
        self.mix.branch(ev);
        self.sbtb.branch(ev);
        self.cbtb.branch(ev);
        self.at.branch(ev);
        self.ant.branch(ev);
        self.btfn.branch(ev);
    }
}

/// Run the complete pipeline for one benchmark.
///
/// # Errors
/// Returns [`ExperimentError`] on any stage failure, including semantic
/// divergence of the transformed binary when
/// [`ExperimentConfig::verify_equivalence`] is set.
pub fn run_benchmark(
    bench: &'static Benchmark,
    config: &ExperimentConfig,
) -> Result<BenchResult, ExperimentError> {
    run_benchmark_attempt(bench, config, 1)
}

/// [`run_benchmark`] for a specific supervisor attempt number — the
/// attempt feeds the [`FaultInjector`]'s decision hash so a retried
/// attempt draws fresh faults (injection is transient by construction).
///
/// # Errors
/// As [`run_benchmark`], plus injected faults when
/// [`ExperimentConfig::fault`] is armed.
pub fn run_benchmark_attempt(
    bench: &'static Benchmark,
    config: &ExperimentConfig,
    attempt: u32,
) -> Result<BenchResult, ExperimentError> {
    let timeline = Timeline::new();
    let injector = FaultInjector::new(&config.fault, bench.name, attempt);

    let module = {
        let _span = timeline.span("compile");
        injector.trip("compile")?;
        bench.compile()?
    };
    let runs = bench.runs(config.scale, config.seed);
    // One slice table per benchmark, shared by the natural and FS
    // evaluation loops below (previously rebuilt inside each loop).
    let run_slices: Vec<Vec<&[u8]>> = runs
        .iter()
        .map(|streams| streams.iter().map(Vec::as_slice).collect())
        .collect();
    let exec_cfg = config.exec_config();

    // 1. Profiling pass (instrumented layout, the paper's probe build).
    let profile: Profile = {
        let _span = timeline.span("profile");
        injector.trip("profile")?;
        profile_module_with(&module, &runs, &exec_cfg)?
    };

    // 2. The two binaries under study.
    let natural: Program = {
        let _span = timeline.span("lower");
        lower(&module)?
    };
    let fs_bin: Program = {
        let _span = timeline.span("fs_build");
        fs_program(&module, &profile, FsConfig::with_slots(config.fs_slots))?
    };

    // 3. One pass per run over the conventional binary feeds every
    //    hardware/static evaluator at once.
    let mut sinks = NaturalSinks {
        mix: BranchMix::new(),
        sbtb: Evaluator::new(Sbtb::with_sink(
            branchlab_predict::SbtbConfig::paper(),
            config.site_probe(),
        )),
        cbtb: Evaluator::new(Cbtb::with_sink(
            branchlab_predict::CbtbConfig {
                strict_greater: config.cbtb_strict,
                ..branchlab_predict::CbtbConfig::paper()
            },
            config.site_probe(),
        )),
        at: Evaluator::new(AlwaysTaken),
        ant: Evaluator::new(AlwaysNotTaken),
        btfn: Evaluator::new(BackwardTakenForwardNot),
    };
    let mut stats = ExecStats::default();
    let mut natural_outcomes = Vec::new();
    {
        let mut span = timeline.span("natural_eval");
        injector.trip("natural_eval")?;
        for refs in &run_slices {
            sinks.start_run();
            let out = run(&natural, &exec_cfg, refs, &mut sinks)?;
            stats.merge(&out.stats);
            natural_outcomes.push((out.exit_value, out.outputs));
        }
        span.add_work(stats.insts);
    }

    // 4. The FS binary runs with its likely bits steering prediction.
    let mut fs_eval = Evaluator::new(LikelyBit);
    {
        let mut span = timeline.span("fs_eval");
        injector.trip("fs_eval")?;
        for (ri, refs) in run_slices.iter().enumerate() {
            let out = run(&fs_bin, &exec_cfg, refs, &mut fs_eval)?;
            span.add_work(out.stats.insts);
            if config.verify_equivalence {
                let (exit, outputs) = &natural_outcomes[ri];
                if out.exit_value != *exit || out.outputs != *outputs {
                    return Err(ExperimentError::EquivalenceViolation {
                        bench: bench.name,
                        run: ri,
                    });
                }
            }
        }
    }

    // 5. Static code expansion (Table 5 depths).
    let expansion = {
        let _span = timeline.span("expansion");
        code_expansion(&module, &profile, &[1, 2, 4, 8])?
    };

    Ok(BenchResult {
        name: bench.name,
        source_lines: bench.source_lines(),
        runs: runs.len(),
        stats,
        mix: sinks.mix,
        sbtb: sinks.sbtb.stats,
        cbtb: sinks.cbtb.stats,
        fs: fs_eval.stats,
        always_taken: sinks.at.stats,
        always_not_taken: sinks.ant.stats,
        btfn: sinks.btfn.stats,
        expansion,
        phases: timeline.finish(),
        sbtb_sites: sinks.sbtb.predictor.sink().clone(),
        cbtb_sites: sinks.cbtb.predictor.sink().clone(),
    })
}

/// Results for the whole suite, possibly partial: benchmarks the
/// supervisor could not complete (retries exhausted, watchdog fired,
/// permanent pipeline error) appear as [`BenchFailure`] records instead
/// of aborting the run, so every unaffected benchmark's data survives.
#[derive(Clone, Debug)]
pub struct SuiteResult {
    /// Completed per-benchmark results, in suite order (including
    /// results restored from a `--resume` checkpoint).
    pub benches: Vec<BenchResult>,
    /// Benchmarks that failed after supervision, in suite order.
    pub failures: Vec<BenchFailure>,
    /// Supervisor counters for the run (retries, watchdog firings,
    /// caught panics, …).
    pub supervisor: SupervisorStats,
}

impl SuiteResult {
    /// A complete, failure-free result — the constructor tests and
    /// callers with pre-computed [`BenchResult`]s use.
    #[must_use]
    pub fn from_benches(benches: Vec<BenchResult>) -> Self {
        SuiteResult {
            supervisor: SupervisorStats {
                completed: benches.len() as u64,
                ..SupervisorStats::default()
            },
            benches,
            failures: Vec::new(),
        }
    }

    /// `true` when every benchmark completed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Results restricted to the ten Table 1–4 benchmarks.
    pub fn main_benches(&self) -> impl Iterator<Item = &BenchResult> {
        self.benches
            .iter()
            .filter(|b| branchlab_workloads::benchmark(b.name).is_some_and(|bm| bm.in_main_tables))
    }

    /// Failures restricted to the ten Table 1–4 benchmarks.
    pub fn main_failures(&self) -> impl Iterator<Item = &BenchFailure> {
        self.failures
            .iter()
            .filter(|f| branchlab_workloads::benchmark(&f.name).is_some_and(|bm| bm.in_main_tables))
    }

    /// Mean and sample standard deviation of a per-benchmark metric over
    /// the main suite.
    pub fn mean_std(&self, f: impl Fn(&BenchResult) -> f64) -> (f64, f64) {
        let xs: Vec<f64> = self.main_benches().map(f).collect();
        mean_std(&xs)
    }
}

/// Mean and sample standard deviation (n − 1 denominator).
#[must_use]
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Run the full 12-benchmark suite on a supervised worker pool (at
/// most `available_parallelism` benchmarks in flight), with the default
/// [`SupervisorConfig`] (panic isolation and transient-error retries,
/// no watchdog, no checkpoint).
///
/// Never aborts on a single benchmark failure: panicking or erroring
/// benchmarks become [`SuiteResult::failures`] records and every other
/// benchmark's result is kept. Use [`run_suite_supervised`] to
/// configure retries, watchdog deadlines, and checkpoint/resume.
#[must_use]
pub fn run_suite(config: &ExperimentConfig) -> SuiteResult {
    run_suite_supervised(config, &SupervisorConfig::default())
}

/// All configured predictors scored off one event stream.
struct Many {
    evals: Vec<Evaluator<Box<dyn BranchPredictor>>>,
}

impl ExecHooks for Many {
    fn branch(&mut self, ev: &BranchEvent) {
        for e in &mut self.evals {
            e.branch(ev);
        }
    }
}

/// Evaluate an arbitrary set of predictors over every run of a
/// benchmark's conventional binary (the ablation workhorse).
///
/// With [`ExperimentConfig::use_trace_replay`] set (the default), the
/// event stream comes from the benchmark's cached trace — captured at
/// most once per (benchmark, program, scale, seed) — and is replayed
/// into the predictors at memory speed. Replay delivers the exact
/// sequence live interpretation would, so the statistics are
/// bit-identical to [`eval_predictors_live`] (enforced by the
/// `replay_fidelity` integration test).
///
/// # Errors
/// Returns [`ExperimentError`] on compile/lower/run/replay failure.
pub fn eval_predictors(
    bench: &Benchmark,
    config: &ExperimentConfig,
    predictors: Vec<Box<dyn BranchPredictor>>,
) -> Result<Vec<PredStats>, ExperimentError> {
    if !config.use_trace_replay {
        return eval_predictors_live(bench, config, predictors);
    }
    let runs = crate::trace_replay::captured_runs(bench, config)?;
    let mut many = Many {
        evals: predictors.into_iter().map(Evaluator::new).collect(),
    };
    crate::trace_replay::replay_runs(&runs, &mut many)?;
    Ok(many.evals.into_iter().map(|e| e.stats).collect())
}

/// [`eval_predictors`] by direct interpretation, one interpreter pass
/// per run — the re-interpretation baseline that trace replay is
/// measured against (and the fidelity oracle in tests).
///
/// # Errors
/// Returns [`ExperimentError`] on compile/lower/run failure.
pub fn eval_predictors_live(
    bench: &Benchmark,
    config: &ExperimentConfig,
    predictors: Vec<Box<dyn BranchPredictor>>,
) -> Result<Vec<PredStats>, ExperimentError> {
    let module = bench.compile()?;
    let program = lower(&module)?;
    let exec_cfg = config.exec_config();
    let mut many = Many {
        evals: predictors.into_iter().map(Evaluator::new).collect(),
    };
    for streams in bench.runs(config.scale, config.seed) {
        let refs: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
        run(&program, &exec_cfg, &refs, &mut many)?;
    }
    Ok(many.evals.into_iter().map(|e| e.stats).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchlab_workloads::benchmark;

    #[test]
    fn wc_pipeline_end_to_end() {
        let r = run_benchmark(benchmark("wc").unwrap(), &ExperimentConfig::test()).unwrap();
        assert!(r.stats.insts > 10_000, "{:?}", r.stats);
        assert!(r.mix.cond_total() > 0);
        assert!(r.sbtb.accuracy() > 0.5, "SBTB {:?}", r.sbtb);
        assert!(r.cbtb.accuracy() > 0.5, "CBTB {:?}", r.cbtb);
        assert!(r.fs.accuracy() > 0.5, "FS {:?}", r.fs);
        // SBTB misses far more often than CBTB (taken-only residence).
        assert!(r.sbtb.miss_ratio() > r.cbtb.miss_ratio());
        assert_eq!(r.expansion.len(), 4);
    }

    #[test]
    fn every_result_carries_all_phase_spans() {
        let r = run_benchmark(benchmark("wc").unwrap(), &ExperimentConfig::test()).unwrap();
        for phase in PHASES {
            let span = r
                .phase(phase)
                .unwrap_or_else(|| panic!("missing phase {phase}"));
            assert_eq!(span.name, phase);
        }
        // The evaluation spans carry instruction counts as work.
        assert_eq!(r.phase("natural_eval").unwrap().work, r.stats.insts);
        assert!(r.phase("fs_eval").unwrap().work > 0);
        // Site telemetry is off by default.
        assert!(r.sbtb_sites.sites().is_empty());
        assert!(r.cbtb_sites.sites().is_empty());
    }

    #[test]
    fn site_telemetry_attributes_mispredicts_to_sites() {
        let config = ExperimentConfig {
            collect_site_telemetry: true,
            ..ExperimentConfig::test()
        };
        let r = run_benchmark(benchmark("wc").unwrap(), &config).unwrap();
        use branchlab_telemetry::ProbeKind;
        // The probe's view must agree with the evaluator's scoring.
        assert_eq!(
            r.sbtb_sites.total(ProbeKind::Mispredict),
            r.sbtb.events - r.sbtb.correct
        );
        assert_eq!(
            r.cbtb_sites.total(ProbeKind::Mispredict),
            r.cbtb.events - r.cbtb.correct
        );
        assert_eq!(
            r.sbtb_sites.total(ProbeKind::Hit),
            r.sbtb.events - r.sbtb.btb_misses
        );
        assert_eq!(r.sbtb_sites.total(ProbeKind::Miss), r.sbtb.btb_misses);
        assert!(!r.sbtb_sites.top_mispredicted(5).is_empty());
    }

    #[test]
    fn equivalence_is_verified_for_grep() {
        // grep has the most intricate control flow; the FS binary must
        // behave identically.
        let r = run_benchmark(benchmark("grep").unwrap(), &ExperimentConfig::test()).unwrap();
        assert!(r.fs.events > 0);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[5.0]), (5.0, 0.0));
    }

    #[test]
    fn eval_predictors_single_pass_consistency() {
        let cfg = ExperimentConfig::test();
        let stats = eval_predictors(
            benchmark("wc").unwrap(),
            &cfg,
            vec![Box::new(Sbtb::paper()), Box::new(Sbtb::paper())],
        )
        .unwrap();
        // Two identical predictors over the same stream must agree.
        assert_eq!(stats[0], stats[1]);
    }
}
