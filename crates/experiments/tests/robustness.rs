//! Robustness integration tests: the error taxonomy end to end, fault
//! injection determinism, and the full degrade/checkpoint/resume
//! acceptance scenario for the supervised suite.

use std::sync::Arc;
use std::time::Duration;

use branchlab_experiments::{
    run_benchmark, run_suite_supervised, supervise, tables, ErrorClass, ExperimentConfig,
    ExperimentError, SupervisorConfig,
};
use branchlab_interp::{run, ExecConfig};
use branchlab_workloads::{benchmark, SUITE};

/// A supervisor with negligible backoff so retry tests stay fast.
fn fast_sup(max_attempts: u32) -> SupervisorConfig {
    SupervisorConfig {
        max_attempts,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(2),
        ..SupervisorConfig::default()
    }
}

/// Run one benchmark through the real pipeline with `tweak` applied to
/// the config, under supervision, and return the failure record.
fn fail_bench(
    name: &'static str,
    tweak: impl Fn(&mut ExperimentConfig),
) -> branchlab_experiments::BenchFailure {
    let mut cfg = ExperimentConfig::test();
    tweak(&mut cfg);
    let bench = benchmark(name).unwrap();
    let (result, stats) = supervise(
        name,
        &fast_sup(3),
        Arc::new(move |_attempt| run_benchmark(bench, &cfg).map(|_| ())),
    );
    let failure = result.expect_err("tweaked config must fail");
    // Permanent errors must never be retried.
    assert_eq!(stats.retries, 0, "{failure}");
    failure
}

#[test]
fn out_of_fuel_is_permanent_and_not_retried() {
    let f = fail_bench("wc", |c| c.max_insts_per_run = 50);
    assert_eq!(f.class, ErrorClass::Permanent, "{f}");
    assert_eq!(f.attempts, 1);
    assert!(f.error.contains("out of fuel"), "{}", f.error);
}

#[test]
fn call_depth_exceeded_is_permanent_and_not_retried() {
    // wc's print_num recurses; depth 1 cannot host the prelude calls.
    let f = fail_bench("wc", |c| c.max_call_depth = 1);
    assert_eq!(f.class, ErrorClass::Permanent, "{f}");
    assert_eq!(f.attempts, 1);
    assert!(f.error.contains("call depth"), "{}", f.error);
}

#[test]
fn memory_too_small_is_permanent_and_not_retried() {
    // grep's global pattern/line buffers cannot fit in one word.
    let f = fail_bench("grep", |c| c.memory_words = 1);
    assert_eq!(f.class, ErrorClass::Permanent, "{f}");
    assert_eq!(f.attempts, 1);
    assert!(f.error.contains("memory"), "{}", f.error);
}

/// Compile and run a crafted MiniC program under supervision, expecting
/// the named permanent interpreter error on the first and only attempt.
fn fail_program(src: &'static str, exec: ExecConfig, expect: &str) {
    let (result, stats) = supervise(
        "crafted",
        &fast_sup(3),
        Arc::new(move |_attempt| {
            let module = branchlab_minic::compile(src).expect("crafted program compiles");
            let program = branchlab_ir::lower(&module).expect("crafted program lowers");
            run(&program, &exec, &[], &mut ())
                .map(|_| ())
                .map_err(ExperimentError::Exec)
        }),
    );
    let failure = result.expect_err("crafted program must fail");
    assert_eq!(failure.class, ErrorClass::Permanent, "{failure}");
    assert_eq!(failure.attempts, 1);
    assert_eq!(stats.retries, 0);
    assert!(failure.error.contains(expect), "{}", failure.error);
}

#[test]
fn memory_fault_is_permanent_and_not_retried() {
    fail_program(
        "int a[4]; int main() { a[-5000000] = 1; return 0; }",
        ExecConfig::default(),
        "memory fault",
    );
}

#[test]
fn stack_overflow_is_permanent_and_not_retried() {
    // No globals, so memory_words = 8 passes the globals check but
    // main's 64-word local array cannot be allocated.
    fail_program(
        "int main() { int buf[64]; buf[0] = 1; return buf[0]; }",
        ExecConfig {
            memory_words: 8,
            ..ExecConfig::default()
        },
        "stack overflow",
    );
}

/// Fault injection armed against `wc` only, exec-error lane certain.
fn wc_killer(cfg: &mut ExperimentConfig) {
    cfg.fault.exec_error_rate = 1.0;
    cfg.fault.benches = vec!["wc".to_string()];
}

#[test]
fn injection_failures_are_deterministic() {
    let mut cfg = ExperimentConfig::test();
    wc_killer(&mut cfg);
    let a = run_suite_supervised(&cfg, &fast_sup(2));
    let b = run_suite_supervised(&cfg, &fast_sup(2));
    assert_eq!(a.failures.len(), 1);
    assert_eq!(a.failures[0].name, b.failures[0].name);
    assert_eq!(a.failures[0].error, b.failures[0].error);
    assert_eq!(a.failures[0].attempts, b.failures[0].attempts);
}

#[test]
fn injected_panic_is_caught_and_counted() {
    let mut cfg = ExperimentConfig::test();
    cfg.fault.panic_rate = 1.0;
    cfg.fault.benches = vec!["wc".to_string()];
    let bench = benchmark("wc").unwrap();
    let (result, stats) = supervise(
        "wc",
        &fast_sup(2),
        Arc::new(move |attempt| {
            branchlab_experiments::run_benchmark_attempt(bench, &cfg, attempt).map(|_| ())
        }),
    );
    let failure = result.expect_err("certain panic injection must fail");
    assert_eq!(failure.class, ErrorClass::Transient, "{failure}");
    assert_eq!(failure.attempts, 2);
    assert_eq!(stats.panics_caught, 2);
    assert_eq!(stats.retries, 1);
    assert!(failure.error.contains("panic"), "{}", failure.error);
}

#[test]
fn acceptance_degrade_checkpoint_resume() {
    let dir = std::env::temp_dir().join(format!("branchlab-guard-accept-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("suite.jsonl");

    // Pass 1: injection kills wc; everything else completes and is
    // checkpointed.
    let mut cfg = ExperimentConfig::test();
    wc_killer(&mut cfg);
    let mut sup = fast_sup(2);
    sup.checkpoint = Some(ckpt.clone());
    let partial = run_suite_supervised(&cfg, &sup);

    assert!(!partial.is_complete());
    assert_eq!(partial.benches.len(), SUITE.len() - 1);
    assert_eq!(partial.failures.len(), 1);
    let f = &partial.failures[0];
    assert_eq!(f.name, "wc");
    assert_eq!(f.class, ErrorClass::Transient);
    assert_eq!(f.attempts, 2, "transient injected faults are retried");
    assert_eq!(partial.supervisor.completed as usize, SUITE.len() - 1);
    assert_eq!(partial.supervisor.failed, 1);
    assert_eq!(partial.supervisor.retries, 1);

    // The partial suite renders annotated tables rather than vanishing
    // rows.
    let t3 = tables::table3(&partial).to_text();
    assert!(
        t3.contains("wc") && t3.contains("FAILED(transient, 2 attempts)"),
        "{t3}"
    );

    // Pass 2: injection off, resume from the checkpoint; only wc runs.
    cfg.fault.exec_error_rate = 0.0;
    sup.resume = true;
    let full = run_suite_supervised(&cfg, &sup);

    assert!(full.is_complete(), "{:?}", full.failures);
    assert_eq!(full.benches.len(), SUITE.len());
    assert_eq!(full.supervisor.resumed as usize, SUITE.len() - 1);
    assert_eq!(full.supervisor.completed, 1, "only wc should re-run");

    // Resumed results carry the checkpointed numbers: the suite order
    // and per-bench stats match a clean unsupervised run.
    let clean = run_suite_supervised(&ExperimentConfig::test(), &fast_sup(1));
    for (r, c) in full.benches.iter().zip(clean.benches.iter()) {
        assert_eq!(r.name, c.name);
        assert_eq!(r.stats, c.stats);
        assert_eq!(r.sbtb, c.sbtb);
        assert_eq!(r.fs, c.fs);
    }

    std::fs::remove_dir_all(&dir).ok();
}
