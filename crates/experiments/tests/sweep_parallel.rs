//! Parallel sweep fidelity: for every suite benchmark, the full
//! ablation study set must render byte-identical tables whether its
//! sweep points are scored on 1 thread (the serial path), 2 threads,
//! or more threads than the machine has cores.
//!
//! This is the executor's core guarantee — each sweep point consumes
//! the complete event stream in capture order regardless of which
//! worker scores it, so worker count and scheduling cannot perturb any
//! statistic.

use branchlab_experiments::ablation::{full_study, StudySpec};
use branchlab_experiments::{ExperimentConfig, SweepStats};
use branchlab_workloads::{Scale, SUITE};

fn config(threads: usize) -> ExperimentConfig {
    ExperimentConfig {
        scale: Scale::Test,
        sweep_threads: Some(threads),
        ..ExperimentConfig::default()
    }
}

/// Render a study set to one comparable byte string.
fn rendered(tables: &[branchlab_experiments::Table]) -> String {
    tables
        .iter()
        .map(branchlab_experiments::Table::to_csv)
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn tables_are_byte_identical_across_thread_counts() {
    let spec = StudySpec::default();
    // More workers than any realistic core count, to exercise the
    // worker cap and uneven chunking.
    let many = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .max(4)
        + 3;
    let before = SweepStats::snapshot();
    for bench in SUITE {
        let serial = rendered(&full_study(bench, &config(1), &spec).unwrap());
        for threads in [2, many] {
            let parallel = rendered(&full_study(bench, &config(threads), &spec).unwrap());
            assert_eq!(
                parallel, serial,
                "{} diverged at sweep_threads={threads}",
                bench.name
            );
        }
    }
    let delta = SweepStats::snapshot().since(&before);
    // Two parallel passes per suite benchmark actually took the
    // parallel path and scored every predictor point there.
    assert_eq!(delta.sweeps, 2 * SUITE.len() as u64, "{delta:?}");
    assert!(
        delta.points > 0 && delta.batches >= delta.sweeps,
        "{delta:?}"
    );
    assert!(delta.workers >= 2 * delta.sweeps, "{delta:?}");
}
