//! Replay-fidelity acceptance tests: trace replay must be
//! *bit-identical* to live interpretation — same `PredStats` for every
//! predictor, same `BranchMix` — for every benchmark (the 1989 suite
//! plus the generated large-footprint synthetics); lane-packed scoring
//! must be bit-identical to the scalar path for every benchmark at
//! every thread count; capture itself must be deterministic in the
//! seed; and a corrupt or stale on-disk cache entry must degrade to a
//! clean re-capture, never to wrong numbers.

use std::collections::BTreeSet;

use branchlab_experiments::trace_replay::{captured_runs, clear_cache, replay_runs};
use branchlab_experiments::{
    eval_predictors, eval_predictors_live, ExperimentConfig, LaneStats, SweepBatch, TraceStats,
};
use branchlab_interp::{run, ExecConfig};
use branchlab_ir::lower;
use branchlab_predict::{
    AlwaysNotTaken, AlwaysTaken, BackwardTakenForwardNot, BranchPredictor, Cbtb, CbtbConfig,
    Gshare, LikelyBit, LocalHistory, Sbtb,
};
use branchlab_trace::{BranchEvent, BranchMix, ExecHooks};
use branchlab_workloads::{all_benchmarks, benchmark};

/// The fidelity predictor set: both hardware schemes plus the static
/// baselines (buffer-less predictors exercise the direction/target
/// fields of every replayed event).
fn preds() -> Vec<Box<dyn BranchPredictor>> {
    vec![
        Box::new(Sbtb::paper()),
        Box::new(Cbtb::paper()),
        Box::new(AlwaysTaken),
        Box::new(AlwaysNotTaken),
        Box::new(BackwardTakenForwardNot),
        Box::new(LikelyBit),
    ]
}

fn exec_config(cfg: &ExperimentConfig) -> ExecConfig {
    ExecConfig {
        max_insts: cfg.max_insts_per_run,
        memory_words: cfg.memory_words,
        max_call_depth: cfg.max_call_depth,
    }
}

#[test]
fn replayed_pred_stats_are_bit_identical_to_live_for_every_benchmark() {
    let cfg = ExperimentConfig::test();
    for bench in all_benchmarks() {
        let live = eval_predictors_live(bench, &cfg, preds())
            .unwrap_or_else(|e| panic!("{}: live evaluation failed: {e}", bench.name));
        let replayed = eval_predictors(bench, &cfg, preds())
            .unwrap_or_else(|e| panic!("{}: replay evaluation failed: {e}", bench.name));
        assert_eq!(
            live, replayed,
            "{}: replayed PredStats differ from live interpretation",
            bench.name
        );
    }
}

/// A lane-eligible mixed sweep: a CBTB counter family across two
/// widths, a second CBTB geometry pair, gshare/local geometry pairs,
/// and scalar-only points interleaved between them.
fn lane_sweep() -> Vec<Box<dyn BranchPredictor>> {
    let mut points: Vec<Box<dyn BranchPredictor>> = vec![Box::new(Sbtb::paper())];
    for bits in [2u8, 3] {
        for threshold in 1..(1u8 << bits) {
            points.push(Box::new(Cbtb::new(CbtbConfig {
                counter_bits: bits,
                threshold,
                ..CbtbConfig::paper()
            })));
        }
    }
    points.push(Box::new(AlwaysTaken));
    for ways in [1usize, 4] {
        points.push(Box::new(Cbtb::new(CbtbConfig {
            entries: 64,
            ways,
            ..CbtbConfig::paper()
        })));
    }
    points.push(Box::new(Gshare::new(12, 8)));
    points.push(Box::new(Gshare::new(10, 4)));
    points.push(Box::new(LocalHistory::new(12, 6)));
    points.push(Box::new(LocalHistory::new(10, 2)));
    points
}

#[test]
fn lane_scoring_is_bit_identical_to_scalar_for_every_benchmark() {
    let before = LaneStats::snapshot();
    for bench in all_benchmarks() {
        let scalar_cfg = ExperimentConfig {
            use_lane_scoring: false,
            sweep_threads: Some(1),
            ..ExperimentConfig::test()
        };
        let mut batch = SweepBatch::new(bench, &scalar_cfg);
        let st = batch.eval(lane_sweep());
        let scalar = batch
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));

        // Lane planning on, across serial and parallel executors: the
        // family items ride the same work queue as scalar chunks.
        for threads in [1usize, 3] {
            let cfg = ExperimentConfig {
                sweep_threads: Some(threads),
                ..ExperimentConfig::test()
            };
            let mut batch = SweepBatch::new(bench, &cfg);
            let lt = batch.eval(lane_sweep());
            let laned = batch
                .run()
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            assert_eq!(
                laned.stats(lt),
                scalar.stats(st),
                "{}: lane-scored PredStats differ from scalar (threads={threads})",
                bench.name
            );
        }
    }
    let delta = LaneStats::snapshot().since(&before);
    // Per pass: the paper-geometry counter family (10 lanes), the
    // 64-entry pair is split by geometry (ways 1 vs 4 → scalar), one
    // gshare pair, one local pair.
    assert!(delta.families >= 3, "{delta:?}");
    assert!(delta.lanes >= 14, "{delta:?}");
    assert!(delta.scalar_points >= 4, "{delta:?}");
    assert!(delta.events > 0, "{delta:?}");
}

#[test]
fn replayed_branch_mix_is_bit_identical_to_live_for_every_benchmark() {
    let cfg = ExperimentConfig::test();
    for bench in all_benchmarks() {
        let module = bench.compile().expect("compile");
        let program = lower(&module).expect("lower");
        let exec = exec_config(&cfg);
        let mut live = BranchMix::new();
        for streams in bench.runs(cfg.scale, cfg.seed) {
            let refs: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
            run(&program, &exec, &refs, &mut live)
                .unwrap_or_else(|e| panic!("{}: live run failed: {e}", bench.name));
        }

        let runs = captured_runs(bench, &cfg).expect("capture");
        let mut replayed = BranchMix::new();
        replay_runs(&runs, &mut replayed).expect("replay");
        assert_eq!(
            live, replayed,
            "{}: replayed BranchMix differs from live interpretation",
            bench.name
        );
    }
}

/// Distinct static branch sites exercised across a set of traces.
#[derive(Default)]
struct SiteSet(BTreeSet<branchlab_ir::Addr>);

impl ExecHooks for SiteSet {
    fn branch(&mut self, ev: &BranchEvent) {
        self.0.insert(ev.pc);
    }
}

fn exercised_sites(
    bench: &branchlab_workloads::Benchmark,
    cfg: &ExperimentConfig,
) -> BTreeSet<branchlab_ir::Addr> {
    let runs = captured_runs(bench, cfg).expect("capture");
    let mut sites = SiteSet::default();
    replay_runs(&runs, &mut sites).expect("replay");
    sites.0
}

/// The generated workloads are deterministic end to end: capturing the
/// same benchmark twice under the same seed — with the in-memory trace
/// cache dropped in between — yields byte-identical trace buffers
/// (`TraceBuf` equality compares the encoded bytes).
#[test]
fn synthetic_capture_is_byte_identical_across_runs() {
    let cfg = ExperimentConfig::test();
    for name in ["dispatch", "router"] {
        let bench = benchmark(name).expect("synthetic benchmark");
        clear_cache();
        let first = captured_runs(bench, &cfg).expect("first capture");
        clear_cache();
        let second = captured_runs(bench, &cfg).expect("second capture");
        assert_eq!(
            *first, *second,
            "{name}: re-captured trace bytes differ under the same seed"
        );
    }
}

/// Different input seeds exercise different branch-site populations:
/// the request generators draw a fresh active/hot set per seed, so the
/// dynamic footprint — not just the event order — must change.
#[test]
fn synthetic_seeds_select_different_site_populations() {
    for name in ["dispatch", "router"] {
        let bench = benchmark(name).expect("synthetic benchmark");
        clear_cache();
        let base = exercised_sites(bench, &ExperimentConfig::test());
        clear_cache();
        let other = exercised_sites(
            bench,
            &ExperimentConfig {
                seed: 42,
                ..ExperimentConfig::test()
            },
        );
        assert!(!base.is_empty() && !other.is_empty());
        assert_ne!(
            base, other,
            "{name}: seeds 1989 and 42 exercised identical site populations"
        );
        clear_cache();
    }
}

#[test]
fn corrupt_and_stale_disk_cache_entries_degrade_to_recapture() {
    let dir =
        std::env::temp_dir().join(format!("branchlab-replay-fidelity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create cache dir");
    let bench = benchmark("wc").expect("wc in suite");
    let cfg = ExperimentConfig {
        trace_cache_dir: Some(dir.clone()),
        ..ExperimentConfig::test()
    };

    // First evaluation captures live and populates the disk cache.
    clear_cache();
    let reference = eval_predictors(bench, &cfg, preds()).expect("populate cache");
    let cached: Vec<_> = std::fs::read_dir(&dir)
        .expect("read cache dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "trace"))
        .collect();
    assert!(!cached.is_empty(), "capture left no on-disk trace");

    // A warm disk cache loads cleanly after the in-memory cache drops.
    clear_cache();
    let before = TraceStats::snapshot();
    let warm = eval_predictors(bench, &cfg, preds()).expect("disk cache load");
    let delta = TraceStats::snapshot().since(&before);
    assert_eq!(warm, reference);
    assert!(delta.disk_hits >= 1, "expected a disk-cache hit: {delta:?}");

    // Corrupt every cached file (flip payload bytes → checksum fails):
    // the engine must fall back to re-capture and still be identical.
    for path in &cached {
        std::fs::write(path, b"not a trace file").expect("corrupt cache file");
    }
    clear_cache();
    let before = TraceStats::snapshot();
    let after_corrupt = eval_predictors(bench, &cfg, preds()).expect("recapture after corruption");
    let delta = TraceStats::snapshot().since(&before);
    assert_eq!(after_corrupt, reference);
    assert!(
        delta.disk_invalid >= 1,
        "corrupt entry not detected: {delta:?}"
    );
    assert!(delta.captures >= 1, "no re-capture happened: {delta:?}");

    // Stale entry: valid container written under a *different* key
    // (digest mismatch) — here simulated by truncating to a plausible
    // but checksum-less prefix. Also must degrade to re-capture.
    for path in &cached {
        let bytes = std::fs::read(path).expect("read corrupted file");
        std::fs::write(path, &bytes[..bytes.len() / 2]).expect("truncate cache file");
    }
    clear_cache();
    let before = TraceStats::snapshot();
    let after_stale = eval_predictors(bench, &cfg, preds()).expect("recapture after staleness");
    let delta = TraceStats::snapshot().since(&before);
    assert_eq!(after_stale, reference);
    assert!(delta.captures >= 1, "no re-capture happened: {delta:?}");

    std::fs::remove_dir_all(&dir).ok();
}
