use branchlab_experiments::{run_benchmark, ExperimentConfig};
use branchlab_profile::profile_module_with;
use branchlab_workloads::{benchmark, Scale};

fn main() {
    let cfg = ExperimentConfig {
        scale: Scale::Small,
        ..ExperimentConfig::default()
    };
    let b = benchmark("compress").unwrap();
    let module = b.compile().unwrap();
    let runs = b.runs(cfg.scale, cfg.seed);
    let prof = profile_module_with(&module, &runs, &Default::default()).unwrap();
    // Theoretical conditional majority rate.
    let (mut maj, mut tot) = (0u64, 0u64);
    let mut sites: Vec<_> = prof.sites.iter().collect();
    sites.sort_by_key(|(s, _)| *s);
    for (site, c) in &sites {
        maj += c.majority();
        tot += c.total;
        if c.total > 100_000 {
            println!(
                "site {site}: taken {}/{} ({:.1}% maj)",
                c.taken,
                c.total,
                c.majority() as f64 / c.total as f64 * 100.0
            );
        }
    }
    println!(
        "conditional majority bound: {:.2}%",
        maj as f64 / tot as f64 * 100.0
    );
    let r = run_benchmark(b, &cfg).unwrap();
    println!(
        "FS   overall {:.2}%  cond {:.2}%",
        r.fs.accuracy() * 100.0,
        r.fs.cond_accuracy() * 100.0
    );
    println!(
        "CBTB overall {:.2}%  cond {:.2}%",
        r.cbtb.accuracy() * 100.0,
        r.cbtb.cond_accuracy() * 100.0
    );
    println!(
        "SBTB overall {:.2}%  cond {:.2}%",
        r.sbtb.accuracy() * 100.0,
        r.sbtb.cond_accuracy() * 100.0
    );
    println!("events: FS {} CBTB {}", r.fs.events, r.cbtb.events);
}
