//! Core identifier and operand types shared by the CFG and linear forms.

use std::fmt;

/// A virtual register index, local to one function frame.
///
/// Registers are 64-bit signed integers at runtime. Each function declares
/// how many registers it uses ([`crate::Function::num_regs`]); the
/// interpreter allocates a fresh register file per activation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Index of a function within a [`crate::Module`] or [`crate::Program`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct FuncId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Index of a basic block within one function.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// An instruction address in linear code (word addressed, one word per
/// instruction, mirroring the paper's pipeline which fetches one
/// instruction per cycle).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Addr(pub u32);

impl Addr {
    /// Address of the instruction `n` slots later.
    #[must_use]
    pub fn offset(self, n: u32) -> Addr {
        Addr(self.0 + n)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:06}", self.0)
    }
}

/// A layout-stable identity for a static branch site: the basic block whose
/// terminator it is. Profiles and likely bits are keyed by `BranchId` so
/// they survive re-layout (the Forward Semantic moves code around).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BranchId {
    /// Function containing the branch.
    pub func: FuncId,
    /// Block whose terminator is the branch.
    pub block: BlockId,
}

impl fmt::Display for BranchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.func, self.block)
    }
}

/// Either a register or an immediate. Most ALU and branch operands accept
/// both, which keeps MiniC codegen simple and matches the paper's
/// "compiler intermediate instruction" granularity.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// Read the value of a register in the current frame.
    Reg(Reg),
    /// A constant.
    Imm(i64),
}

impl Operand {
    /// The register read by this operand, if any.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Comparison condition for compare-and-branch and [`crate::Op::Cmp`].
///
/// The paper's machine model folds the comparison into the conditional
/// branch ("it is assumed that comparisons are included in the semantics of
/// the conditional branch instruction"), so conditions appear directly on
/// branches rather than via condition codes.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b` (signed)
    Lt,
    /// `a <= b` (signed)
    Le,
    /// `a > b` (signed)
    Gt,
    /// `a >= b` (signed)
    Ge,
}

impl Cond {
    /// Evaluate the condition on two signed values.
    #[must_use]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }

    /// The condition that is true exactly when `self` is false.
    #[must_use]
    pub fn invert(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }

    /// Mnemonic used by the printers (`eq`, `ne`, …).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Binary ALU operation.
///
/// Division and remainder by zero are defined to produce `0` rather than
/// trapping; the workloads never rely on this, but it keeps the interpreter
/// total, which matters for property tests over arbitrary programs.
/// Overflow wraps. Shift counts are masked to the low 6 bits.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division; `x / 0 == 0`, `MIN / -1 == MIN`.
    Div,
    /// Signed remainder; `x % 0 == 0`.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (count masked to 6 bits).
    Shl,
    /// Arithmetic right shift (count masked to 6 bits).
    Shr,
}

impl AluOp {
    /// Evaluate the operation with total (non-trapping) semantics.
    #[must_use]
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
        }
    }

    /// Mnemonic used by the printers.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_covers_all_orderings() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(!Cond::Eq.eval(3, 4));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(-1, 0));
        assert!(!Cond::Lt.eval(0, 0));
        assert!(Cond::Le.eval(0, 0));
        assert!(Cond::Gt.eval(5, -5));
        assert!(Cond::Ge.eval(5, 5));
    }

    #[test]
    fn cond_invert_is_logical_negation() {
        let conds = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge];
        for c in conds {
            for (a, b) in [(0, 0), (1, 2), (2, 1), (-3, 3), (i64::MIN, i64::MAX)] {
                assert_eq!(c.eval(a, b), !c.invert().eval(a, b), "{c:?} a={a} b={b}");
            }
        }
    }

    #[test]
    fn cond_invert_is_involution() {
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge] {
            assert_eq!(c.invert().invert(), c);
        }
    }

    #[test]
    fn alu_div_rem_by_zero_are_total() {
        assert_eq!(AluOp::Div.eval(7, 0), 0);
        assert_eq!(AluOp::Rem.eval(7, 0), 0);
        assert_eq!(AluOp::Div.eval(i64::MIN, -1), i64::MIN);
        assert_eq!(AluOp::Rem.eval(i64::MIN, -1), 0);
    }

    #[test]
    fn alu_basic_arithmetic() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), -1);
        assert_eq!(AluOp::Mul.eval(-4, 3), -12);
        assert_eq!(AluOp::Div.eval(7, 2), 3);
        assert_eq!(AluOp::Rem.eval(7, 2), 1);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.eval(1, 4), 16);
        assert_eq!(AluOp::Shr.eval(-16, 2), -4);
    }

    #[test]
    fn alu_shift_counts_are_masked() {
        assert_eq!(AluOp::Shl.eval(1, 64), 1);
        assert_eq!(AluOp::Shl.eval(1, 65), 2);
        assert_eq!(AluOp::Shr.eval(4, 64), 4);
    }

    #[test]
    fn alu_wrapping_overflow() {
        assert_eq!(AluOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(AluOp::Mul.eval(i64::MAX, 2), -2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Reg(3).to_string(), "r3");
        assert_eq!(Addr(17).to_string(), "@000017");
        assert_eq!(Operand::from(Reg(1)).to_string(), "r1");
        assert_eq!(Operand::from(-9i64).to_string(), "-9");
        assert_eq!(
            BranchId {
                func: FuncId(1),
                block: BlockId(2)
            }
            .to_string(),
            "f1:b2"
        );
    }

    #[test]
    fn operand_reg_extraction() {
        assert_eq!(Operand::Reg(Reg(5)).reg(), Some(Reg(5)));
        assert_eq!(Operand::Imm(5).reg(), None);
    }

    #[test]
    fn addr_offset() {
        assert_eq!(Addr(10).offset(5), Addr(15));
    }
}
