//! Linear (laid-out) code: the form the interpreter executes, the branch
//! target buffers observe, and the pipeline fetches.

use crate::types::{Addr, AluOp, BlockId, BranchId, Cond, FuncId, Operand, Reg};

/// One laid-out instruction. Addresses are word-granular; every
/// instruction occupies one word, matching the paper's one-instruction-
/// per-fetch pipeline model.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // variant fields are described in variant docs
pub enum Inst {
    /// `dst = a <op> b`
    Alu {
        op: AluOp,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// `dst = (a <cond> b) ? 1 : 0`
    Cmp {
        cond: Cond,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// `dst = src`
    Mov { dst: Reg, src: Operand },
    /// `dst = memory[base + offset]`
    Ld {
        dst: Reg,
        base: Operand,
        offset: i64,
    },
    /// `memory[base + offset] = src`
    St {
        src: Operand,
        base: Operand,
        offset: i64,
    },
    /// `dst = frame_pointer + offset`
    FrameAddr { dst: Reg, offset: i64 },
    /// `dst = next input byte` (−1 at end of stream).
    In { dst: Reg, stream: Operand },
    /// Emit the low byte of `src` on an output stream.
    Out { src: Operand, stream: Operand },
    /// Conditional compare-and-branch. When taken, control moves to
    /// `target`; otherwise it falls through to `pc + 1 + slots`
    /// (forward slots sit between the branch and its fall-through path).
    /// `likely` is the Forward Semantic's compiler prediction bit.
    Br {
        cond: Cond,
        a: Operand,
        b: Operand,
        target: Addr,
        slots: u16,
        likely: bool,
    },
    /// Unconditional direct jump (known target).
    Jmp { target: Addr, slots: u16 },
    /// Indexed indirect jump through `table` — the *unknown target*
    /// unconditional branch class of the paper.
    JmpTable { sel: Operand, table: u32 },
    /// Call a function by index; arguments are copied into the callee's
    /// `r0..`, the return value (if any) lands in `dst`.
    Call {
        func: FuncId,
        args: Box<[Reg]>,
        dst: Option<Reg>,
    },
    /// Return to the caller.
    Ret { val: Option<Operand> },
    /// No operation (also used as forward-slot padding).
    Nop,
    /// Stop the machine.
    Halt,
}

impl Inst {
    /// Is this a branch for the paper's statistics (conditional or
    /// unconditional jump, excluding calls/returns)?
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Inst::Br { .. } | Inst::Jmp { .. } | Inst::JmpTable { .. }
        )
    }

    /// Is this a conditional branch?
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Br { .. })
    }
}

/// Side metadata for an instruction (parallel to [`Program::code`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct InstMeta {
    /// Function that owns this instruction.
    pub func: FuncId,
    /// Source basic block.
    pub block: BlockId,
    /// True for forward-slot instructions inserted by the Forward
    /// Semantic transformation (copies of the target path, never executed
    /// architecturally).
    pub is_slot: bool,
}

impl InstMeta {
    /// The layout-stable branch identity of this instruction (meaningful
    /// when the instruction is a block terminator branch).
    #[must_use]
    pub fn branch_id(&self) -> BranchId {
        BranchId {
            func: self.func,
            block: self.block,
        }
    }
}

/// Per-function information carried into linear form.
#[derive(Clone, Debug)]
pub struct FuncInfo {
    /// Function name.
    pub name: String,
    /// Address of the first instruction.
    pub entry: Addr,
    /// One past the last instruction.
    pub end: Addr,
    /// Register file size.
    pub num_regs: u16,
    /// Number of parameters.
    pub num_params: u16,
    /// Stack frame size in words.
    pub frame_words: u32,
}

/// A jump table for [`Inst::JmpTable`].
#[derive(Clone, Debug)]
pub struct JumpTable {
    /// Resolved target addresses for in-range selectors.
    pub targets: Box<[Addr]>,
    /// Target when the selector is out of range.
    pub default: Addr,
}

impl JumpTable {
    /// Resolve a selector value to a target address.
    #[must_use]
    pub fn resolve(&self, sel: i64) -> Addr {
        usize::try_from(sel)
            .ok()
            .and_then(|i| self.targets.get(i).copied())
            .unwrap_or(self.default)
    }
}

/// A fully laid-out program.
#[derive(Clone, Debug)]
pub struct Program {
    /// The instruction stream.
    pub code: Vec<Inst>,
    /// Per-instruction metadata, parallel to `code`.
    pub meta: Vec<InstMeta>,
    /// Function table, indexed by [`FuncId`].
    pub funcs: Vec<FuncInfo>,
    /// Jump tables referenced by [`Inst::JmpTable`].
    pub jump_tables: Vec<JumpTable>,
    /// Address where execution starts (entry function's entry).
    pub entry: Addr,
    /// Words of global data memory.
    pub globals_words: u32,
    /// Initial values for global data memory (zero-padded to
    /// `globals_words` by the interpreter).
    pub globals_init: Vec<i64>,
    /// `block_addrs[f][b]` = address of the first instruction of block `b`
    /// of function `f` in this layout.
    pub block_addrs: Vec<Vec<Addr>>,
}

impl Program {
    /// Instruction at `pc`.
    ///
    /// # Panics
    /// Panics if `pc` is out of range.
    #[must_use]
    pub fn inst(&self, pc: Addr) -> &Inst {
        &self.code[pc.0 as usize]
    }

    /// Metadata for the instruction at `pc`.
    ///
    /// # Panics
    /// Panics if `pc` is out of range.
    #[must_use]
    pub fn meta_at(&self, pc: Addr) -> &InstMeta {
        &self.meta[pc.0 as usize]
    }

    /// Total static code size in instructions (including forward slots).
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Static code size excluding forward-slot instructions — the
    /// "original" size used as the denominator in the paper's Table 5.
    #[must_use]
    pub fn len_without_slots(&self) -> usize {
        self.meta.iter().filter(|m| !m.is_slot).count()
    }

    /// Number of forward-slot instructions inserted by the Forward
    /// Semantic transformation.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.meta.iter().filter(|m| m.is_slot).count()
    }

    /// Addresses of all static branch sites (conditional and
    /// unconditional), in address order.
    #[must_use]
    pub fn branch_sites(&self) -> Vec<Addr> {
        self.code
            .iter()
            .enumerate()
            .filter(|(i, inst)| inst.is_branch() && !self.meta[*i].is_slot)
            .map(|(i, _)| Addr(i as u32))
            .collect()
    }

    /// The function containing `pc`, if any.
    #[must_use]
    pub fn func_at(&self, pc: Addr) -> Option<&FuncInfo> {
        let f = self.meta.get(pc.0 as usize)?.func;
        self.funcs.get(f.0 as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_table_resolution() {
        let t = JumpTable {
            targets: vec![Addr(10), Addr(20)].into_boxed_slice(),
            default: Addr(99),
        };
        assert_eq!(t.resolve(0), Addr(10));
        assert_eq!(t.resolve(1), Addr(20));
        assert_eq!(t.resolve(2), Addr(99));
        assert_eq!(t.resolve(-1), Addr(99));
        assert_eq!(t.resolve(i64::MAX), Addr(99));
    }

    #[test]
    fn inst_branch_classification() {
        let br = Inst::Br {
            cond: Cond::Eq,
            a: Operand::Imm(0),
            b: Operand::Imm(0),
            target: Addr(0),
            slots: 0,
            likely: false,
        };
        assert!(br.is_branch());
        assert!(br.is_cond_branch());
        assert!(Inst::Jmp {
            target: Addr(0),
            slots: 0
        }
        .is_branch());
        assert!(!Inst::Jmp {
            target: Addr(0),
            slots: 0
        }
        .is_cond_branch());
        assert!(Inst::JmpTable {
            sel: Operand::Imm(0),
            table: 0
        }
        .is_branch());
        assert!(!Inst::Nop.is_branch());
        assert!(!Inst::Ret { val: None }.is_branch());
        let call = Inst::Call {
            func: FuncId(0),
            args: Box::new([]),
            dst: None,
        };
        assert!(!call.is_branch());
    }

    #[test]
    fn meta_branch_id() {
        let m = InstMeta {
            func: FuncId(2),
            block: BlockId(3),
            is_slot: false,
        };
        assert_eq!(
            m.branch_id(),
            BranchId {
                func: FuncId(2),
                block: BlockId(3)
            }
        );
    }
}
