//! Structural validation of CFG modules.
//!
//! The MiniC compiler always produces valid modules (a property test in
//! `branchlab-minic` asserts this), but hand-built modules and generated
//! test programs go through [`validate_module`] before execution.

use std::fmt;

use crate::cfg::{Module, Op, Term};
use crate::types::{BlockId, FuncId, Operand, Reg};

/// A structural defect found in a module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidateError {
    /// Function where the defect was found.
    pub func: FuncId,
    /// Block where the defect was found (if block-local).
    pub block: Option<BlockId>,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.block {
            Some(b) => write!(f, "invalid module at {}:{b}: {}", self.func, self.detail),
            None => write!(f, "invalid module at {}: {}", self.func, self.detail),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Check a module for structural validity: register and block indices in
/// range, call signatures consistent, entry function present, block ids
/// self-consistent.
///
/// # Errors
/// Returns the first defect found.
pub fn validate_module(m: &Module) -> Result<(), ValidateError> {
    if m.funcs.is_empty() {
        return Err(ValidateError {
            func: FuncId(0),
            block: None,
            detail: "module has no functions".into(),
        });
    }
    if m.entry.0 as usize >= m.funcs.len() {
        return Err(ValidateError {
            func: m.entry,
            block: None,
            detail: "entry function out of range".into(),
        });
    }
    for (fi, f) in m.funcs.iter().enumerate() {
        let err = |block: Option<BlockId>, detail: String| ValidateError {
            func: FuncId(fi as u32),
            block,
            detail,
        };
        if f.id != FuncId(fi as u32) {
            return Err(err(None, format!("function id {} != position {fi}", f.id)));
        }
        if f.blocks.is_empty() {
            return Err(err(None, "function has no blocks".into()));
        }
        if f.num_params > f.num_regs {
            return Err(err(None, "more params than registers".into()));
        }
        let nblocks = f.blocks.len();
        let check_block = |b: BlockId| -> bool { (b.0 as usize) < nblocks };
        let check_reg = |r: Reg| -> bool { r.0 < f.num_regs };
        let check_opnd = |o: Operand| -> bool { o.reg().is_none_or(check_reg) };

        for (bi, b) in f.blocks.iter().enumerate() {
            let here = Some(BlockId(bi as u32));
            if b.id != BlockId(bi as u32) {
                return Err(err(here, format!("block id {} != position {bi}", b.id)));
            }
            for op in &b.ops {
                let ok = match op {
                    Op::Alu { dst, a, b, .. } | Op::Cmp { dst, a, b, .. } => {
                        check_reg(*dst) && check_opnd(*a) && check_opnd(*b)
                    }
                    Op::Mov { dst, src } => check_reg(*dst) && check_opnd(*src),
                    Op::Ld { dst, base, .. } => check_reg(*dst) && check_opnd(*base),
                    Op::St { src, base, .. } => check_opnd(*src) && check_opnd(*base),
                    Op::FrameAddr { dst, .. } => check_reg(*dst),
                    Op::In { dst, stream } => check_reg(*dst) && check_opnd(*stream),
                    Op::Out { src, stream } => check_opnd(*src) && check_opnd(*stream),
                    Op::Call { func, args, dst } => {
                        let callee_ok = (func.0 as usize) < m.funcs.len();
                        let sig_ok =
                            callee_ok && m.funcs[func.0 as usize].num_params as usize == args.len();
                        callee_ok
                            && sig_ok
                            && args.iter().all(|r| check_reg(*r))
                            && dst.is_none_or(check_reg)
                    }
                    Op::Nop => true,
                };
                if !ok {
                    return Err(err(here, format!("malformed op {op:?}")));
                }
            }
            let ok = match &b.term {
                Term::Br {
                    a,
                    b: bb,
                    then_,
                    else_,
                    ..
                } => {
                    check_opnd(*a) && check_opnd(*bb) && check_block(*then_) && check_block(*else_)
                }
                Term::Jmp(t) => check_block(*t),
                Term::Switch {
                    sel,
                    targets,
                    default,
                } => {
                    check_reg(*sel)
                        && !targets.is_empty()
                        && targets.iter().all(|t| check_block(*t))
                        && check_block(*default)
                }
                Term::Ret(v) => v.is_none_or(check_opnd),
                Term::Halt => true,
            };
            if !ok {
                return Err(err(here, format!("malformed terminator {:?}", b.term)));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Block, Function, FunctionBuilder};
    use crate::types::Cond;

    fn valid_module() -> Module {
        let mut fb = FunctionBuilder::new("main", FuncId(0), 0);
        fb.terminate(Term::Halt);
        Module {
            funcs: vec![fb.finish()],
            globals_words: 0,
            globals_init: Vec::new(),
            entry: FuncId(0),
        }
    }

    #[test]
    fn accepts_valid_module() {
        assert_eq!(validate_module(&valid_module()), Ok(()));
    }

    #[test]
    fn rejects_empty_module() {
        let m = Module {
            funcs: vec![],
            globals_words: 0,
            globals_init: Vec::new(),
            entry: FuncId(0),
        };
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn rejects_bad_entry() {
        let mut m = valid_module();
        m.entry = FuncId(9);
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn rejects_out_of_range_register() {
        let mut m = valid_module();
        m.funcs[0].blocks[0].ops.push(Op::Mov {
            dst: Reg(99),
            src: 0i64.into(),
        });
        let e = validate_module(&m).unwrap_err();
        assert!(e.detail.contains("malformed op"), "{e}");
    }

    #[test]
    fn rejects_out_of_range_block_target() {
        let mut m = valid_module();
        m.funcs[0].blocks[0].term = Term::Jmp(BlockId(5));
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut m = valid_module();
        // Add a second function taking 2 params; call it with 1 arg.
        let mut fb = FunctionBuilder::new("two", FuncId(1), 2);
        fb.terminate(Term::Ret(Some(0i64.into())));
        m.funcs.push(fb.finish());
        m.funcs[0].num_regs = 4;
        m.funcs[0].blocks[0].ops.push(Op::Call {
            func: FuncId(1),
            args: vec![Reg(0)],
            dst: None,
        });
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn rejects_empty_switch() {
        let mut m = valid_module();
        m.funcs[0].num_regs = 1;
        m.funcs[0].blocks[0].term = Term::Switch {
            sel: Reg(0),
            targets: vec![],
            default: BlockId(0),
        };
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn rejects_mismatched_block_ids() {
        let mut m = valid_module();
        let f: &mut Function = &mut m.funcs[0];
        f.blocks.push(Block {
            id: BlockId(7),
            ops: vec![],
            term: Term::Halt,
        });
        let e = validate_module(&m).unwrap_err();
        assert!(e.detail.contains("block id"), "{e}");
    }

    #[test]
    fn rejects_bad_branch_operand() {
        let mut m = valid_module();
        m.funcs[0].blocks[0].term = Term::Br {
            cond: Cond::Eq,
            a: Reg(50).into(),
            b: 0i64.into(),
            then_: BlockId(0),
            else_: BlockId(0),
        };
        assert!(validate_module(&m).is_err());
    }

    #[test]
    fn error_display_mentions_location() {
        let e = ValidateError {
            func: FuncId(1),
            block: Some(BlockId(2)),
            detail: "boom".into(),
        };
        assert_eq!(e.to_string(), "invalid module at f1:b2: boom");
    }
}
