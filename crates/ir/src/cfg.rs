//! Control-flow-graph form of the IR: what the MiniC compiler produces and
//! what the profiler and the Forward Semantic passes analyze.

use crate::types::{AluOp, BlockId, BranchId, Cond, FuncId, Operand, Reg};

/// A whole compiled program in CFG form.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// Functions, indexed by [`FuncId`].
    pub funcs: Vec<Function>,
    /// Number of words of global data (globals live at addresses
    /// `0..globals_words` in the flat data memory).
    pub globals_words: u32,
    /// Initial values for global data memory. May be shorter than
    /// `globals_words`; the remainder is zero-initialized.
    pub globals_init: Vec<i64>,
    /// The function where execution starts.
    pub entry: FuncId,
}

impl Module {
    /// Look up a function.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Find a function by name.
    #[must_use]
    pub fn func_by_name(&self, name: &str) -> Option<&Function> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Total static instruction count (ops + one slot per terminator),
    /// before lowering. Useful as a size sanity check.
    #[must_use]
    pub fn static_size(&self) -> usize {
        self.funcs
            .iter()
            .map(|f| f.blocks.iter().map(|b| b.ops.len() + 1).sum::<usize>())
            .sum()
    }

    /// Iterate over all conditional-branch sites in the module.
    pub fn cond_branches(&self) -> impl Iterator<Item = BranchId> + '_ {
        self.funcs.iter().flat_map(|f| {
            f.blocks.iter().filter_map(move |b| match b.term {
                Term::Br { .. } => Some(BranchId {
                    func: f.id,
                    block: b.id,
                }),
                _ => None,
            })
        })
    }
}

/// One function in CFG form. Block 0 is the entry block.
#[derive(Clone, Debug)]
pub struct Function {
    /// Human-readable name (unique within a module).
    pub name: String,
    /// This function's index in [`Module::funcs`].
    pub id: FuncId,
    /// Number of parameters; arguments arrive in registers `r0..rN`.
    pub num_params: u16,
    /// Size of the register file for this function.
    pub num_regs: u16,
    /// Words of stack frame needed for local arrays
    /// (addressed via [`Op::FrameAddr`]).
    pub frame_words: u32,
    /// Basic blocks, indexed by [`BlockId`]. `blocks[0]` is the entry.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Look up a block.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Successor blocks of `id`, in (then, else) / switch-table order.
    #[must_use]
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        self.block(id).term.successors()
    }

    /// Predecessor map: for each block, the blocks that can branch to it.
    #[must_use]
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in &self.blocks {
            for s in b.term.successors() {
                preds[s.0 as usize].push(b.id);
            }
        }
        preds
    }
}

/// A basic block: straight-line ops followed by exactly one terminator.
#[derive(Clone, Debug)]
pub struct Block {
    /// This block's index in [`Function::blocks`].
    pub id: BlockId,
    /// Straight-line (non-control) instructions.
    pub ops: Vec<Op>,
    /// The control-flow terminator.
    pub term: Term,
}

/// A non-control instruction.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // variant fields are described in variant docs
pub enum Op {
    /// `dst = a <op> b`
    Alu {
        op: AluOp,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// `dst = (a <cond> b) ? 1 : 0`
    Cmp {
        cond: Cond,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// `dst = src`
    Mov { dst: Reg, src: Operand },
    /// `dst = memory[base + offset]`
    Ld {
        dst: Reg,
        base: Operand,
        offset: i64,
    },
    /// `memory[base + offset] = src`
    St {
        src: Operand,
        base: Operand,
        offset: i64,
    },
    /// `dst = frame_pointer + offset` — address of a local array slot.
    FrameAddr { dst: Reg, offset: i64 },
    /// `dst = next byte of input stream` (−1 at end); the stream
    /// index is evaluated at run time and masked to `0..8`.
    In { dst: Reg, stream: Operand },
    /// Append the low byte of `src` to an output stream.
    Out { src: Operand, stream: Operand },
    /// Call `func` with arguments; the return value (if the callee returns
    /// one and `dst` is set) lands in `dst`.
    Call {
        func: FuncId,
        args: Vec<Reg>,
        dst: Option<Reg>,
    },
    /// No operation.
    Nop,
}

/// A block terminator.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // variant fields are described in variant docs
pub enum Term {
    /// Conditional branch: if `a <cond> b` go to `then_`, else `else_`.
    Br {
        cond: Cond,
        a: Operand,
        b: Operand,
        then_: BlockId,
        else_: BlockId,
    },
    /// Unconditional direct jump (known target).
    Jmp(BlockId),
    /// Indexed indirect jump (the paper's *unknown target* unconditional
    /// branch): go to `targets[sel]`, or `default` when `sel` is out of
    /// range. MiniC `switch` lowers to this.
    Switch {
        sel: Reg,
        targets: Vec<BlockId>,
        default: BlockId,
    },
    /// Return to the caller with an optional value.
    Ret(Option<Operand>),
    /// Stop the machine (only valid in the entry function).
    Halt,
}

impl Term {
    /// Successor blocks in deterministic order. `Br` yields
    /// `[then, else]`; `Switch` yields the table then the default.
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Br { then_, else_, .. } => vec![*then_, *else_],
            Term::Jmp(t) => vec![*t],
            Term::Switch {
                targets, default, ..
            } => {
                let mut v = targets.clone();
                v.push(*default);
                v.dedup();
                v
            }
            Term::Ret(_) | Term::Halt => Vec::new(),
        }
    }

    /// Is this terminator a branch for the purposes of the paper's
    /// statistics (conditional or unconditional, excluding returns)?
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(self, Term::Br { .. } | Term::Jmp(_) | Term::Switch { .. })
    }
}

/// Incremental builder for a [`Function`]. MiniC codegen drives this.
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    id: FuncId,
    num_params: u16,
    next_reg: u16,
    frame_words: u32,
    blocks: Vec<Block>,
    /// Blocks whose terminator has not been set yet (placeholder `Halt`).
    sealed: Vec<bool>,
    current: BlockId,
}

impl FunctionBuilder {
    /// Start building a function. Parameters occupy `r0..num_params`.
    #[must_use]
    pub fn new(name: impl Into<String>, id: FuncId, num_params: u16) -> Self {
        let entry = Block {
            id: BlockId(0),
            ops: Vec::new(),
            term: Term::Halt,
        };
        FunctionBuilder {
            name: name.into(),
            id,
            num_params,
            next_reg: num_params,
            frame_words: 0,
            blocks: vec![entry],
            sealed: vec![false],
            current: BlockId(0),
        }
    }

    /// Allocate a fresh virtual register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg = self
            .next_reg
            .checked_add(1)
            .expect("function uses more than 65535 registers");
        r
    }

    /// Reserve `words` of frame space, returning its offset.
    pub fn alloc_frame(&mut self, words: u32) -> i64 {
        let off = self.frame_words;
        self.frame_words += words;
        i64::from(off)
    }

    /// Create a new, empty block (does not switch to it).
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(u32::try_from(self.blocks.len()).expect("too many blocks"));
        self.blocks.push(Block {
            id,
            ops: Vec::new(),
            term: Term::Halt,
        });
        self.sealed.push(false);
        id
    }

    /// Switch the insertion point to `b`.
    ///
    /// # Panics
    /// Panics if `b`'s terminator was already set.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(!self.sealed[b.0 as usize], "block {b} already terminated");
        self.current = b;
    }

    /// The block currently being appended to.
    #[must_use]
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Whether the current block has been terminated.
    #[must_use]
    pub fn current_sealed(&self) -> bool {
        self.sealed[self.current.0 as usize]
    }

    /// Append an op to the current block.
    ///
    /// # Panics
    /// Panics if the current block is already terminated.
    pub fn push(&mut self, op: Op) {
        assert!(
            !self.current_sealed(),
            "push after terminator in {}",
            self.current
        );
        self.blocks[self.current.0 as usize].ops.push(op);
    }

    /// Terminate the current block.
    ///
    /// # Panics
    /// Panics if it is already terminated.
    pub fn terminate(&mut self, term: Term) {
        assert!(
            !self.current_sealed(),
            "double terminator in {}",
            self.current
        );
        self.blocks[self.current.0 as usize].term = term;
        self.sealed[self.current.0 as usize] = true;
    }

    /// Terminate with a jump unless the block already ended (convenience
    /// for fallthrough-style codegen).
    pub fn jump_if_open(&mut self, target: BlockId) {
        if !self.current_sealed() {
            self.terminate(Term::Jmp(target));
        }
    }

    /// Number of registers allocated so far.
    #[must_use]
    pub fn reg_count(&self) -> u16 {
        self.next_reg
    }

    /// Finish the function. Unterminated blocks become `Ret(None)` so the
    /// result is always structurally valid.
    #[must_use]
    pub fn finish(mut self) -> Function {
        for (i, b) in self.blocks.iter_mut().enumerate() {
            if !self.sealed[i] {
                b.term = Term::Ret(None);
            }
        }
        Function {
            name: self.name,
            id: self.id,
            num_params: self.num_params,
            num_regs: self.next_reg.max(self.num_params).max(1),
            frame_words: self.frame_words,
            blocks: self.blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AluOp, Cond};

    fn tiny_function() -> Function {
        let mut fb = FunctionBuilder::new("t", FuncId(0), 1);
        let r = fb.new_reg();
        let then_b = fb.new_block();
        let else_b = fb.new_block();
        fb.push(Op::Alu {
            op: AluOp::Add,
            dst: r,
            a: Reg(0).into(),
            b: 1i64.into(),
        });
        fb.terminate(Term::Br {
            cond: Cond::Lt,
            a: r.into(),
            b: 10i64.into(),
            then_: then_b,
            else_: else_b,
        });
        fb.switch_to(then_b);
        fb.terminate(Term::Ret(Some(r.into())));
        fb.switch_to(else_b);
        fb.terminate(Term::Ret(Some(0i64.into())));
        fb.finish()
    }

    #[test]
    fn builder_produces_expected_shape() {
        let f = tiny_function();
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.num_params, 1);
        assert!(f.num_regs >= 2);
        assert_eq!(f.blocks[0].ops.len(), 1);
        assert_eq!(f.successors(BlockId(0)), vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn predecessors_inverts_successors() {
        let f = tiny_function();
        let preds = f.predecessors();
        assert_eq!(preds[0], Vec::<BlockId>::new());
        assert_eq!(preds[1], vec![BlockId(0)]);
        assert_eq!(preds[2], vec![BlockId(0)]);
    }

    #[test]
    #[should_panic(expected = "double terminator")]
    fn double_terminate_panics() {
        let mut fb = FunctionBuilder::new("t", FuncId(0), 0);
        fb.terminate(Term::Ret(None));
        fb.terminate(Term::Ret(None));
    }

    #[test]
    #[should_panic(expected = "push after terminator")]
    fn push_after_terminator_panics() {
        let mut fb = FunctionBuilder::new("t", FuncId(0), 0);
        fb.terminate(Term::Ret(None));
        fb.push(Op::Nop);
    }

    #[test]
    fn unterminated_blocks_get_ret() {
        let mut fb = FunctionBuilder::new("t", FuncId(0), 0);
        let b = fb.new_block();
        fb.terminate(Term::Jmp(b));
        // b left open on purpose.
        let f = fb.finish();
        assert_eq!(f.blocks[1].term, Term::Ret(None));
    }

    #[test]
    fn switch_successors_dedup_default() {
        let t = Term::Switch {
            sel: Reg(0),
            targets: vec![BlockId(1), BlockId(2), BlockId(2)],
            default: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn term_branch_classification() {
        assert!(Term::Jmp(BlockId(0)).is_branch());
        assert!(!Term::Ret(None).is_branch());
        assert!(!Term::Halt.is_branch());
    }

    #[test]
    fn module_cond_branches_enumerates_brs() {
        let f = tiny_function();
        let m = Module {
            funcs: vec![f],
            globals_words: 0,
            globals_init: Vec::new(),
            entry: FuncId(0),
        };
        let sites: Vec<_> = m.cond_branches().collect();
        assert_eq!(
            sites,
            vec![BranchId {
                func: FuncId(0),
                block: BlockId(0)
            }]
        );
    }

    #[test]
    fn jump_if_open_is_idempotent_after_seal() {
        let mut fb = FunctionBuilder::new("t", FuncId(0), 0);
        let b = fb.new_block();
        fb.terminate(Term::Ret(None));
        fb.switch_to(b);
        fb.jump_if_open(BlockId(0));
        fb.jump_if_open(BlockId(0)); // no-op: already sealed
        let f = fb.finish();
        assert_eq!(f.blocks[1].term, Term::Jmp(BlockId(0)));
    }

    #[test]
    fn alloc_frame_accumulates() {
        let mut fb = FunctionBuilder::new("t", FuncId(0), 0);
        assert_eq!(fb.alloc_frame(10), 0);
        assert_eq!(fb.alloc_frame(5), 10);
        fb.terminate(Term::Ret(None));
        assert_eq!(fb.finish().frame_words, 15);
    }
}
