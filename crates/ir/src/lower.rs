//! Lowering from CFG form to linear code under a [`LayoutPlan`].
//!
//! The plan controls block order (natural or trace order), the compiler's
//! likely bits, and how many forward slots to reserve after each
//! predicted-taken branch — i.e. everything the Forward Semantic
//! transformation decides. The default plan reproduces a conventional
//! layout with no slots.

use std::collections::HashMap;

use crate::cfg::{Module, Op, Term};
use crate::linear::{FuncInfo, Inst, InstMeta, JumpTable, Program};
use crate::types::{Addr, BlockId, BranchId, FuncId, Operand};

/// A complete layout decision for a module.
#[derive(Clone, Debug)]
pub struct LayoutPlan {
    /// Block emission order per function (must be a permutation of the
    /// function's blocks).
    pub order: Vec<Vec<BlockId>>,
    /// Likely bit per conditional branch: `Some(true)` means the *then*
    /// edge is predicted, `Some(false)` the *else* edge, `None` no
    /// prediction (treated as fall-through predicted / branch not-taken).
    pub then_likely: Vec<Vec<Option<bool>>>,
    /// Forward slots (k + ℓ in the paper) reserved after each
    /// predicted-taken branch. Zero disables slot insertion.
    pub slots: u16,
    /// Whether unconditional direct jumps also receive forward slots
    /// (they are "predicted taken" trivially).
    pub slot_jumps: bool,
    /// Whether unconditional jumps to the adjacent block are elided
    /// (normal codegen). Profiling builds set this to `false` so every
    /// CFG edge produces a branch event — the analogue of the paper's
    /// basic-block probes.
    pub elide_jumps: bool,
    /// Per-function, per-block "hot" flags: only jumps in hot (profiled
    /// as executed) blocks receive forward slots — cold code is never
    /// predicted taken, so the paper reserves no slots there.
    pub hot: Vec<Vec<bool>>,
}

impl LayoutPlan {
    /// The conventional layout: blocks in creation order, no likely bits,
    /// no forward slots. This is what the SBTB/CBTB machines run.
    #[must_use]
    pub fn natural(module: &Module) -> Self {
        LayoutPlan {
            order: module
                .funcs
                .iter()
                .map(|f| (0..f.blocks.len() as u32).map(BlockId).collect())
                .collect(),
            then_likely: module
                .funcs
                .iter()
                .map(|f| vec![None; f.blocks.len()])
                .collect(),
            slots: 0,
            slot_jumps: false,
            elide_jumps: true,
            hot: module
                .funcs
                .iter()
                .map(|f| vec![true; f.blocks.len()])
                .collect(),
        }
    }

    /// A profiling layout: natural order, but with no jump elision so
    /// that every control-flow edge is observable as a branch event.
    #[must_use]
    pub fn instrumented(module: &Module) -> Self {
        LayoutPlan {
            elide_jumps: false,
            ..Self::natural(module)
        }
    }

    /// Set the likely bit for one branch site.
    pub fn set_likely(&mut self, site: BranchId, then_likely: bool) {
        self.then_likely[site.func.0 as usize][site.block.0 as usize] = Some(then_likely);
    }
}

/// Errors detected while lowering.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are described in variant docs
pub enum LowerError {
    /// The plan's block order for a function is not a permutation.
    BadOrder { func: FuncId, detail: String },
    /// The plan's shape does not match the module.
    PlanShape { detail: String },
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::BadOrder { func, detail } => {
                write!(f, "bad block order for {func}: {detail}")
            }
            LowerError::PlanShape { detail } => write!(f, "plan shape mismatch: {detail}"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Lower a module with the conventional layout (no slots, no likely bits).
///
/// # Errors
/// Returns an error if the module is malformed in a way lowering detects;
/// run [`crate::validate::validate_module`] first for precise diagnostics.
pub fn lower(module: &Module) -> Result<Program, LowerError> {
    lower_with_plan(module, &LayoutPlan::natural(module))
}

struct Fixup {
    inst: usize,
    func: FuncId,
    target: BlockId,
}

/// Lower a module under an explicit layout plan.
///
/// # Errors
/// Returns [`LowerError`] if the plan does not match the module (wrong
/// function count, non-permutation block order).
pub fn lower_with_plan(module: &Module, plan: &LayoutPlan) -> Result<Program, LowerError> {
    if plan.order.len() != module.funcs.len() || plan.then_likely.len() != module.funcs.len() {
        return Err(LowerError::PlanShape {
            detail: format!(
                "plan covers {} functions, module has {}",
                plan.order.len(),
                module.funcs.len()
            ),
        });
    }

    let mut code: Vec<Inst> = Vec::new();
    let mut meta: Vec<InstMeta> = Vec::new();
    let mut block_addrs: Vec<Vec<Addr>> = Vec::with_capacity(module.funcs.len());
    let mut fixups: Vec<Fixup> = Vec::new();
    let mut table_fixups: Vec<(usize, FuncId, Vec<BlockId>, BlockId)> = Vec::new();
    let mut jump_tables: Vec<JumpTable> = Vec::new();
    let mut funcs: Vec<FuncInfo> = Vec::with_capacity(module.funcs.len());

    for (fi, f) in module.funcs.iter().enumerate() {
        let order = &plan.order[fi];
        check_permutation(f.id, order, f.blocks.len())?;
        if plan.then_likely[fi].len() != f.blocks.len() {
            return Err(LowerError::PlanShape {
                detail: format!("then_likely[{fi}] has wrong length"),
            });
        }

        let func_start = Addr(code.len() as u32);
        let mut addrs = vec![Addr(0); f.blocks.len()];
        // Map each block to its successor in the layout (same function).
        let next_in_layout: HashMap<BlockId, BlockId> =
            order.windows(2).map(|w| (w[0], w[1])).collect();

        for &bid in order {
            let block = f.block(bid);
            addrs[bid.0 as usize] = Addr(code.len() as u32);
            let m = InstMeta {
                func: f.id,
                block: bid,
                is_slot: false,
            };
            let slot_m = InstMeta {
                func: f.id,
                block: bid,
                is_slot: true,
            };

            for op in &block.ops {
                code.push(lower_op(op));
                meta.push(m);
            }

            let next = next_in_layout.get(&bid).copied();
            match &block.term {
                Term::Br {
                    cond,
                    a,
                    b,
                    then_,
                    else_,
                } => {
                    let tl = plan.then_likely[fi][bid.0 as usize];
                    let (emit_cond, emit_target, likely) = if Some(*else_) == next {
                        (*cond, *then_, tl == Some(true))
                    } else if Some(*then_) == next {
                        (cond.invert(), *else_, tl == Some(false))
                    } else {
                        (*cond, *then_, tl == Some(true))
                    };
                    let slots = if likely { plan.slots } else { 0 };
                    fixups.push(Fixup {
                        inst: code.len(),
                        func: f.id,
                        target: emit_target,
                    });
                    code.push(Inst::Br {
                        cond: emit_cond,
                        a: *a,
                        b: *b,
                        target: Addr(0),
                        slots,
                        likely,
                    });
                    meta.push(m);
                    for _ in 0..slots {
                        code.push(Inst::Nop);
                        meta.push(slot_m);
                    }
                    // If neither successor is adjacent, the else edge
                    // needs an explicit jump after the fall-through point.
                    if Some(*else_) != next && Some(*then_) != next {
                        let hot = plan.hot[fi][bid.0 as usize];
                        let jslots = if plan.slot_jumps && hot {
                            plan.slots
                        } else {
                            0
                        };
                        fixups.push(Fixup {
                            inst: code.len(),
                            func: f.id,
                            target: *else_,
                        });
                        code.push(Inst::Jmp {
                            target: Addr(0),
                            slots: jslots,
                        });
                        meta.push(m);
                        for _ in 0..jslots {
                            code.push(Inst::Nop);
                            meta.push(slot_m);
                        }
                    }
                }
                Term::Jmp(t) => {
                    if Some(*t) != next || !plan.elide_jumps {
                        let hot = plan.hot[fi][bid.0 as usize];
                        let jslots = if plan.slot_jumps && hot {
                            plan.slots
                        } else {
                            0
                        };
                        fixups.push(Fixup {
                            inst: code.len(),
                            func: f.id,
                            target: *t,
                        });
                        code.push(Inst::Jmp {
                            target: Addr(0),
                            slots: jslots,
                        });
                        meta.push(m);
                        for _ in 0..jslots {
                            code.push(Inst::Nop);
                            meta.push(slot_m);
                        }
                    }
                }
                Term::Switch {
                    sel,
                    targets,
                    default,
                } => {
                    table_fixups.push((jump_tables.len(), f.id, targets.clone(), *default));
                    code.push(Inst::JmpTable {
                        sel: Operand::Reg(*sel),
                        table: jump_tables.len() as u32,
                    });
                    jump_tables.push(JumpTable {
                        targets: Box::new([]),
                        default: Addr(0),
                    });
                    meta.push(m);
                }
                Term::Ret(v) => {
                    code.push(Inst::Ret { val: *v });
                    meta.push(m);
                }
                Term::Halt => {
                    code.push(Inst::Halt);
                    meta.push(m);
                }
            }
        }

        funcs.push(FuncInfo {
            name: f.name.clone(),
            entry: func_start, // patched below to block 0's address
            end: Addr(code.len() as u32),
            num_regs: f.num_regs,
            num_params: f.num_params,
            frame_words: f.frame_words,
        });
        block_addrs.push(addrs);
    }

    // Function entry is its block 0, wherever the layout put it.
    for (fi, info) in funcs.iter_mut().enumerate() {
        info.entry = block_addrs[fi][0];
    }

    // Resolve branch targets.
    for fx in &fixups {
        let addr = block_addrs[fx.func.0 as usize][fx.target.0 as usize];
        match &mut code[fx.inst] {
            Inst::Br { target, .. } | Inst::Jmp { target, .. } => *target = addr,
            other => unreachable!("fixup on non-branch {other:?}"),
        }
    }
    for (ti, func, targets, default) in table_fixups {
        let resolve = |b: BlockId| block_addrs[func.0 as usize][b.0 as usize];
        jump_tables[ti] = JumpTable {
            targets: targets.iter().copied().map(resolve).collect(),
            default: resolve(default),
        };
    }

    // Fill forward slots with copies of the target path, in address order
    // (the paper's algorithm: copy the next k+ℓ instructions of the
    // target trace; pad with NOPs where the target path runs out).
    if plan.slots > 0 {
        fill_slots(&mut code, &meta, &funcs);
    }

    let entry = funcs[module.entry.0 as usize].entry;
    Ok(Program {
        code,
        meta,
        funcs,
        jump_tables,
        entry,
        globals_words: module.globals_words,
        globals_init: module.globals_init.clone(),
        block_addrs,
    })
}

fn check_permutation(func: FuncId, order: &[BlockId], n: usize) -> Result<(), LowerError> {
    if order.len() != n {
        return Err(LowerError::BadOrder {
            func,
            detail: format!("order lists {} blocks, function has {n}", order.len()),
        });
    }
    let mut seen = vec![false; n];
    for b in order {
        let i = b.0 as usize;
        if i >= n || seen[i] {
            return Err(LowerError::BadOrder {
                func,
                detail: format!("block {b} repeated or out of range"),
            });
        }
        seen[i] = true;
    }
    Ok(())
}

fn lower_op(op: &Op) -> Inst {
    match op {
        Op::Alu { op, dst, a, b } => Inst::Alu {
            op: *op,
            dst: *dst,
            a: *a,
            b: *b,
        },
        Op::Cmp { cond, dst, a, b } => Inst::Cmp {
            cond: *cond,
            dst: *dst,
            a: *a,
            b: *b,
        },
        Op::Mov { dst, src } => Inst::Mov {
            dst: *dst,
            src: *src,
        },
        Op::Ld { dst, base, offset } => Inst::Ld {
            dst: *dst,
            base: *base,
            offset: *offset,
        },
        Op::St { src, base, offset } => Inst::St {
            src: *src,
            base: *base,
            offset: *offset,
        },
        Op::FrameAddr { dst, offset } => Inst::FrameAddr {
            dst: *dst,
            offset: *offset,
        },
        Op::In { dst, stream } => Inst::In {
            dst: *dst,
            stream: *stream,
        },
        Op::Out { src, stream } => Inst::Out {
            src: *src,
            stream: *stream,
        },
        Op::Call { func, args, dst } => Inst::Call {
            func: *func,
            args: args.clone().into_boxed_slice(),
            dst: *dst,
        },
        Op::Nop => Inst::Nop,
    }
}

/// Replace slot placeholder NOPs with copies of the instructions that
/// follow the branch target in the final layout (NOP-padded at function
/// end). Copies are never executed — branch semantics skip them — but
/// they occupy real addresses, so code-size and fetch-stream effects are
/// faithful.
fn fill_slots(code: &mut [Inst], meta: &[InstMeta], funcs: &[FuncInfo]) {
    for i in 0..code.len() {
        if meta[i].is_slot {
            // Copies of branches inside already-filled slots are
            // decorative; they have no slot placeholders of their own.
            continue;
        }
        let (target, slots) = match &code[i] {
            Inst::Br { target, slots, .. } if *slots > 0 => (*target, *slots),
            Inst::Jmp { target, slots } if *slots > 0 => (*target, *slots),
            _ => continue,
        };
        let func = meta[i].func;
        let fend = funcs[func.0 as usize].end.0 as usize;
        for j in 0..slots as usize {
            let slot_pos = i + 1 + j;
            let src_pos = target.0 as usize + j;
            debug_assert!(
                meta[slot_pos].is_slot,
                "slot placeholder expected at {slot_pos}"
            );
            code[slot_pos] = if src_pos < fend {
                code[src_pos].clone()
            } else {
                Inst::Nop
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{FunctionBuilder, Op};
    use crate::types::{AluOp, Cond, Reg};

    /// main: r1 = 0; loop: r1 += 1; if r1 < 3 goto loop; halt
    fn loop_module() -> Module {
        let mut fb = FunctionBuilder::new("main", FuncId(0), 0);
        let r = fb.new_reg();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.push(Op::Mov {
            dst: r,
            src: 0i64.into(),
        });
        fb.terminate(Term::Jmp(body));
        fb.switch_to(body);
        fb.push(Op::Alu {
            op: AluOp::Add,
            dst: r,
            a: r.into(),
            b: 1i64.into(),
        });
        fb.terminate(Term::Br {
            cond: Cond::Lt,
            a: r.into(),
            b: 3i64.into(),
            then_: body,
            else_: exit,
        });
        fb.switch_to(exit);
        fb.terminate(Term::Halt);
        let f = fb.finish();
        Module {
            funcs: vec![f],
            globals_words: 0,
            globals_init: Vec::new(),
            entry: FuncId(0),
        }
    }

    #[test]
    fn natural_lowering_elides_adjacent_jumps() {
        let m = loop_module();
        let p = lower(&m).unwrap();
        // mov, (jmp elided: body adjacent), add, br, halt
        assert_eq!(p.code.len(), 4);
        assert!(matches!(p.code[0], Inst::Mov { .. }));
        assert!(matches!(p.code[1], Inst::Alu { .. }));
        match &p.code[2] {
            Inst::Br {
                target,
                slots,
                likely,
                ..
            } => {
                assert_eq!(*target, Addr(1));
                assert_eq!(*slots, 0);
                assert!(!likely);
            }
            other => panic!("expected Br, got {other:?}"),
        }
        assert!(matches!(p.code[3], Inst::Halt));
        assert_eq!(p.entry, Addr(0));
    }

    #[test]
    fn branch_condition_inverted_when_then_is_adjacent() {
        // if r0 == 0 then next-block else far-block, with then adjacent.
        let mut fb = FunctionBuilder::new("main", FuncId(0), 1);
        let then_b = fb.new_block();
        let else_b = fb.new_block();
        fb.terminate(Term::Br {
            cond: Cond::Eq,
            a: Reg(0).into(),
            b: 0i64.into(),
            then_: then_b,
            else_: else_b,
        });
        fb.switch_to(then_b);
        fb.terminate(Term::Halt);
        fb.switch_to(else_b);
        fb.terminate(Term::Halt);
        let m = Module {
            funcs: vec![fb.finish()],
            globals_words: 0,
            globals_init: Vec::new(),
            entry: FuncId(0),
        };
        let p = lower(&m).unwrap();
        match &p.code[0] {
            Inst::Br { cond, target, .. } => {
                assert_eq!(*cond, Cond::Ne); // inverted
                assert_eq!(*target, p.block_addrs[0][2]);
            }
            other => panic!("expected Br, got {other:?}"),
        }
    }

    #[test]
    fn non_adjacent_branch_gets_trailing_jump() {
        // Layout: block0 (Br then=2 else=1), then put block2 right after 0
        // so neither successor of... actually order [0, 1, 2] with
        // then_=2: else_=1 adjacent, no extra jump. Force order [0, 2, 1]:
        // then_=2 adjacent → inverted branch; no extra jump either.
        // To force the two-instruction form use order [0,1,2] with
        // then_=1? that's adjacent too. Use a 4-block diamond.
        let mut fb = FunctionBuilder::new("main", FuncId(0), 1);
        let a = fb.new_block();
        let b = fb.new_block();
        let join = fb.new_block();
        fb.terminate(Term::Br {
            cond: Cond::Eq,
            a: Reg(0).into(),
            b: 0i64.into(),
            then_: a,
            else_: b,
        });
        fb.switch_to(a);
        fb.terminate(Term::Jmp(join));
        fb.switch_to(b);
        fb.terminate(Term::Jmp(join));
        fb.switch_to(join);
        fb.terminate(Term::Halt);
        let m = Module {
            funcs: vec![fb.finish()],
            globals_words: 0,
            globals_init: Vec::new(),
            entry: FuncId(0),
        };
        // Order that makes neither Br successor adjacent: [0, 3, 1, 2]
        let mut plan = LayoutPlan::natural(&m);
        plan.order[0] = vec![BlockId(0), BlockId(3), BlockId(1), BlockId(2)];
        let p = lower_with_plan(&m, &plan).unwrap();
        assert!(matches!(p.code[0], Inst::Br { .. }));
        assert!(matches!(p.code[1], Inst::Jmp { .. })); // explicit else jump
    }

    #[test]
    fn likely_branch_reserves_and_fills_slots() {
        let m = loop_module();
        let mut plan = LayoutPlan::natural(&m);
        // The loop back-edge branch lives in block 1; its then edge
        // (back to body) is likely.
        plan.set_likely(
            BranchId {
                func: FuncId(0),
                block: BlockId(1),
            },
            true,
        );
        plan.slots = 2;
        let p = lower_with_plan(&m, &plan).unwrap();
        // mov, add, br(+2 slots), slot, slot, halt
        assert_eq!(p.code.len(), 6);
        match &p.code[2] {
            Inst::Br {
                slots,
                likely,
                target,
                ..
            } => {
                assert_eq!(*slots, 2);
                assert!(*likely);
                assert_eq!(*target, Addr(1));
            }
            other => panic!("expected Br, got {other:?}"),
        }
        assert!(p.meta[3].is_slot && p.meta[4].is_slot);
        // Slots hold copies of the target path: add, br.
        assert!(matches!(p.code[3], Inst::Alu { .. }));
        assert!(matches!(p.code[4], Inst::Br { .. }));
        assert_eq!(p.slot_count(), 2);
        assert_eq!(p.len_without_slots(), 4);
    }

    #[test]
    fn slots_pad_with_nops_at_function_end() {
        // Branch whose target path has only one instruction before the
        // function ends.
        let mut fb = FunctionBuilder::new("main", FuncId(0), 1);
        let exit = fb.new_block();
        let other = fb.new_block();
        fb.terminate(Term::Br {
            cond: Cond::Eq,
            a: Reg(0).into(),
            b: 0i64.into(),
            then_: exit,
            else_: other,
        });
        fb.switch_to(other);
        fb.terminate(Term::Halt);
        fb.switch_to(exit);
        fb.terminate(Term::Halt);
        let m = Module {
            funcs: vec![fb.finish()],
            globals_words: 0,
            globals_init: Vec::new(),
            entry: FuncId(0),
        };
        // Layout [0, 2, 1]: then_=1(exit) laid out... order: block0, block2, block1.
        // Br then_=1, else_=2; next after 0 is 2 → else adjacent → Br(cond, then=1).
        let mut plan = LayoutPlan::natural(&m);
        plan.order[0] = vec![BlockId(0), BlockId(2), BlockId(1)];
        plan.set_likely(
            BranchId {
                func: FuncId(0),
                block: BlockId(0),
            },
            true,
        );
        plan.slots = 3;
        let p = lower_with_plan(&m, &plan).unwrap();
        // br(+3 slots), slot(halt copy), slot(nop pad), slot(nop pad), halt(other), halt(exit)
        assert_eq!(p.code.len(), 6);
        assert!(matches!(p.code[1], Inst::Halt)); // copy of exit's halt
        assert!(matches!(p.code[2], Inst::Nop));
        assert!(matches!(p.code[3], Inst::Nop));
    }

    #[test]
    fn bad_order_rejected() {
        let m = loop_module();
        let mut plan = LayoutPlan::natural(&m);
        plan.order[0] = vec![BlockId(0), BlockId(0), BlockId(1)];
        assert!(matches!(
            lower_with_plan(&m, &plan),
            Err(LowerError::BadOrder { .. })
        ));
        plan.order[0] = vec![BlockId(0)];
        assert!(matches!(
            lower_with_plan(&m, &plan),
            Err(LowerError::BadOrder { .. })
        ));
    }

    #[test]
    fn switch_lowering_builds_jump_table() {
        let mut fb = FunctionBuilder::new("main", FuncId(0), 1);
        let c0 = fb.new_block();
        let c1 = fb.new_block();
        let dfl = fb.new_block();
        fb.terminate(Term::Switch {
            sel: Reg(0),
            targets: vec![c0, c1],
            default: dfl,
        });
        for b in [c0, c1, dfl] {
            fb.switch_to(b);
            fb.terminate(Term::Halt);
        }
        let m = Module {
            funcs: vec![fb.finish()],
            globals_words: 0,
            globals_init: Vec::new(),
            entry: FuncId(0),
        };
        let p = lower(&m).unwrap();
        assert!(matches!(p.code[0], Inst::JmpTable { .. }));
        assert_eq!(p.jump_tables.len(), 1);
        let t = &p.jump_tables[0];
        assert_eq!(t.targets.len(), 2);
        assert_eq!(t.resolve(0), p.block_addrs[0][1]);
        assert_eq!(t.resolve(1), p.block_addrs[0][2]);
        assert_eq!(t.resolve(7), p.block_addrs[0][3]);
    }

    #[test]
    fn entry_points_at_block_zero_even_when_reordered() {
        let m = loop_module();
        let mut plan = LayoutPlan::natural(&m);
        plan.order[0] = vec![BlockId(1), BlockId(0), BlockId(2)];
        let p = lower_with_plan(&m, &plan).unwrap();
        assert_eq!(p.entry, p.block_addrs[0][0]);
        assert_ne!(p.entry, Addr(0));
    }
}
