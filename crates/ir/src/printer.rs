//! Textual listings of CFG modules and linear programs, for debugging and
//! golden tests.

use std::fmt::Write as _;

use crate::cfg::{Module, Op, Term};
use crate::linear::{Inst, Program};

/// Render a CFG module as a human-readable listing.
#[must_use]
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for f in &m.funcs {
        let _ = writeln!(
            out,
            "fn {} ({}) [regs={} frame={}]",
            f.name, f.num_params, f.num_regs, f.frame_words
        );
        for b in &f.blocks {
            let _ = writeln!(out, "  {}:", b.id);
            for op in &b.ops {
                let _ = writeln!(out, "    {}", format_op(op));
            }
            let _ = writeln!(out, "    {}", format_term(&b.term));
        }
    }
    out
}

fn format_op(op: &Op) -> String {
    match op {
        Op::Alu { op, dst, a, b } => format!("{dst} = {op} {a}, {b}"),
        Op::Cmp { cond, dst, a, b } => format!("{dst} = cmp.{cond} {a}, {b}"),
        Op::Mov { dst, src } => format!("{dst} = {src}"),
        Op::Ld { dst, base, offset } => format!("{dst} = mem[{base} + {offset}]"),
        Op::St { src, base, offset } => format!("mem[{base} + {offset}] = {src}"),
        Op::FrameAddr { dst, offset } => format!("{dst} = fp + {offset}"),
        Op::In { dst, stream } => format!("{dst} = in #{stream}"),
        Op::Out { src, stream } => format!("out #{stream}, {src}"),
        Op::Call { func, args, dst } => {
            let args = args
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            match dst {
                Some(d) => format!("{d} = call {func}({args})"),
                None => format!("call {func}({args})"),
            }
        }
        Op::Nop => "nop".to_string(),
    }
}

fn format_term(t: &Term) -> String {
    match t {
        Term::Br {
            cond,
            a,
            b,
            then_,
            else_,
        } => {
            format!("br.{cond} {a}, {b} -> {then_} else {else_}")
        }
        Term::Jmp(t) => format!("jmp {t}"),
        Term::Switch {
            sel,
            targets,
            default,
        } => {
            let ts = targets
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            format!("switch {sel} [{ts}] default {default}")
        }
        Term::Ret(Some(v)) => format!("ret {v}"),
        Term::Ret(None) => "ret".to_string(),
        Term::Halt => "halt".to_string(),
    }
}

/// Disassemble a linear program.
#[must_use]
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    for (i, inst) in p.code.iter().enumerate() {
        let meta = &p.meta[i];
        if let Some(f) = p.funcs.iter().find(|f| f.entry.0 as usize == i) {
            let _ = writeln!(out, "{}:", f.name);
        }
        let slot = if meta.is_slot { " [slot]" } else { "" };
        let _ = writeln!(out, "  {:6}  {}{}", i, format_inst(inst), slot);
    }
    out
}

fn format_inst(inst: &Inst) -> String {
    match inst {
        Inst::Alu { op, dst, a, b } => format!("{dst} = {op} {a}, {b}"),
        Inst::Cmp { cond, dst, a, b } => format!("{dst} = cmp.{cond} {a}, {b}"),
        Inst::Mov { dst, src } => format!("{dst} = {src}"),
        Inst::Ld { dst, base, offset } => format!("{dst} = mem[{base} + {offset}]"),
        Inst::St { src, base, offset } => format!("mem[{base} + {offset}] = {src}"),
        Inst::FrameAddr { dst, offset } => format!("{dst} = fp + {offset}"),
        Inst::In { dst, stream } => format!("{dst} = in #{stream}"),
        Inst::Out { src, stream } => format!("out #{stream}, {src}"),
        Inst::Br {
            cond,
            a,
            b,
            target,
            slots,
            likely,
        } => {
            let lk = if *likely { " (likely)" } else { "" };
            let sl = if *slots > 0 {
                format!(" +{slots} slots")
            } else {
                String::new()
            };
            format!("br.{cond} {a}, {b} -> {target}{lk}{sl}")
        }
        Inst::Jmp { target, slots } => {
            let sl = if *slots > 0 {
                format!(" +{slots} slots")
            } else {
                String::new()
            };
            format!("jmp {target}{sl}")
        }
        Inst::JmpTable { sel, table } => format!("jmp.table {sel} via t{table}"),
        Inst::Call { func, args, dst } => {
            let args = args
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            match dst {
                Some(d) => format!("{d} = call {func}({args})"),
                None => format!("call {func}({args})"),
            }
        }
        Inst::Ret { val: Some(v) } => format!("ret {v}"),
        Inst::Ret { val: None } => "ret".to_string(),
        Inst::Nop => "nop".to_string(),
        Inst::Halt => "halt".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::FunctionBuilder;
    use crate::lower::lower;
    use crate::types::{AluOp, Cond, FuncId, Reg};

    fn sample() -> Module {
        let mut fb = FunctionBuilder::new("main", FuncId(0), 0);
        let r = fb.new_reg();
        let exit = fb.new_block();
        fb.push(Op::Mov {
            dst: r,
            src: 41i64.into(),
        });
        fb.push(Op::Alu {
            op: AluOp::Add,
            dst: r,
            a: r.into(),
            b: 1i64.into(),
        });
        fb.push(Op::Out {
            src: r.into(),
            stream: 0i64.into(),
        });
        fb.terminate(Term::Br {
            cond: Cond::Eq,
            a: r.into(),
            b: 42i64.into(),
            then_: exit,
            else_: exit,
        });
        fb.switch_to(exit);
        fb.terminate(Term::Halt);
        Module {
            funcs: vec![fb.finish()],
            globals_words: 0,
            globals_init: Vec::new(),
            entry: FuncId(0),
        }
    }

    #[test]
    fn module_listing_contains_expected_lines() {
        let text = print_module(&sample());
        assert!(text.contains("fn main (0)"), "{text}");
        assert!(text.contains("r0 = 41"), "{text}");
        assert!(text.contains("r0 = add r0, 1"), "{text}");
        assert!(text.contains("out #0, r0"), "{text}");
        assert!(text.contains("br.eq r0, 42 -> b1 else b1"), "{text}");
        assert!(text.contains("halt"), "{text}");
    }

    #[test]
    fn disassembly_marks_function_entries() {
        let p = lower(&sample()).unwrap();
        let text = disassemble(&p);
        assert!(text.starts_with("main:\n"), "{text}");
        assert!(text.contains("br.eq"), "{text}");
    }

    #[test]
    fn format_inst_covers_control_variants() {
        assert_eq!(
            format_inst(&Inst::Jmp {
                target: crate::types::Addr(5),
                slots: 2
            }),
            "jmp @000005 +2 slots"
        );
        assert_eq!(
            format_inst(&Inst::JmpTable {
                sel: Reg(1).into(),
                table: 3
            }),
            "jmp.table r1 via t3"
        );
        assert_eq!(
            format_inst(&Inst::Ret {
                val: Some(Reg(0).into())
            }),
            "ret r0"
        );
        assert_eq!(format_inst(&Inst::Halt), "halt");
    }
}
