//! # branchlab-ir
//!
//! Intermediate representation for the `branchlab` reproduction of
//! Hwu, Conte & Chang, *"Comparing Software and Hardware Schemes For
//! Reducing the Cost of Branches"* (ISCA 1989).
//!
//! The IR has two forms:
//!
//! * **CFG form** ([`Module`]/[`Function`]/[`Block`]): what the MiniC
//!   compiler produces and what profiling and trace selection analyze.
//! * **Linear form** ([`Program`]): laid-out code with resolved addresses,
//!   produced by [`lower_with_plan`] under a [`LayoutPlan`]. The plan is
//!   where the Forward Semantic lives: block order (trace layout), likely
//!   bits, and forward-slot reservation.
//!
//! Instruction granularity matches the paper's "compiler intermediate
//! instructions" (Table 1 counts those), and conditional branches fold in
//! their comparison, as the paper's machine model assumes.
//!
//! ```
//! use branchlab_ir::{FunctionBuilder, FuncId, Module, Op, Term, lower};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut fb = FunctionBuilder::new("main", FuncId(0), 0);
//! let r = fb.new_reg();
//! fb.push(Op::Mov { dst: r, src: 42i64.into() });
//! fb.push(Op::Out { src: r.into(), stream: 0i64.into() });
//! fb.terminate(Term::Halt);
//! let module = Module { funcs: vec![fb.finish()], globals_words: 0, globals_init: Vec::new(), entry: FuncId(0) };
//! branchlab_ir::validate_module(&module)?;
//! let program = lower(&module)?;
//! assert_eq!(program.len(), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod cfg;
mod linear;
mod lower;
mod printer;
mod types;
mod validate;

pub use cfg::{Block, Function, FunctionBuilder, Module, Op, Term};
pub use linear::{FuncInfo, Inst, InstMeta, JumpTable, Program};
pub use lower::{lower, lower_with_plan, LayoutPlan, LowerError};
pub use printer::{disassemble, print_module};
pub use types::{Addr, AluOp, BlockId, BranchId, Cond, FuncId, Operand, Reg};
pub use validate::{validate_module, ValidateError};
