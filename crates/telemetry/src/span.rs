//! RAII span timers.
//!
//! A [`Timeline`] collects named [`PhaseSpan`]s; [`Timeline::span`]
//! returns a [`SpanGuard`] that records wall-clock time (and an
//! optional caller-supplied work count, e.g. instructions executed)
//! when dropped. The timeline uses interior mutability so nested spans
//! can be open at once.

use std::cell::RefCell;
use std::time::{Duration, Instant};

use crate::json::JsonValue;

/// A completed, named timing span.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSpan {
    /// Phase name (`compile`, `natural_eval`, …).
    pub name: String,
    /// Wall-clock duration of the span.
    pub wall: Duration,
    /// Work units attributed to the span (instructions executed, items
    /// processed); 0 when the phase has no natural work counter.
    pub work: u64,
}

impl PhaseSpan {
    /// JSON object form, as embedded in run manifests.
    #[must_use]
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("name", self.name.as_str().into()),
            (
                "wall_us",
                JsonValue::from(self.wall.as_micros().min(u128::from(u64::MAX)) as u64),
            ),
            ("work", self.work.into()),
        ])
    }
}

/// An ordered collection of completed spans.
///
/// Spans are recorded in completion order, so a nested span appears
/// before the phase that contains it.
#[derive(Debug, Default)]
pub struct Timeline {
    spans: RefCell<Vec<PhaseSpan>>,
}

impl Timeline {
    /// An empty timeline.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a span; it is recorded when the returned guard drops.
    #[must_use]
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        SpanGuard {
            timeline: self,
            name: name.to_string(),
            start: Instant::now(),
            work: 0,
        }
    }

    /// Record an already-measured span.
    pub fn record(&self, span: PhaseSpan) {
        self.spans.borrow_mut().push(span);
    }

    /// All completed spans, in completion order.
    #[must_use]
    pub fn finish(self) -> Vec<PhaseSpan> {
        self.spans.into_inner()
    }

    /// Copy of the completed spans without consuming the timeline.
    #[must_use]
    pub fn spans(&self) -> Vec<PhaseSpan> {
        self.spans.borrow().clone()
    }
}

/// An open span; records into its [`Timeline`] on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    timeline: &'a Timeline,
    name: String,
    start: Instant,
    work: u64,
}

impl SpanGuard<'_> {
    /// Attribute `n` additional work units to this span.
    pub fn add_work(&mut self, n: u64) {
        self.work += n;
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.timeline.record(PhaseSpan {
            name: std::mem::take(&mut self.name),
            wall: self.start.elapsed(),
            work: self.work,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_in_completion_order() {
        let tl = Timeline::new();
        {
            let _outer = tl.span("outer");
            {
                let mut inner = tl.span("inner");
                inner.add_work(10);
            }
        }
        let spans = tl.finish();
        assert_eq!(
            spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            ["inner", "outer"]
        );
        assert_eq!(spans[0].work, 10);
        assert_eq!(spans[1].work, 0);
    }

    #[test]
    fn nested_guards_coexist() {
        let tl = Timeline::new();
        let a = tl.span("a");
        let b = tl.span("b");
        drop(a);
        drop(b);
        assert_eq!(tl.spans().len(), 2);
    }

    #[test]
    fn outer_wall_covers_inner() {
        let tl = Timeline::new();
        {
            let _outer = tl.span("outer");
            let _inner = tl.span("inner");
            std::thread::sleep(Duration::from_millis(2));
        }
        let spans = tl.finish();
        let get = |n: &str| spans.iter().find(|s| s.name == n).unwrap().wall;
        assert!(get("outer") >= get("inner"));
    }

    #[test]
    fn json_form_has_expected_keys() {
        let span = PhaseSpan {
            name: "compile".into(),
            wall: Duration::from_micros(1234),
            work: 99,
        };
        let v = span.to_json_value();
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("compile"));
        assert_eq!(v.get("wall_us").and_then(JsonValue::as_int), Some(1234));
        assert_eq!(v.get("work").and_then(JsonValue::as_int), Some(99));
    }
}
