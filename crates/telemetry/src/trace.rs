//! Hierarchical request tracing: per-request span trees, a flight
//! recorder holding the last N completed traces, and a Chrome
//! trace-event exporter.
//!
//! The [`Timeline`](crate::span::Timeline) in [`span`](crate::span)
//! answers "how long did each phase of this benchmark take" as a flat
//! list. This module answers the serving-tier question: for *one
//! request*, which parent span contained which child spans, on which
//! thread, doing how much work — the way microarchitecture papers
//! attribute cycles to pipeline stages.
//!
//! * [`TraceId`] / [`SpanId`] — identifiers; trace ids are drawn from
//!   a process-wide SplitMix64 stream (or supplied by the client via
//!   `X-Branchlab-Trace-Id`), span ids are sequential per trace.
//! * [`TraceContext`] — the shared handle for one request's trace. It
//!   is `Clone + Send + Sync` (an `Arc` around the span collector), so
//!   a connection thread can open the root span while pool workers and
//!   sweep shards record children of it concurrently.
//! * [`SpanHandle`] — an open span; records itself (with monotonic
//!   start/duration ticks and work counts) into the trace on drop.
//!   [`SpanHandle::link`] yields a [`SpanLink`] that crosses thread
//!   and API boundaries without transferring ownership of the span.
//! * [`FlightRecorder`] — a bounded ring of the last N completed
//!   [`RequestTrace`]s. Writers take one slot lock each (never a
//!   global one), so recording stays cheap under concurrency and old
//!   traces are evicted by overwrite, never by allocation.
//! * [`chrome_trace`] / [`phases_chrome_trace`] — export recorded
//!   traces (or flat [`PhaseSpan`] timelines) as Chrome
//!   trace-event JSON, openable in Perfetto / `chrome://tracing`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::json::JsonValue;
use crate::rng::Rng;
use crate::span::PhaseSpan;

/// Identifier of one request trace (16 lowercase hex digits on the
/// wire, e.g. in `X-Branchlab-Trace-Id`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Draw a fresh process-unique id from the global SplitMix64
    /// stream. The stream position is advanced atomically and the
    /// SplitMix64 output function is a bijection, so two calls can
    /// never collide within a process.
    #[must_use]
    pub fn fresh() -> TraceId {
        static STATE: OnceLock<AtomicU64> = OnceLock::new();
        let state = STATE.get_or_init(|| {
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_nanos() as u64);
            AtomicU64::new(nanos ^ (std::process::id() as u64).rotate_left(32))
        });
        let v = Rng::seed_from_u64(state.fetch_add(1, Ordering::Relaxed)).next_u64();
        TraceId(if v == 0 { 1 } else { v })
    }

    /// Parse a 1–16 hex digit id, as accepted from clients. Zero and
    /// malformed strings are rejected (the server then assigns its
    /// own id).
    #[must_use]
    pub fn parse(s: &str) -> Option<TraceId> {
        let s = s.trim();
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        match u64::from_str_radix(s, 16) {
            Ok(0) | Err(_) => None,
            Ok(v) => Some(TraceId(v)),
        }
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identifier of one span within its trace (sequential from 1; the
/// root span of a request is conventionally span 1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// One completed span: a named interval on the trace's monotonic
/// clock, linked to its parent, carrying a work count (events scored,
/// sweep points planned, bytes rendered — whatever the span's owner
/// attributed) and optional numeric arguments.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// This span's id.
    pub id: SpanId,
    /// The containing span, `None` for the root.
    pub parent: Option<SpanId>,
    /// Span name (`request`, `queue_wait`, `score_shard`, …).
    pub name: String,
    /// Start, in microseconds since the trace opened.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Work units attributed to the span (0 when it has none).
    pub work: u64,
    /// Extra numeric attributes (`("points", 12)`, `("status", 200)`).
    pub args: Vec<(&'static str, u64)>,
}

impl Span {
    /// End offset in microseconds since the trace opened.
    #[must_use]
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.dur_us)
    }

    /// The value of a numeric argument, if set.
    #[must_use]
    pub fn arg_value(&self, key: &str) -> Option<u64> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// JSON object form (flat; parent linkage by id).
    #[must_use]
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields = vec![
            ("span", JsonValue::from(self.id.0)),
            (
                "parent",
                self.parent
                    .map_or(JsonValue::Null, |p| JsonValue::from(p.0)),
            ),
            ("name", self.name.as_str().into()),
            ("start_us", self.start_us.into()),
            ("dur_us", self.dur_us.into()),
            ("work", self.work.into()),
        ];
        for (k, v) in &self.args {
            fields.push((k, (*v).into()));
        }
        JsonValue::obj(fields)
    }
}

struct TraceInner {
    id: TraceId,
    label: Mutex<String>,
    epoch: Instant,
    wall_start_us: u64,
    next_span: AtomicU64,
    spans: Mutex<Vec<Span>>,
}

/// Shared handle for one request's trace. Cloning is cheap (`Arc`);
/// clones and [`SpanLink`]s may live on any thread and record spans
/// concurrently.
#[derive(Clone)]
pub struct TraceContext {
    inner: Arc<TraceInner>,
}

impl std::fmt::Debug for TraceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TraceContext({})", self.inner.id)
    }
}

impl Default for TraceContext {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceContext {
    /// A new trace with a fresh process-unique id.
    #[must_use]
    pub fn new() -> Self {
        Self::with_id(TraceId::fresh())
    }

    /// A new trace under a caller-supplied id (e.g. from the
    /// `X-Branchlab-Trace-Id` request header).
    #[must_use]
    pub fn with_id(id: TraceId) -> Self {
        TraceContext {
            inner: Arc::new(TraceInner {
                id,
                label: Mutex::new(String::new()),
                epoch: Instant::now(),
                wall_start_us: SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map_or(0, |d| d.as_micros().min(u128::from(u64::MAX)) as u64),
                next_span: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
            }),
        }
    }

    /// This trace's id.
    #[must_use]
    pub fn id(&self) -> TraceId {
        self.inner.id
    }

    /// Label the trace for summaries (`"POST /v1/sweep"`).
    pub fn set_label(&self, label: &str) {
        *self
            .inner
            .label
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = label.to_string();
    }

    /// Microseconds since the trace opened (the monotonic span clock).
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        self.inner
            .epoch
            .elapsed()
            .as_micros()
            .min(u128::from(u64::MAX)) as u64
    }

    /// Open the root span (no parent).
    #[must_use]
    pub fn root(&self, name: &str) -> SpanHandle {
        self.open(None, name)
    }

    fn open(&self, parent: Option<SpanId>, name: &str) -> SpanHandle {
        SpanHandle {
            ctx: self.clone(),
            id: SpanId(self.inner.next_span.fetch_add(1, Ordering::Relaxed)),
            parent,
            name: name.to_string(),
            start_us: self.elapsed_us(),
            work: 0,
            args: Vec::new(),
        }
    }

    fn record(&self, span: Span) {
        self.inner
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(span);
    }

    /// Snapshot the completed spans as a [`RequestTrace`] (spans in
    /// start order; total = latest span end). Spans still open — e.g.
    /// a worker that outlived the request's deadline — are simply not
    /// in the snapshot.
    #[must_use]
    pub fn finish(&self) -> RequestTrace {
        let mut spans = self
            .inner
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        spans.sort_by_key(|s| (s.start_us, s.id.0));
        RequestTrace {
            id: self.inner.id,
            label: self
                .inner
                .label
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone(),
            wall_start_us: self.inner.wall_start_us,
            total_us: spans.iter().map(Span::end_us).max().unwrap_or(0),
            spans,
        }
    }
}

/// An open span; records into its trace on drop. `Send`, so it can be
/// opened on one thread (queue admission) and closed on another
/// (worker pickup).
#[derive(Debug)]
pub struct SpanHandle {
    ctx: TraceContext,
    id: SpanId,
    parent: Option<SpanId>,
    name: String,
    start_us: u64,
    work: u64,
    args: Vec<(&'static str, u64)>,
}

impl SpanHandle {
    /// This span's id.
    #[must_use]
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// The trace this span belongs to.
    #[must_use]
    pub fn trace(&self) -> &TraceContext {
        &self.ctx
    }

    /// Microseconds since this span opened.
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        self.ctx.elapsed_us().saturating_sub(self.start_us)
    }

    /// Attribute `n` additional work units.
    pub fn add_work(&mut self, n: u64) {
        self.work = self.work.saturating_add(n);
    }

    /// Attach a numeric argument (rendered into the span's JSON and
    /// Chrome-trace `args`). Setting a key again overwrites its value,
    /// so incrementally-updated arguments stay single-valued.
    pub fn arg(&mut self, key: &'static str, value: u64) {
        match self.args.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => self.args.push((key, value)),
        }
    }

    /// The current value of a numeric argument, if set.
    #[must_use]
    pub fn arg_value(&self, key: &str) -> Option<u64> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// Open a child span.
    #[must_use]
    pub fn child(&self, name: &str) -> SpanHandle {
        self.ctx.open(Some(self.id), name)
    }

    /// A cloneable, `Send` reference to this span for opening children
    /// from other threads or deeper layers without moving the handle.
    #[must_use]
    pub fn link(&self) -> SpanLink {
        SpanLink {
            ctx: self.ctx.clone(),
            parent: self.id,
        }
    }
}

impl Drop for SpanHandle {
    fn drop(&mut self) {
        self.ctx.record(Span {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            start_us: self.start_us,
            dur_us: self.ctx.elapsed_us().saturating_sub(self.start_us),
            work: self.work,
            args: std::mem::take(&mut self.args),
        });
    }
}

/// A parent-span reference that crosses threads and API layers:
/// cheap to clone, `Send + Sync`, opens children of the span it was
/// linked from.
#[derive(Clone, Debug)]
pub struct SpanLink {
    ctx: TraceContext,
    parent: SpanId,
}

impl SpanLink {
    /// Open a child of the linked span.
    #[must_use]
    pub fn child(&self, name: &str) -> SpanHandle {
        self.ctx.open(Some(self.parent), name)
    }

    /// The trace the linked span belongs to.
    #[must_use]
    pub fn trace(&self) -> &TraceContext {
        &self.ctx
    }
}

/// One completed request trace, as stored in the flight recorder and
/// served by `/debug/traces/<id>`.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// The trace id.
    pub id: TraceId,
    /// Free-form label (`"POST /v1/sweep"`).
    pub label: String,
    /// Wall-clock trace open time, microseconds since the Unix epoch
    /// (anchors Chrome-trace timestamps; spans themselves use the
    /// monotonic clock).
    pub wall_start_us: u64,
    /// Latest span end, microseconds since trace open.
    pub total_us: u64,
    /// Completed spans in start order.
    pub spans: Vec<Span>,
}

impl RequestTrace {
    /// One-line summary object (for `/debug/traces` listings).
    #[must_use]
    pub fn summary_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("id", self.id.to_string().into()),
            ("label", self.label.as_str().into()),
            ("total_us", self.total_us.into()),
            ("spans", self.spans.len().into()),
        ])
    }

    /// Full JSON form: flat span list plus the nested span tree.
    #[must_use]
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("id", self.id.to_string().into()),
            ("label", self.label.as_str().into()),
            ("wall_start_us", self.wall_start_us.into()),
            ("total_us", self.total_us.into()),
            (
                "spans",
                JsonValue::Arr(self.spans.iter().map(Span::to_json_value).collect()),
            ),
            ("tree", self.span_tree()),
        ])
    }

    /// The spans as a nested tree (children arrays under each span).
    /// Orphans — spans whose parent never closed — surface at the
    /// root level rather than disappearing.
    #[must_use]
    pub fn span_tree(&self) -> JsonValue {
        let present: std::collections::HashSet<u64> = self.spans.iter().map(|s| s.id.0).collect();
        let roots: Vec<&Span> = self
            .spans
            .iter()
            .filter(|s| s.parent.is_none_or(|p| !present.contains(&p.0)))
            .collect();
        JsonValue::Arr(roots.iter().map(|s| self.tree_node(s)).collect())
    }

    fn tree_node(&self, span: &Span) -> JsonValue {
        let children: Vec<JsonValue> = self
            .spans
            .iter()
            .filter(|s| s.parent == Some(span.id))
            .map(|s| self.tree_node(s))
            .collect();
        let mut node = span.to_json_value();
        if let JsonValue::Obj(fields) = &mut node {
            fields.push(("children".to_string(), JsonValue::Arr(children)));
        }
        node
    }
}

/// A bounded ring of the last N completed traces.
///
/// Each slot has its own lock and the write cursor is a single atomic
/// fetch-add, so concurrent recorders contend only when they hash to
/// the same slot; readers lock one slot at a time. Overflow evicts the
/// oldest trace by overwrite.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<Arc<RequestTrace>>>>,
    cursor: AtomicUsize,
}

impl FlightRecorder {
    /// A recorder holding up to `capacity` traces (floored at 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Slot count.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total traces ever recorded (recorded − capacity have been
    /// evicted, when positive).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed) as u64
    }

    /// Record one completed trace, evicting the oldest if full.
    pub fn record(&self, trace: RequestTrace) -> Arc<RequestTrace> {
        let trace = Arc::new(trace);
        let n = self.cursor.fetch_add(1, Ordering::Relaxed);
        *self.slots[n % self.slots.len()]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Arc::clone(&trace));
        trace
    }

    /// Every retained trace, newest first.
    #[must_use]
    pub fn recent(&self) -> Vec<Arc<RequestTrace>> {
        let next = self.cursor.load(Ordering::Relaxed);
        let cap = self.slots.len();
        let mut out = Vec::with_capacity(cap.min(next));
        // Walk backwards from the most recently written slot.
        for back in 1..=cap.min(next) {
            let slot = (next + cap - back) % cap;
            if let Some(trace) = self.slots[slot]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .as_ref()
            {
                out.push(Arc::clone(trace));
            }
        }
        out
    }

    /// Look a retained trace up by id (newest match wins).
    #[must_use]
    pub fn find(&self, id: TraceId) -> Option<Arc<RequestTrace>> {
        self.recent().into_iter().find(|t| t.id == id)
    }

    /// The `k` slowest retained traces, longest first.
    #[must_use]
    pub fn slowest(&self, k: usize) -> Vec<Arc<RequestTrace>> {
        let mut all = self.recent();
        all.sort_by_key(|t| std::cmp::Reverse(t.total_us));
        all.truncate(k);
        all
    }
}

/// Export recorded traces as a Chrome trace-event document
/// (`{"traceEvents": [...]}`), openable in Perfetto or
/// `chrome://tracing`. Each trace becomes one "process" (pid = its
/// position, newest-first input order preserved) with complete (`X`)
/// events whose timestamps are anchored at the trace's wall-clock
/// start, so concurrent requests line up on a shared timeline.
#[must_use]
pub fn chrome_trace(traces: &[Arc<RequestTrace>]) -> JsonValue {
    let mut events = Vec::new();
    for (i, trace) in traces.iter().enumerate() {
        let pid = i as u64 + 1;
        events.push(JsonValue::obj(vec![
            ("name", "process_name".into()),
            ("ph", "M".into()),
            ("pid", pid.into()),
            ("tid", 0u64.into()),
            (
                "args",
                JsonValue::obj(vec![(
                    "name",
                    format!("{} {}", trace.id, trace.label).into(),
                )]),
            ),
        ]));
        for span in &trace.spans {
            let mut args = vec![
                ("trace_id", JsonValue::from(trace.id.to_string())),
                ("span", span.id.0.into()),
                (
                    "parent",
                    span.parent.map_or(JsonValue::Null, |p| p.0.into()),
                ),
                ("work", span.work.into()),
            ];
            for (k, v) in &span.args {
                args.push((k, (*v).into()));
            }
            events.push(JsonValue::obj(vec![
                ("name", span.name.as_str().into()),
                ("cat", "span".into()),
                ("ph", "X".into()),
                ("pid", pid.into()),
                ("tid", 0u64.into()),
                (
                    "ts",
                    trace.wall_start_us.saturating_add(span.start_us).into(),
                ),
                ("dur", span.dur_us.into()),
                ("args", JsonValue::obj(args)),
            ]));
        }
    }
    JsonValue::obj(vec![
        ("displayTimeUnit", "ms".into()),
        ("traceEvents", JsonValue::Arr(events)),
    ])
}

/// Export flat [`PhaseSpan`] groups (one per benchmark / phase
/// timeline) as a Chrome trace-event document. Phase spans carry
/// durations but no start stamps, so each group is laid out
/// sequentially in record order on its own process row — a faithful
/// flame view of where the wall-clock went.
#[must_use]
pub fn phases_chrome_trace(tool: &str, groups: &[(String, Vec<PhaseSpan>)]) -> JsonValue {
    let mut events = Vec::new();
    for (i, (name, phases)) in groups.iter().enumerate() {
        let pid = i as u64 + 1;
        events.push(JsonValue::obj(vec![
            ("name", "process_name".into()),
            ("ph", "M".into()),
            ("pid", pid.into()),
            ("tid", 0u64.into()),
            (
                "args",
                JsonValue::obj(vec![("name", format!("{tool}: {name}").into())]),
            ),
        ]));
        let mut ts = 0u64;
        for phase in phases {
            let dur = phase.wall.as_micros().min(u128::from(u64::MAX)) as u64;
            events.push(JsonValue::obj(vec![
                ("name", phase.name.as_str().into()),
                ("cat", "phase".into()),
                ("ph", "X".into()),
                ("pid", pid.into()),
                ("tid", 0u64.into()),
                ("ts", ts.into()),
                ("dur", dur.into()),
                ("args", JsonValue::obj(vec![("work", phase.work.into())])),
            ]));
            ts = ts.saturating_add(dur);
        }
    }
    JsonValue::obj(vec![
        ("displayTimeUnit", "ms".into()),
        ("traceEvents", JsonValue::Arr(events)),
    ])
}

/// Validate that `text` parses as a Chrome trace-event document:
/// a `traceEvents` array whose entries all carry `name`/`ph`/`pid`,
/// with `ts`+`dur` on every complete (`X`) event. Returns the event
/// names seen. Used by the test suite and the CI smoke on every
/// exported `.trace.json`.
///
/// # Errors
/// A human-readable description of the first structural problem.
pub fn validate_chrome_trace(text: &str) -> Result<Vec<String>, String> {
    let doc = crate::json::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| "missing `traceEvents` array".to_string())?;
    let mut names = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing `name`"))?;
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        if ev.get("pid").and_then(JsonValue::as_int).is_none() {
            return Err(format!("event {i}: missing integer `pid`"));
        }
        if ph == "X"
            && (ev.get("ts").and_then(JsonValue::as_int).is_none()
                || ev.get("dur").and_then(JsonValue::as_int).is_none())
        {
            return Err(format!("event {i}: `X` event without integer ts/dur"));
        }
        names.push(name.to_string());
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn trace_ids_are_unique_and_roundtrip() {
        let a = TraceId::fresh();
        let b = TraceId::fresh();
        assert_ne!(a, b);
        assert_eq!(TraceId::parse(&a.to_string()), Some(a));
        assert_eq!(TraceId::parse("dead_beef"), None);
        assert_eq!(TraceId::parse(""), None);
        assert_eq!(TraceId::parse("0"), None);
        assert_eq!(TraceId::parse("00112233445566778"), None, "17 digits");
        assert_eq!(TraceId::parse("ff"), Some(TraceId(255)));
    }

    #[test]
    fn parent_child_ordering_and_linkage() {
        let ctx = TraceContext::with_id(TraceId(7));
        {
            let root = ctx.root("request");
            {
                let parse = root.child("parse");
                drop(parse);
                let mut compute = root.child("compute");
                compute.add_work(100);
                let inner = compute.child("score_shard");
                drop(inner);
            }
        }
        let trace = ctx.finish();
        assert_eq!(trace.id, TraceId(7));
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        // Start order: root opened first, then its children in sequence.
        assert_eq!(names, ["request", "parse", "compute", "score_shard"]);
        let by_name = |n: &str| trace.spans.iter().find(|s| s.name == n).unwrap();
        let root = by_name("request");
        assert_eq!(root.parent, None);
        assert_eq!(by_name("parse").parent, Some(root.id));
        let compute = by_name("compute");
        assert_eq!(compute.parent, Some(root.id));
        assert_eq!(compute.work, 100);
        assert_eq!(by_name("score_shard").parent, Some(compute.id));
        // Parent intervals cover their children.
        assert!(root.start_us <= compute.start_us);
        assert!(root.end_us() >= compute.end_us());
        assert_eq!(trace.total_us, root.end_us());
    }

    #[test]
    fn cross_thread_child_spans_land_in_the_same_trace() {
        let ctx = TraceContext::new();
        let root = ctx.root("request");
        let link = root.link();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let link = link.clone();
                std::thread::spawn(move || {
                    let mut s = link.child("worker");
                    s.add_work(i + 1);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(root);
        let trace = ctx.finish();
        let workers: Vec<&Span> = trace.spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 4);
        let root_id = trace.spans.iter().find(|s| s.name == "request").unwrap().id;
        assert!(workers.iter().all(|s| s.parent == Some(root_id)));
        let total_work: u64 = workers.iter().map(|s| s.work).sum();
        assert_eq!(total_work, 1 + 2 + 3 + 4);
        // Span ids are unique within the trace.
        let mut ids: Vec<u64> = trace.spans.iter().map(|s| s.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), trace.spans.len());
    }

    fn quick_trace(id: u64, dur_us: u64) -> RequestTrace {
        let ctx = TraceContext::with_id(TraceId(id));
        ctx.set_label("test");
        drop(ctx.root("request"));
        let mut t = ctx.finish();
        t.total_us = dur_us; // deterministic duration for ranking tests
        t
    }

    #[test]
    fn ring_buffer_evicts_oldest_under_overflow() {
        let rec = FlightRecorder::new(4);
        for i in 1..=10u64 {
            rec.record(quick_trace(i, i));
        }
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.capacity(), 4);
        let recent = rec.recent();
        let ids: Vec<u64> = recent.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, [10, 9, 8, 7], "newest first, oldest evicted");
        assert!(rec.find(TraceId(9)).is_some());
        assert!(rec.find(TraceId(3)).is_none(), "evicted trace is gone");
        let slow = rec.slowest(2);
        assert_eq!(slow.iter().map(|t| t.total_us).collect::<Vec<_>>(), [10, 9]);
    }

    #[test]
    fn ring_buffer_is_safe_under_concurrent_recording() {
        let rec = Arc::new(FlightRecorder::new(8));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        rec.record(quick_trace(t * 100 + i + 1, i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.recorded(), 200);
        assert_eq!(rec.recent().len(), 8);
    }

    #[test]
    fn chrome_export_escapes_span_names() {
        let ctx = TraceContext::with_id(TraceId(0xabc));
        ctx.set_label("quote\" and \\slash\nnewline");
        drop(ctx.root("span \"with\" \\ special\n\tchars"));
        let trace = Arc::new(ctx.finish());
        let text = chrome_trace(&[trace]).to_json();
        // The exported document must re-parse, with the hostile name
        // intact after the escape round-trip.
        let names = validate_chrome_trace(&text).unwrap();
        assert!(names.contains(&"span \"with\" \\ special\n\tchars".to_string()));
    }

    #[test]
    fn chrome_export_structure_is_valid() {
        let ctx = TraceContext::new();
        {
            let root = ctx.root("request");
            let mut child = root.child("compute");
            child.arg("points", 12);
            child.add_work(5000);
        }
        let trace = Arc::new(ctx.finish());
        let doc = chrome_trace(&[Arc::clone(&trace)]);
        let names = validate_chrome_trace(&doc.to_json()).unwrap();
        assert!(names.contains(&"request".to_string()));
        assert!(names.contains(&"compute".to_string()));
        let events = doc.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
        let compute = events
            .iter()
            .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("compute"))
            .unwrap();
        let args = compute.get("args").unwrap();
        assert_eq!(args.get("points").and_then(JsonValue::as_int), Some(12));
        assert_eq!(args.get("work").and_then(JsonValue::as_int), Some(5000));
    }

    #[test]
    fn phases_export_lays_spans_out_sequentially() {
        let phases = vec![
            PhaseSpan {
                name: "compile".into(),
                wall: Duration::from_micros(100),
                work: 1,
            },
            PhaseSpan {
                name: "score".into(),
                wall: Duration::from_micros(250),
                work: 2,
            },
        ];
        let doc = phases_chrome_trace("replay_bench", &[("wc".to_string(), phases)]);
        validate_chrome_trace(&doc.to_json()).unwrap();
        let events = doc.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
        let ts = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(JsonValue::as_str) == Some(name))
                .and_then(|e| e.get("ts"))
                .and_then(JsonValue::as_int)
                .unwrap()
        };
        assert_eq!(ts("compile"), 0);
        assert_eq!(ts("score"), 100, "second phase starts after the first");
    }

    #[test]
    fn span_tree_nests_and_surfaces_orphans() {
        let ctx = TraceContext::with_id(TraceId(1));
        let root = ctx.root("request");
        drop(root.child("parse"));
        drop(root);
        let trace = ctx.finish();
        let tree = trace.span_tree();
        let roots = tree.as_arr().unwrap();
        assert_eq!(roots.len(), 1);
        let children = roots[0]
            .get("children")
            .and_then(JsonValue::as_arr)
            .unwrap();
        assert_eq!(
            children[0].get("name").and_then(JsonValue::as_str),
            Some("parse")
        );

        // A span whose parent never closed surfaces at the root level.
        let orphaned = RequestTrace {
            id: TraceId(2),
            label: String::new(),
            wall_start_us: 0,
            total_us: 5,
            spans: vec![Span {
                id: SpanId(9),
                parent: Some(SpanId(1)),
                name: "stray".into(),
                start_us: 0,
                dur_us: 5,
                work: 0,
                args: Vec::new(),
            }],
        };
        assert_eq!(orphaned.span_tree().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn finish_is_a_snapshot_late_spans_do_not_corrupt_it() {
        let ctx = TraceContext::new();
        drop(ctx.root("request"));
        let snap = ctx.finish();
        assert_eq!(snap.spans.len(), 1);
        // A straggler span recorded after the snapshot (deadline-expired
        // worker) must not affect the already-taken snapshot.
        drop(ctx.root("straggler"));
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(ctx.finish().spans.len(), 2);
    }
}
