//! A minimal JSON value type with a writer and a strict parser.
//!
//! Just enough JSON for the telemetry layer: the metrics snapshot's
//! JSON-lines rendering, the run manifest, and the tests that parse
//! both back to verify round-tripping. Objects preserve insertion
//! order so rendered manifests diff cleanly.

use std::fmt::Write as _;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; JSON numbers without `.`/`e` parse here).
    Int(i64),
    /// A floating-point number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Build an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> Self {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            JsonValue::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a float (integers widen).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(n) => Some(*n as f64),
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close) = match indent {
            Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth)),
            None => ("", String::new(), String::new()),
        };
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Num(x) => {
                if x.is_finite() {
                    // Guarantee a `.` or `e` so the value re-parses as Num.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/inf
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}
impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}
impl From<i64> for JsonValue {
    fn from(n: i64) -> Self {
        JsonValue::Int(n)
    }
}
impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        i64::try_from(n).map_or(JsonValue::Num(n as f64), JsonValue::Int)
    }
}
impl From<u32> for JsonValue {
    fn from(n: u32) -> Self {
        JsonValue::Int(i64::from(n))
    }
}
impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::from(n as u64)
    }
}
impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Num(x)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}
impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
/// Returns [`JsonError`] on malformed input.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        let mut integral = true;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(JsonValue::Int(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| JsonError {
                message: format!("bad number `{text}`"),
                offset: start,
            })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let doc = JsonValue::obj(vec![
            ("name", "wc".into()),
            ("runs", JsonValue::Int(4)),
            ("accuracy", JsonValue::Num(0.923)),
            ("ok", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "phases",
                JsonValue::Arr(vec![JsonValue::obj(vec![
                    ("name", "compile".into()),
                    ("wall_us", JsonValue::Int(1234)),
                ])]),
            ),
        ]);
        for text in [doc.to_json(), doc.to_json_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc, "{text}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let doc = JsonValue::Str("a\"b\\c\nd\te\u{1}f".to_string());
        assert_eq!(parse(&doc.to_json()).unwrap(), doc);
    }

    #[test]
    fn whole_floats_stay_floats() {
        let text = JsonValue::Num(2.0).to_json();
        assert_eq!(text, "2.0");
        assert_eq!(parse(&text).unwrap(), JsonValue::Num(2.0));
    }

    #[test]
    fn integers_stay_exact() {
        let big = i64::MAX - 7;
        let text = JsonValue::Int(big).to_json();
        assert_eq!(parse(&text).unwrap().as_int(), Some(big));
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, {"b": null}], "c": "x", "d": -3e2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("d").unwrap().as_f64(), Some(-300.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
