//! # branchlab-telemetry
//!
//! Zero-external-dependency observability for the branchlab stack
//! (the build must work without crates.io access, so everything here is
//! `std`-only):
//!
//! * [`metrics`] — a registry of named monotonic [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket [`Histogram`]s with cheap atomic
//!   increments, and a [`Snapshot`] that renders to fixed-width text,
//!   JSON lines, and Prometheus exposition text.
//! * [`span`] — RAII span timers ([`Timeline`]/[`SpanGuard`]) used to
//!   break a benchmark run into compile/profile/evaluate/… phases.
//! * [`trace`] — hierarchical request tracing: parent-linked spans
//!   shared across threads ([`TraceContext`]/[`SpanHandle`]), a
//!   bounded [`FlightRecorder`] ring of recent request traces, and a
//!   Chrome trace-event / Perfetto exporter ([`chrome_trace`]).
//! * [`sink`] — the [`TelemetrySink`] trait behind which the branch
//!   predictors publish hit/miss/evict/alias events, the zero-cost
//!   [`NoopSink`], and the per-branch-site [`SiteProbe`] collector.
//! * [`manifest`] — the [`RunManifest`] written next to experiment
//!   output so every number in EXPERIMENTS.md can be traced back to a
//!   (config, seed, git revision, per-phase timing) record.
//! * [`json`] — a minimal JSON value type with a writer and a parser,
//!   used by the snapshot/manifest serializers and their round-trip
//!   tests.
//! * [`rng`] — a seedable SplitMix64 PRNG standing in for the `rand`
//!   crate in workload input generation and randomized tests.

#![warn(missing_docs)]

pub mod json;
pub mod manifest;
pub mod metrics;
pub mod rng;
pub mod sink;
pub mod span;
pub mod trace;

pub use json::JsonValue;
pub use manifest::RunManifest;
pub use metrics::{prometheus_name, Counter, Gauge, Histogram, MetricsRegistry, Snapshot};
pub use rng::Rng;
pub use sink::{NoopSink, ProbeEvent, ProbeKind, SiteCounters, SiteProbe, TelemetrySink};
pub use span::{PhaseSpan, SpanGuard, Timeline};
pub use trace::{
    chrome_trace, phases_chrome_trace, validate_chrome_trace, FlightRecorder, RequestTrace, Span,
    SpanHandle, SpanId, SpanLink, TraceContext, TraceId,
};
