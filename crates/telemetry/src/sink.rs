//! Predictor probe events and sinks.
//!
//! Branch predictors are generic over a [`TelemetrySink`]; the default
//! [`NoopSink`] has an empty `emit` and `enabled() == false`, so the
//! uninstrumented path monomorphizes away entirely. The harness plugs
//! in a [`SiteProbe`] to tally per-branch-site outcomes and structural
//! BTB events (hits, misses, evictions, aliasing).

use std::collections::HashMap;

use crate::json::JsonValue;

/// What happened at a branch site.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ProbeKind {
    /// The site was resident in the buffer at predict time.
    Hit,
    /// The site was absent from the buffer at predict time.
    Miss,
    /// This site's entry was evicted (LRU victim of another insert).
    Evict,
    /// The buffered target differed from the actual taken target.
    Alias,
    /// The branch resolved taken.
    Taken,
    /// The branch resolved not taken.
    NotTaken,
    /// The prediction was wrong (direction or target).
    Mispredict,
}

/// One probe event, attributed to a static branch site.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ProbeEvent {
    /// Static branch site (instruction address).
    pub site: u32,
    /// What happened.
    pub kind: ProbeKind,
}

/// Receives predictor probe events.
///
/// `Send` is a supertrait so predictors generic over a sink stay `Send`
/// and can be scored on sweep worker threads; every sink is plain owned
/// data (or a `&mut` to it), so the bound costs implementors nothing.
pub trait TelemetrySink: Send {
    /// Whether events are being collected. Callers may skip building
    /// events when this is `false`; implementations should make it a
    /// constant or a cheap flag read.
    fn enabled(&self) -> bool;

    /// Record one event.
    fn emit(&mut self, event: ProbeEvent);
}

/// A sink that discards everything; `enabled()` is `false`, so
/// instrumentation guarded on it compiles to nothing measurable.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn emit(&mut self, _event: ProbeEvent) {}
}

/// Per-site event tallies.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SiteCounters {
    /// Buffer hits at predict time.
    pub hits: u64,
    /// Buffer misses at predict time.
    pub misses: u64,
    /// Times this site's entry was evicted (it was the LRU victim of
    /// another site's insert).
    pub evicts: u64,
    /// Target-aliasing events.
    pub aliases: u64,
    /// Taken resolutions.
    pub taken: u64,
    /// Not-taken resolutions.
    pub not_taken: u64,
    /// Mispredictions.
    pub mispredicts: u64,
}

impl SiteCounters {
    /// Dynamic executions observed (taken + not-taken resolutions).
    #[must_use]
    pub fn executions(&self) -> u64 {
        self.taken + self.not_taken
    }

    fn bump(&mut self, kind: ProbeKind) {
        match kind {
            ProbeKind::Hit => self.hits += 1,
            ProbeKind::Miss => self.misses += 1,
            ProbeKind::Evict => self.evicts += 1,
            ProbeKind::Alias => self.aliases += 1,
            ProbeKind::Taken => self.taken += 1,
            ProbeKind::NotTaken => self.not_taken += 1,
            ProbeKind::Mispredict => self.mispredicts += 1,
        }
    }
}

/// Collects [`ProbeEvent`]s into per-site [`SiteCounters`].
///
/// Carries a runtime `enabled` flag so a single harness code path can
/// serve both instrumented and plain runs; disabled probes never touch
/// the map.
#[derive(Clone, Debug, Default)]
pub struct SiteProbe {
    enabled: bool,
    sites: HashMap<u32, SiteCounters>,
}

impl SiteProbe {
    /// A probe that records events.
    #[must_use]
    pub fn enabled() -> Self {
        SiteProbe {
            enabled: true,
            sites: HashMap::new(),
        }
    }

    /// A probe that ignores events (same type, no collection).
    #[must_use]
    pub fn disabled() -> Self {
        SiteProbe::default()
    }

    /// Per-site tallies collected so far.
    #[must_use]
    pub fn sites(&self) -> &HashMap<u32, SiteCounters> {
        &self.sites
    }

    /// Sum of one counter across all sites.
    #[must_use]
    pub fn total(&self, kind: ProbeKind) -> u64 {
        self.sites
            .values()
            .map(|c| match kind {
                ProbeKind::Hit => c.hits,
                ProbeKind::Miss => c.misses,
                ProbeKind::Evict => c.evicts,
                ProbeKind::Alias => c.aliases,
                ProbeKind::Taken => c.taken,
                ProbeKind::NotTaken => c.not_taken,
                ProbeKind::Mispredict => c.mispredicts,
            })
            .sum()
    }

    /// The `k` sites with the most mispredictions, descending; ties
    /// break on site address for determinism.
    #[must_use]
    pub fn top_mispredicted(&self, k: usize) -> Vec<(u32, SiteCounters)> {
        let mut sites: Vec<(u32, SiteCounters)> =
            self.sites.iter().map(|(&s, &c)| (s, c)).collect();
        sites.sort_by(|a, b| b.1.mispredicts.cmp(&a.1.mispredicts).then(a.0.cmp(&b.0)));
        sites.truncate(k);
        sites
    }

    /// Merge another probe's tallies into this one.
    pub fn merge(&mut self, other: &SiteProbe) {
        for (&site, c) in &other.sites {
            let mine = self.sites.entry(site).or_default();
            mine.hits += c.hits;
            mine.misses += c.misses;
            mine.evicts += c.evicts;
            mine.aliases += c.aliases;
            mine.taken += c.taken;
            mine.not_taken += c.not_taken;
            mine.mispredicts += c.mispredicts;
        }
    }

    /// JSON summary: totals plus the top-`k` mispredicting sites, as
    /// embedded in run manifests.
    #[must_use]
    pub fn to_json_value(&self, k: usize) -> JsonValue {
        let top = self
            .top_mispredicted(k)
            .into_iter()
            .map(|(site, c)| {
                JsonValue::obj(vec![
                    ("site", JsonValue::from(u64::from(site))),
                    ("executions", c.executions().into()),
                    ("mispredicts", c.mispredicts.into()),
                    ("hits", c.hits.into()),
                    ("misses", c.misses.into()),
                    ("evicts", c.evicts.into()),
                    ("aliases", c.aliases.into()),
                ])
            })
            .collect();
        JsonValue::obj(vec![
            ("sites", JsonValue::from(self.sites.len())),
            ("hits", self.total(ProbeKind::Hit).into()),
            ("misses", self.total(ProbeKind::Miss).into()),
            ("evicts", self.total(ProbeKind::Evict).into()),
            ("aliases", self.total(ProbeKind::Alias).into()),
            ("mispredicts", self.total(ProbeKind::Mispredict).into()),
            ("top_mispredicted", JsonValue::Arr(top)),
        ])
    }
}

impl TelemetrySink for SiteProbe {
    #[inline]
    fn enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    fn emit(&mut self, event: ProbeEvent) {
        if self.enabled {
            self.sites.entry(event.site).or_default().bump(event.kind);
        }
    }
}

impl TelemetrySink for &mut SiteProbe {
    #[inline]
    fn enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    fn emit(&mut self, event: ProbeEvent) {
        <SiteProbe as TelemetrySink>::emit(self, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled() {
        let mut sink = NoopSink;
        assert!(!sink.enabled());
        sink.emit(ProbeEvent {
            site: 1,
            kind: ProbeKind::Hit,
        });
    }

    #[test]
    fn disabled_probe_collects_nothing() {
        let mut probe = SiteProbe::disabled();
        probe.emit(ProbeEvent {
            site: 1,
            kind: ProbeKind::Hit,
        });
        assert!(probe.sites().is_empty());
    }

    #[test]
    fn probe_tallies_per_site() {
        let mut probe = SiteProbe::enabled();
        for kind in [
            ProbeKind::Hit,
            ProbeKind::Hit,
            ProbeKind::Miss,
            ProbeKind::Taken,
        ] {
            probe.emit(ProbeEvent { site: 4, kind });
        }
        probe.emit(ProbeEvent {
            site: 8,
            kind: ProbeKind::Mispredict,
        });
        let c = probe.sites()[&4];
        assert_eq!((c.hits, c.misses, c.taken), (2, 1, 1));
        assert_eq!(probe.total(ProbeKind::Hit), 2);
        assert_eq!(probe.total(ProbeKind::Mispredict), 1);
    }

    #[test]
    fn top_mispredicted_sorts_and_truncates() {
        let mut probe = SiteProbe::enabled();
        for (site, n) in [(10u32, 3u64), (20, 7), (30, 7), (40, 1)] {
            for _ in 0..n {
                probe.emit(ProbeEvent {
                    site,
                    kind: ProbeKind::Mispredict,
                });
            }
        }
        let top = probe.top_mispredicted(3);
        assert_eq!(
            top.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            [20, 30, 10]
        );
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = SiteProbe::enabled();
        let mut b = SiteProbe::enabled();
        a.emit(ProbeEvent {
            site: 1,
            kind: ProbeKind::Hit,
        });
        b.emit(ProbeEvent {
            site: 1,
            kind: ProbeKind::Hit,
        });
        b.emit(ProbeEvent {
            site: 2,
            kind: ProbeKind::Evict,
        });
        a.merge(&b);
        assert_eq!(a.sites()[&1].hits, 2);
        assert_eq!(a.sites()[&2].evicts, 1);
    }

    #[test]
    fn json_summary_shape() {
        let mut probe = SiteProbe::enabled();
        probe.emit(ProbeEvent {
            site: 5,
            kind: ProbeKind::Mispredict,
        });
        probe.emit(ProbeEvent {
            site: 5,
            kind: ProbeKind::Taken,
        });
        let v = probe.to_json_value(10);
        assert_eq!(v.get("sites").and_then(JsonValue::as_int), Some(1));
        assert_eq!(v.get("mispredicts").and_then(JsonValue::as_int), Some(1));
        let top = v
            .get("top_mispredicted")
            .and_then(JsonValue::as_arr)
            .unwrap();
        assert_eq!(top[0].get("site").and_then(JsonValue::as_int), Some(5));
        assert_eq!(
            top[0].get("executions").and_then(JsonValue::as_int),
            Some(1)
        );
    }
}
