//! Named counters, gauges, and fixed-bucket histograms.
//!
//! Handles are `Arc`-backed atomics, so instrumented code pays one
//! relaxed atomic RMW per increment and never takes the registry lock;
//! the lock is only held while registering a metric or taking a
//! [`Snapshot`]. Snapshots render to fixed-width text, JSON lines, and
//! Prometheus exposition text, and merge across runs (counters and
//! histograms add, gauges keep the merged-in value).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::JsonValue;

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjust by `delta`.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed upper-bound buckets (plus an implicit +Inf
/// bucket), tracking count and sum like a Prometheus histogram.
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing.
    bounds: Vec<u64>,
    /// One slot per bound, plus the overflow bucket at the end.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing.
    #[must_use]
    pub fn new(bounds: &[u64]) -> Self {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must strictly increase"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

#[derive(Clone, Debug)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A registry of named metrics.
///
/// Names are dotted paths (`harness.wc.insts`). Registering the same
/// name twice returns the same underlying metric, so instrumentation
/// sites don't need to coordinate.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Handle>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Handle::Counter(Arc::new(Counter::default())))
        {
            Handle::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// The gauge named `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Handle::Gauge(Arc::new(Gauge::default())))
        {
            Handle::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// The histogram named `name` with the given bounds, creating it on
    /// first use.
    ///
    /// # Panics
    /// Panics if `name` exists as a different kind or with different
    /// bounds.
    #[must_use]
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Handle::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Handle::Histogram(h) => {
                assert_eq!(
                    h.bounds, bounds,
                    "histogram `{name}` re-registered with new bounds"
                );
                Arc::clone(h)
            }
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("registry poisoned");
        Snapshot {
            samples: metrics
                .iter()
                .map(|(name, h)| {
                    let value = match h {
                        Handle::Counter(c) => SampleValue::Counter(c.get()),
                        Handle::Gauge(g) => SampleValue::Gauge(g.get()),
                        Handle::Histogram(h) => SampleValue::Histogram {
                            bounds: h.bounds.clone(),
                            buckets: h
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect(),
                            sum: h.sum(),
                            count: h.count(),
                        },
                    };
                    Sample {
                        name: name.clone(),
                        value,
                    }
                })
                .collect(),
        }
    }
}

/// One metric's value at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram buckets (one per bound, plus the +Inf bucket last).
    Histogram {
        /// Inclusive upper bounds.
        bounds: Vec<u64>,
        /// Per-bucket observation counts (`bounds.len() + 1` entries).
        buckets: Vec<u64>,
        /// Sum of observations.
        sum: u64,
        /// Number of observations.
        count: u64,
    },
}

/// A named sample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: SampleValue,
}

/// A point-in-time copy of a registry, sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// The samples, sorted by name.
    pub samples: Vec<Sample>,
}

impl Snapshot {
    /// Merge another snapshot into this one: counters and histogram
    /// buckets add; a merged-in gauge replaces the existing value;
    /// unknown names are appended (keeping the sorted order).
    ///
    /// # Panics
    /// Panics if a name exists in both snapshots with different kinds,
    /// or as histograms with different bounds.
    pub fn merge(&mut self, other: &Snapshot) {
        for sample in &other.samples {
            match self.samples.binary_search_by(|s| s.name.cmp(&sample.name)) {
                Err(at) => self.samples.insert(at, sample.clone()),
                Ok(at) => {
                    let mine = &mut self.samples[at].value;
                    match (mine, &sample.value) {
                        (SampleValue::Counter(a), SampleValue::Counter(b)) => *a += b,
                        (SampleValue::Gauge(a), SampleValue::Gauge(b)) => *a = *b,
                        (
                            SampleValue::Histogram {
                                bounds,
                                buckets,
                                sum,
                                count,
                            },
                            SampleValue::Histogram {
                                bounds: ob,
                                buckets: obk,
                                sum: os,
                                count: oc,
                            },
                        ) => {
                            assert_eq!(
                                bounds, ob,
                                "histogram `{}` merged with different bounds",
                                sample.name
                            );
                            for (b, o) in buckets.iter_mut().zip(obk) {
                                *b += o;
                            }
                            *sum += os;
                            *count += oc;
                        }
                        _ => panic!("metric `{}` merged across kinds", sample.name),
                    }
                }
            }
        }
    }

    /// Fixed-width `name value` text.
    #[must_use]
    pub fn to_text(&self) -> String {
        let width = self.samples.iter().map(|s| s.name.len()).max().unwrap_or(0);
        let mut out = String::new();
        for s in &self.samples {
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "{:<width$}  {v}", s.name);
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(out, "{:<width$}  {v}", s.name);
                }
                SampleValue::Histogram {
                    bounds,
                    buckets,
                    sum,
                    count,
                } => {
                    let dist: Vec<String> = bounds
                        .iter()
                        .map(ToString::to_string)
                        .chain(["+Inf".to_string()])
                        .zip(buckets)
                        .map(|(b, c)| format!("le{b}:{c}"))
                        .collect();
                    let _ = writeln!(
                        out,
                        "{:<width$}  count={count} sum={sum} {}",
                        s.name,
                        dist.join(" ")
                    );
                }
            }
        }
        out
    }

    /// One JSON object per line (the format [`Snapshot::from_json_lines`]
    /// parses back).
    #[must_use]
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            let obj = match &s.value {
                SampleValue::Counter(v) => JsonValue::obj(vec![
                    ("name", s.name.as_str().into()),
                    ("type", "counter".into()),
                    ("value", JsonValue::from(*v)),
                ]),
                SampleValue::Gauge(v) => JsonValue::obj(vec![
                    ("name", s.name.as_str().into()),
                    ("type", "gauge".into()),
                    ("value", JsonValue::Int(*v)),
                ]),
                SampleValue::Histogram {
                    bounds,
                    buckets,
                    sum,
                    count,
                } => JsonValue::obj(vec![
                    ("name", s.name.as_str().into()),
                    ("type", "histogram".into()),
                    (
                        "bounds",
                        JsonValue::Arr(bounds.iter().map(|&b| b.into()).collect()),
                    ),
                    (
                        "buckets",
                        JsonValue::Arr(buckets.iter().map(|&b| b.into()).collect()),
                    ),
                    ("sum", JsonValue::from(*sum)),
                    ("count", JsonValue::from(*count)),
                ]),
            };
            out.push_str(&obj.to_json());
            out.push('\n');
        }
        out
    }

    /// Parse the output of [`Snapshot::to_json_lines`].
    ///
    /// # Errors
    /// Returns a message naming the first malformed line.
    pub fn from_json_lines(text: &str) -> Result<Snapshot, String> {
        let mut samples = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let bad = |what: &str| format!("line {}: {what}", ln + 1);
            let v = crate::json::parse(line).map_err(|e| bad(&e.to_string()))?;
            let name = v
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("missing name"))?
                .to_string();
            let kind = v.get("type").and_then(JsonValue::as_str).unwrap_or("");
            let int = |key: &str| {
                v.get(key)
                    .and_then(JsonValue::as_int)
                    .ok_or_else(|| bad(&format!("missing {key}")))
            };
            let ints = |key: &str| -> Result<Vec<u64>, String> {
                v.get(key)
                    .and_then(JsonValue::as_arr)
                    .ok_or_else(|| bad(&format!("missing {key}")))?
                    .iter()
                    .map(|x| {
                        x.as_int()
                            .and_then(|n| u64::try_from(n).ok())
                            .ok_or_else(|| bad(&format!("bad {key} entry")))
                    })
                    .collect()
            };
            let value = match kind {
                "counter" => SampleValue::Counter(int("value")? as u64),
                "gauge" => SampleValue::Gauge(int("value")?),
                "histogram" => SampleValue::Histogram {
                    bounds: ints("bounds")?,
                    buckets: ints("buckets")?,
                    sum: int("sum")? as u64,
                    count: int("count")? as u64,
                },
                other => return Err(bad(&format!("unknown type `{other}`"))),
            };
            samples.push(Sample { name, value });
        }
        samples.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(Snapshot { samples })
    }

    /// Prometheus exposition text.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            let pname = prometheus_name(&s.name);
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {pname} counter\n{pname} {v}");
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {pname} gauge\n{pname} {v}");
                }
                SampleValue::Histogram {
                    bounds,
                    buckets,
                    sum,
                    count,
                } => {
                    let _ = writeln!(out, "# TYPE {pname} histogram");
                    let mut cumulative = 0u64;
                    for (bound, bucket) in bounds
                        .iter()
                        .map(ToString::to_string)
                        .chain(["+Inf".to_string()])
                        .zip(buckets)
                    {
                        cumulative += bucket;
                        let _ = writeln!(out, "{pname}_bucket{{le=\"{bound}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{pname}_sum {sum}\n{pname}_count {count}");
                }
            }
        }
        out
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) of histogram `name`
    /// from its buckets, interpolating linearly within the bucket the
    /// quantile falls in (the same estimate Prometheus's
    /// `histogram_quantile` computes). Observations above the last
    /// finite bound clamp to it. `None` for unknown names,
    /// non-histograms, and empty histograms.
    #[must_use]
    pub fn histogram_quantile(&self, name: &str, q: f64) -> Option<f64> {
        let sample = self.samples.iter().find(|s| s.name == name)?;
        let SampleValue::Histogram {
            bounds,
            buckets,
            count,
            ..
        } = &sample.value
        else {
            return None;
        };
        if *count == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * (*count as f64);
        let mut cumulative = 0u64;
        for (i, bucket) in buckets.iter().enumerate() {
            let lower = cumulative as f64;
            cumulative += bucket;
            if (cumulative as f64) < rank || *bucket == 0 {
                continue;
            }
            let Some(&upper_bound) = bounds.get(i) else {
                // Overflow bucket: clamp to the last finite bound.
                return Some(bounds.last().copied().unwrap_or(0) as f64);
            };
            let lower_bound = if i == 0 { 0 } else { bounds[i - 1] };
            let fraction = ((rank - lower) / (*bucket as f64)).clamp(0.0, 1.0);
            return Some(lower_bound as f64 + (upper_bound - lower_bound) as f64 * fraction);
        }
        Some(bounds.last().copied().unwrap_or(0) as f64)
    }
}

/// Mangle a metric name into a valid Prometheus identifier: every
/// character outside `[A-Za-z0-9_:]` becomes `_`, and a leading digit
/// gets a `_` prefix. (The old mangle only handled `.` and `-`, so a
/// name like `sweep/wc.lat` rendered as an invalid exposition line.)
#[must_use]
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(c),
            '0'..='9' => {
                if i == 0 {
                    out.push('_');
                }
                out.push(c);
            }
            _ => out.push('_'),
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.hits");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("a.hits").get(), 5); // same underlying metric
        let g = reg.gauge("a.depth");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn histogram_buckets_observations() {
        let h = Histogram::new(&[10, 100]);
        for v in [1, 10, 11, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1022);
        let reg = MetricsRegistry::new();
        let rh = reg.histogram("lat", &[10, 100]);
        rh.observe(50);
        let snap = reg.snapshot();
        match &snap.samples[0].value {
            SampleValue::Histogram { buckets, .. } => assert_eq!(buckets, &[0, 1, 0]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_clash_rejected() {
        let reg = MetricsRegistry::new();
        let _ = reg.gauge("x");
        let _ = reg.counter("x");
    }

    #[test]
    fn snapshot_is_sorted_and_renders() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        let snap = reg.snapshot();
        assert_eq!(snap.samples[0].name, "a.first");
        let text = snap.to_text();
        assert!(text.contains("a.first"), "{text}");
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE a_first counter"), "{prom}");
        assert!(prom.contains("a_first 2"), "{prom}");
    }

    #[test]
    fn prometheus_names_are_always_valid_identifiers() {
        assert_eq!(prometheus_name("server.queue.depth"), "server_queue_depth");
        assert_eq!(prometheus_name("sweep/wc-1.lat"), "sweep_wc_1_lat");
        assert_eq!(prometheus_name("2xx responses"), "_2xx_responses");
        assert_eq!(prometheus_name("ns:metric"), "ns:metric");
        assert_eq!(prometheus_name(""), "_");
        for name in ["server.responses.2xx", "héllo→metric", "a b\tc"] {
            let mangled = prometheus_name(name);
            let mut chars = mangled.chars();
            assert!(
                chars.next().is_some_and(|c| !c.is_ascii_digit()),
                "{mangled}"
            );
            assert!(
                mangled
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "{mangled}"
            );
        }
        // The full exposition path uses the mangle.
        let reg = MetricsRegistry::new();
        reg.counter("server.responses.2xx").inc();
        let prom = reg.snapshot().to_prometheus();
        assert!(prom.contains("server_responses_2xx 1"), "{prom}");
    }

    #[test]
    fn counters_are_monotonic_across_snapshots() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("mono");
        let h = reg.histogram("mono.lat", &[10, 100]);
        let mut last_count = 0u64;
        let mut last_hist = 0u64;
        for round in 1..=5u64 {
            c.add(round);
            h.observe(round * 7);
            let snap = reg.snapshot();
            let count = snap
                .samples
                .iter()
                .find(|s| s.name == "mono")
                .and_then(|s| match s.value {
                    SampleValue::Counter(v) => Some(v),
                    _ => None,
                })
                .unwrap();
            let hist_count = snap
                .samples
                .iter()
                .find(|s| s.name == "mono.lat")
                .and_then(|s| match &s.value {
                    SampleValue::Histogram { count, .. } => Some(*count),
                    _ => None,
                })
                .unwrap();
            assert!(count > last_count, "counter went backwards at {round}");
            assert!(hist_count > last_hist, "histogram count fell at {round}");
            last_count = count;
            last_hist = hist_count;
        }
        assert_eq!(last_count, 1 + 2 + 3 + 4 + 5);
        assert_eq!(last_hist, 5);
    }

    #[test]
    fn concurrent_registration_shares_one_counter() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    // Each thread re-registers the same name; all must
                    // resolve to the same underlying metric.
                    for _ in 0..1000 {
                        reg.counter("contended").inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("contended").get(), 8 * 1000);
        // Exactly one sample, not eight.
        let snap = reg.snapshot();
        assert_eq!(
            snap.samples
                .iter()
                .filter(|s| s.name == "contended")
                .count(),
            1
        );
    }

    #[test]
    fn histogram_quantiles_interpolate_and_clamp() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[10, 100, 1000]);
        for v in [5, 5, 50, 50, 50, 50, 500, 500, 500, 5000] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let q = |p| snap.histogram_quantile("lat", p).unwrap();
        // p20 falls exactly at the end of the ≤10 bucket (2 of 10).
        assert!((q(0.2) - 10.0).abs() < 1e-9, "{}", q(0.2));
        // p50 is midway through the (10, 100] bucket: 10 + 3/4 span? No:
        // rank 5 of bucket holding ranks 3..=6 → fraction 3/4.
        assert!((q(0.5) - (10.0 + 90.0 * 0.75)).abs() < 1e-9, "{}", q(0.5));
        // Quantiles never decrease.
        assert!(q(0.5) <= q(0.9) && q(0.9) <= q(0.99));
        // The overflow observation clamps to the last finite bound.
        assert!((q(1.0) - 1000.0).abs() < 1e-9);
        // Degenerate cases.
        assert!(snap.histogram_quantile("nope", 0.5).is_none());
        let empty = MetricsRegistry::new();
        let _ = empty.histogram("lat", &[10]);
        assert!(empty.snapshot().histogram_quantile("lat", 0.5).is_none());
    }

    #[test]
    fn merge_adds_counters_and_histograms_replaces_gauges() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(3);
        reg.gauge("g").set(1);
        reg.histogram("h", &[5]).observe(2);
        let mut a = reg.snapshot();
        reg.counter("c").add(4);
        reg.gauge("g").set(9);
        reg.histogram("h", &[5]).observe(100);
        reg.counter("only_b").add(1);
        let b = reg.snapshot();
        a.merge(&b);
        let get = |name: &str| {
            a.samples
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.value.clone())
                .unwrap()
        };
        assert_eq!(get("c"), SampleValue::Counter(3 + 7));
        assert_eq!(get("g"), SampleValue::Gauge(9));
        assert_eq!(get("only_b"), SampleValue::Counter(1));
        match get("h") {
            SampleValue::Histogram {
                buckets,
                count,
                sum,
                ..
            } => {
                assert_eq!(buckets, vec![2, 1]);
                assert_eq!(count, 3);
                assert_eq!(sum, 104);
            }
            other => panic!("{other:?}"),
        }
        assert!(a.samples.windows(2).all(|w| w[0].name < w[1].name));
    }

    #[test]
    fn json_lines_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter("interp.insts").add(123_456);
        reg.gauge("queue.depth").set(-3);
        let h = reg.histogram("span.us", &[10, 100, 1000]);
        h.observe(7);
        h.observe(450);
        let snap = reg.snapshot();
        let parsed = Snapshot::from_json_lines(&snap.to_json_lines()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("d", &[1, 2]);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        let prom = reg.snapshot().to_prometheus();
        assert!(prom.contains("d_bucket{le=\"1\"} 1"), "{prom}");
        assert!(prom.contains("d_bucket{le=\"2\"} 2"), "{prom}");
        assert!(prom.contains("d_bucket{le=\"+Inf\"} 3"), "{prom}");
        assert!(prom.contains("d_count 3"), "{prom}");
    }
}
