//! A seedable SplitMix64 PRNG.
//!
//! The sandbox builds with no crates.io access, so this stands in for
//! `rand` everywhere the repo needs reproducible pseudo-randomness:
//! workload input generation and the randomized model-based tests.
//! The API mirrors the small slice of `rand` the repo used
//! (`gen_range` over integer ranges, `gen_bool`), so call sites read
//! the same.
//!
//! SplitMix64 passes BigCrush and is the standard seeder for the
//! xoshiro family; its 64-bit state is plenty for input generation,
//! where quality requirements are "no visible artifacts", not crypto.

use std::ops::{Range, RangeInclusive};

/// A seedable SplitMix64 generator.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seed the generator. Identical seeds yield identical streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (Lemire's multiply-shift reduction;
    /// the modulo bias is below 2⁻⁶⁴ × bound, irrelevant here).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // Compare against a 53-bit uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// A uniform value in the given (half-open or inclusive) integer
    /// range.
    ///
    /// # Panics
    /// Panics on an empty range, matching `rand`'s behavior.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Integer range types [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled integer type.
    type Output;
    /// Draw a uniform sample from `self`.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let v = rng.gen_range(0..=3usize);
            assert!(v <= 3);
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let b = rng.gen_range(32u8..127);
            assert!((32..127).contains(&b));
        }
    }

    #[test]
    fn all_range_values_are_reachable() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = Rng::seed_from_u64(9);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = Rng::seed_from_u64(0).gen_range(5..5);
    }
}
