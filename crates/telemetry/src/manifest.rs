//! Run manifests.
//!
//! A [`RunManifest`] records everything needed to trace an experiment
//! artifact back to its inputs: the tool and git revision that produced
//! it, the experiment configuration and seed, per-benchmark phase
//! timings, and per-predictor site summaries. `report`/`tableN`/`figN`
//! write one as `manifest.json` under `--telemetry-out DIR`, alongside
//! a metrics snapshot in JSON-lines and Prometheus form.

use std::io;
use std::path::Path;
use std::process::Command;
use std::time::SystemTime;

use crate::json::JsonValue;
use crate::metrics::Snapshot;
use crate::span::PhaseSpan;

/// File name the manifest is written under.
pub const MANIFEST_FILE: &str = "manifest.json";
/// File name of the JSON-lines metrics snapshot.
pub const METRICS_JSONL_FILE: &str = "metrics.jsonl";
/// File name of the Prometheus exposition snapshot.
pub const METRICS_PROM_FILE: &str = "metrics.prom";

/// Phase timings and predictor summaries for one benchmark.
#[derive(Clone, Debug, Default)]
pub struct BenchmarkRecord {
    /// Benchmark name (`wc`, `compress`, …).
    pub name: String,
    /// Completed phase spans, in completion order.
    pub phases: Vec<PhaseSpan>,
    /// Named per-predictor JSON summaries (e.g. a `SiteProbe` summary
    /// per BTB scheme), in insertion order.
    pub predictors: Vec<(String, JsonValue)>,
}

impl BenchmarkRecord {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("name", self.name.as_str().into()),
            (
                "phases",
                JsonValue::Arr(self.phases.iter().map(PhaseSpan::to_json_value).collect()),
            ),
            (
                "predictors",
                JsonValue::Obj(
                    self.predictors
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// A traceability record for one experiment run.
#[derive(Clone, Debug, Default)]
pub struct RunManifest {
    /// Binary that produced the run (`report`, `table1`, …).
    pub tool: String,
    /// `git describe --always --dirty` output, or `"unknown"`.
    pub git_describe: String,
    /// Unix timestamp (seconds) when the manifest was created.
    pub created_unix: u64,
    /// Experiment configuration as key/value pairs (scale, seed,
    /// fs_slots, …), in insertion order.
    pub config: Vec<(String, JsonValue)>,
    /// Per-benchmark records.
    pub benchmarks: Vec<BenchmarkRecord>,
    /// Extra top-level sections (e.g. a supervisor summary or failure
    /// list), rendered after `benchmarks` in insertion order.
    pub sections: Vec<(String, JsonValue)>,
}

impl RunManifest {
    /// A manifest stamped with the current time and git revision.
    #[must_use]
    pub fn new(tool: &str) -> Self {
        RunManifest {
            tool: tool.to_string(),
            git_describe: git_describe(),
            created_unix: SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            config: Vec::new(),
            benchmarks: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// Record one configuration key.
    pub fn set_config(&mut self, key: &str, value: impl Into<JsonValue>) {
        self.config.push((key.to_string(), value.into()));
    }

    /// Attach (or replace) a named top-level section.
    pub fn set_section(&mut self, key: &str, value: impl Into<JsonValue>) {
        let value = value.into();
        if let Some(slot) = self.sections.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.sections.push((key.to_string(), value));
        }
    }

    /// Append a benchmark record.
    pub fn push_benchmark(&mut self, record: BenchmarkRecord) {
        self.benchmarks.push(record);
    }

    /// The manifest as a JSON document.
    #[must_use]
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields = vec![
            ("tool".to_string(), JsonValue::from(self.tool.as_str())),
            (
                "git_describe".to_string(),
                self.git_describe.as_str().into(),
            ),
            ("created_unix".to_string(), self.created_unix.into()),
            ("config".to_string(), JsonValue::Obj(self.config.clone())),
            (
                "benchmarks".to_string(),
                JsonValue::Arr(
                    self.benchmarks
                        .iter()
                        .map(BenchmarkRecord::to_json_value)
                        .collect(),
                ),
            ),
        ];
        fields.extend(self.sections.iter().cloned());
        JsonValue::Obj(fields)
    }

    /// Write `manifest.json` (and, when `snapshot` is given,
    /// `metrics.jsonl` + `metrics.prom`) under `dir`, creating it if
    /// needed. Returns the manifest path.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_to(
        &self,
        dir: &Path,
        snapshot: Option<&Snapshot>,
    ) -> io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let manifest_path = dir.join(MANIFEST_FILE);
        let mut body = self.to_json_value().to_json_pretty();
        body.push('\n');
        std::fs::write(&manifest_path, body)?;
        if let Some(snap) = snapshot {
            std::fs::write(dir.join(METRICS_JSONL_FILE), snap.to_json_lines())?;
            std::fs::write(dir.join(METRICS_PROM_FILE), snap.to_prometheus())?;
        }
        Ok(manifest_path)
    }
}

/// `git describe --always --dirty` in the current directory, or
/// `"unknown"` when git or the repo is unavailable.
#[must_use]
pub fn git_describe() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use std::time::Duration;

    fn sample_manifest() -> RunManifest {
        let mut m = RunManifest::new("report");
        m.set_config("scale", "test");
        m.set_config("seed", 1989u64);
        m.push_benchmark(BenchmarkRecord {
            name: "wc".into(),
            phases: vec![PhaseSpan {
                name: "compile".into(),
                wall: Duration::from_micros(42),
                work: 0,
            }],
            predictors: vec![(
                "sbtb".into(),
                JsonValue::obj(vec![("mispredicts", 7u64.into())]),
            )],
        });
        m
    }

    #[test]
    fn manifest_json_shape() {
        let v = sample_manifest().to_json_value();
        assert_eq!(v.get("tool").and_then(JsonValue::as_str), Some("report"));
        assert!(v.get("git_describe").and_then(JsonValue::as_str).is_some());
        let config = v.get("config").unwrap();
        assert_eq!(config.get("seed").and_then(JsonValue::as_int), Some(1989));
        let benches = v.get("benchmarks").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(benches.len(), 1);
        let phases = benches[0]
            .get("phases")
            .and_then(JsonValue::as_arr)
            .unwrap();
        assert_eq!(
            phases[0].get("name").and_then(JsonValue::as_str),
            Some("compile")
        );
        let sbtb = benches[0].get("predictors").unwrap().get("sbtb").unwrap();
        assert_eq!(sbtb.get("mispredicts").and_then(JsonValue::as_int), Some(7));
    }

    #[test]
    fn write_to_emits_parseable_files() {
        let dir =
            std::env::temp_dir().join(format!("branchlab-manifest-test-{}", std::process::id()));
        let reg = MetricsRegistry::new();
        reg.counter("c").add(3);
        let snap = reg.snapshot();
        let path = sample_manifest().write_to(&dir, Some(&snap)).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let parsed = crate::json::parse(&body).unwrap();
        assert_eq!(
            parsed.get("tool").and_then(JsonValue::as_str),
            Some("report")
        );
        let jsonl = std::fs::read_to_string(dir.join(METRICS_JSONL_FILE)).unwrap();
        let round = Snapshot::from_json_lines(&jsonl).unwrap();
        assert_eq!(round, snap);
        assert!(dir.join(METRICS_PROM_FILE).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sections_render_at_top_level_and_replace_by_key() {
        let mut m = sample_manifest();
        m.set_section("supervisor", JsonValue::obj(vec![("retries", 1u64.into())]));
        m.set_section("supervisor", JsonValue::obj(vec![("retries", 4u64.into())]));
        m.set_section("failures", JsonValue::Arr(vec!["wc".into()]));
        let v = m.to_json_value();
        assert_eq!(
            v.get("supervisor")
                .and_then(|s| s.get("retries"))
                .and_then(JsonValue::as_int),
            Some(4)
        );
        assert_eq!(
            v.get("failures").and_then(JsonValue::as_arr).unwrap().len(),
            1
        );
        // Round-trips through the writer.
        let parsed = crate::json::parse(&v.to_json_pretty()).unwrap();
        assert!(parsed.get("failures").is_some());
    }

    #[test]
    fn git_describe_never_panics() {
        let d = git_describe();
        assert!(!d.is_empty());
    }
}
