//! # branchlab-minic
//!
//! MiniC: a small C-like language compiled to [`branchlab_ir`] modules.
//! MiniC plays the role of the paper's profiling C compiler front end —
//! the ten Unix benchmarks of Hwu/Conte/Chang (ISCA 1989) are
//! re-implemented in MiniC (see `branchlab-workloads`), compiled with
//! [`compile`], and then profiled, transformed, and simulated.
//!
//! The language: 64-bit ints, globals/locals, arrays, functions,
//! `if`/`while`/`for`/`do`/`switch` (with C fall-through), short-circuit
//! `&&`/`||`, string literals, and the builtins `getc(stream)`,
//! `putc(stream, byte)` and `halt()`.
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = branchlab_minic::compile(r"
//!     int main() {
//!         int c;
//!         while ((c = 0) || (c = getc(0)) >= 0) { putc(1, c); }
//!         return 0;
//!     }
//! ")?;
//! assert_eq!(module.funcs.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
mod codegen;
pub mod parser;
pub mod token;

pub use codegen::{compile, CompileError};
pub use parser::{parse, ParseError};
pub use token::{lex, LexError, Pos};

#[cfg(test)]
mod tests {
    use super::*;
    use branchlab_ir::{print_module, validate_module, Term};

    #[test]
    fn compiles_minimal_main() {
        let m = compile("int main() { return 0; }").unwrap();
        assert_eq!(m.funcs.len(), 1);
        assert_eq!(m.funcs[0].name, "main");
        assert_eq!(validate_module(&m), Ok(()));
    }

    #[test]
    fn rejects_missing_main() {
        let e = compile("int f() { return 0; }").unwrap_err();
        assert!(e.msg.contains("main"), "{e}");
    }

    #[test]
    fn rejects_main_with_params() {
        assert!(compile("int main(int x) { return x; }").is_err());
    }

    #[test]
    fn rejects_undeclared_variable() {
        let e = compile("int main() { return nope; }").unwrap_err();
        assert!(e.msg.contains("nope"), "{e}");
        assert!(e.pos.is_some());
    }

    #[test]
    fn rejects_duplicate_declaration_in_scope() {
        assert!(compile("int main() { int x; int x; return 0; }").is_err());
        // Shadowing in a nested scope is allowed.
        assert!(compile("int main() { int x; { int x; } return 0; }").is_ok());
    }

    #[test]
    fn rejects_arity_mismatch() {
        let src = "int f(int a) { return a; } int main() { return f(1, 2); }";
        let e = compile(src).unwrap_err();
        assert!(e.msg.contains("expects 1"), "{e}");
    }

    #[test]
    fn rejects_break_outside_loop() {
        assert!(compile("int main() { break; return 0; }").is_err());
        assert!(compile("int main() { continue; return 0; }").is_err());
    }

    #[test]
    fn rejects_redefined_builtin() {
        assert!(compile("int getc(int s) { return 0; } int main() { return 0; }").is_err());
    }

    #[test]
    fn rejects_assignment_to_array_name() {
        assert!(compile("int a[3]; int main() { a = 1; return 0; }").is_err());
    }

    #[test]
    fn stream_arguments() {
        // Runtime stream indices are allowed (masked at execution)…
        assert!(compile("int main() { int s = 0; return getc(s); }").is_ok());
        // …but constant out-of-range streams are compile errors.
        assert!(compile("int main() { return getc(9); }").is_err());
        assert!(compile("int main() { putc(-1, 'x'); return 0; }").is_err());
    }

    #[test]
    fn globals_are_laid_out_with_initializers() {
        let m = compile("int x = 7; int a[3] = {1, 2}; int main() { return x + a[1]; }").unwrap();
        assert_eq!(m.globals_words, 4);
        assert_eq!(m.globals_init, vec![7, 1, 2, 0]);
    }

    #[test]
    fn string_literals_are_interned_nul_terminated() {
        let m = compile(r#"int main() { return "ab"[0] + "ab"[1]; }"#).unwrap();
        // One copy of "ab\0" only.
        assert_eq!(m.globals_words, 3);
        assert_eq!(m.globals_init, vec![97, 98, 0]);
    }

    #[test]
    fn comparison_condition_folds_into_branch() {
        let m =
            compile("int main() { int x = getc(0); if (x < 10) { return 1; } return 2; }").unwrap();
        let text = print_module(&m);
        assert!(text.contains("br.lt"), "{text}");
        // No separate cmp instruction for the condition.
        assert!(!text.contains("cmp.lt"), "{text}");
    }

    #[test]
    fn logical_and_short_circuits_via_blocks() {
        let m =
            compile("int main() { int x = getc(0); if (x > 0 && x < 10) { return 1; } return 0; }")
                .unwrap();
        let text = print_module(&m);
        assert!(text.contains("br.gt"), "{text}");
        assert!(text.contains("br.lt"), "{text}");
    }

    #[test]
    fn dense_switch_compiles_to_jump_table() {
        // ≥6 cases, density ≥ 0.5 → indirect jump table.
        let m = compile(
            "int main() { switch (getc(0)) { case 10: return 1; case 11: return 2; case 12: return 3; case 13: return 4; case 14: return 5; case 15: return 6; default: return 0; } return 9; }",
        )
        .unwrap();
        let f = &m.funcs[0];
        let Some(Term::Switch { targets, .. }) = f
            .blocks
            .iter()
            .map(|b| &b.term)
            .find(|t| matches!(t, Term::Switch { .. }))
        else {
            panic!("expected a switch terminator")
        };
        assert_eq!(targets.len(), 6); // spans 10..=15
    }

    #[test]
    fn small_switch_compiles_to_compare_chain() {
        // Below the table heuristics (1980s compilers used chains here).
        let m = compile(
            "int main() { switch (getc(0)) { case 10: return 1; case 12: return 2; default: return 3; } return 0; }",
        )
        .unwrap();
        let f = &m.funcs[0];
        assert!(
            !f.blocks
                .iter()
                .any(|b| matches!(b.term, Term::Switch { .. })),
            "expected a compare chain"
        );
        // Two Eq tests, one per case.
        let brs = f
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Term::Br { .. }))
            .count();
        assert!(brs >= 2);
    }

    #[test]
    fn sparse_switch_compiles_to_compare_chain() {
        // Many cases but density < 0.5 → chain.
        let m = compile(
            "int main() { switch (getc(0)) { case 0: return 1; case 100: return 2; case 200: return 3; case 300: return 4; case 400: return 5; case 500: return 6; } return 0; }",
        )
        .unwrap();
        assert!(
            !m.funcs[0]
                .blocks
                .iter()
                .any(|b| matches!(b.term, Term::Switch { .. })),
            "expected a compare chain"
        );
    }

    #[test]
    fn rejects_duplicate_case() {
        assert!(
            compile("int main() { switch (0) { case 1: break; case 1: break; } return 0; }")
                .is_err()
        );
    }

    #[test]
    fn wide_sparse_switch_is_fine_as_chain() {
        // The 4096-span limit only applies to table-worthy switches;
        // sparse ones lower to chains regardless of span.
        assert!(compile(
            "int main() { switch (0) { case 0: break; case 100000: break; } return 0; }"
        )
        .is_ok());
    }

    #[test]
    fn constant_folding_removes_trivial_alu() {
        let m = compile("int main() { return 2 + 3 * 4; }").unwrap();
        let text = print_module(&m);
        assert!(text.contains("ret 14"), "{text}");
    }

    #[test]
    fn recursion_compiles() {
        let src = r"
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            int main() { return fib(10); }
        ";
        let m = compile(src).unwrap();
        assert_eq!(m.funcs.len(), 2);
        assert_eq!(validate_module(&m), Ok(()));
    }

    #[test]
    fn halt_is_a_terminator() {
        let m = compile("int main() { halt(); }").unwrap();
        assert!(m.funcs[0].blocks.iter().any(|b| b.term == Term::Halt));
        assert!(compile("int main() { return halt(); }").is_err());
    }

    #[test]
    fn kitchen_sink_module_validates_and_lowers() {
        let src = r#"
            int counts[128];
            int total;
            int helper(int x, int y) {
                int i;
                int acc = 0;
                for (i = x; i < y; i++) {
                    if (i % 3 == 0 || i % 5 == 0) { acc += i; }
                }
                return acc;
            }
            int main() {
                int c;
                int buf[16];
                buf[0] = 'h';
                while ((c = getc(0)) != -1) {
                    if (c >= 0 && c < 128) { counts[c]++; total++; }
                    switch (c) {
                        case '\n': putc(1, '$'); break;
                        case ' ': break;
                        default: putc(1, c);
                    }
                }
                putc(1, "done"[0]);
                return helper(0, total) + buf[0];
            }
        "#;
        let m = compile(src).unwrap();
        assert_eq!(validate_module(&m), Ok(()));
        assert!(branchlab_ir::lower(&m).is_ok());
    }
}
