//! Recursive-descent parser for MiniC.

use std::fmt;

use crate::ast::{BinOp, Expr, Func, Item, Stmt, StmtKind, SwitchArm, UnOp};
use crate::token::{lex, Kw, LexError, Pos, Punct, Tok};

/// A parse error with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Where the error occurred.
    pub pos: Pos,
    /// Description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            pos: e.pos,
            msg: e.msg,
        }
    }
}

/// Parse a MiniC source file into items.
///
/// # Errors
/// Returns [`ParseError`] on the first syntax error.
pub fn parse(src: &str) -> Result<Vec<Item>, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut items = Vec::new();
    while !p.at_eof() {
        items.push(p.item()?);
    }
    Ok(items)
}

struct Parser {
    toks: Vec<(Tok, Pos)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].0
    }

    fn here(&self) -> Pos {
        self.toks[self.pos].1
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            pos: self.here(),
            msg: msg.into(),
        })
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == &Tok::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", self.peek()))
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if self.peek() == &Tok::Kw(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, k: Kw) -> Result<(), ParseError> {
        if self.eat_kw(k) {
            Ok(())
        } else {
            self.err(format!("expected `{k}`, found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    /// Signed integer constant (for globals/case labels): `N` or `-N`.
    fn int_const(&mut self) -> Result<i64, ParseError> {
        let neg = self.eat_punct(Punct::Minus);
        match self.peek().clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(if neg { n.wrapping_neg() } else { n })
            }
            other => self.err(format!("expected integer constant, found {other}")),
        }
    }

    // ---- items ----

    fn item(&mut self) -> Result<Item, ParseError> {
        let pos = self.here();
        let is_void = if self.eat_kw(Kw::Void) {
            true
        } else {
            self.expect_kw(Kw::Int)?;
            false
        };
        let name = self.ident()?;
        if self.peek() == &Tok::Punct(Punct::LParen) {
            return Ok(Item::Func(self.func(name, pos)?));
        }
        if is_void {
            return self.err("`void` is only valid as a function return type");
        }
        // Global scalar or array.
        if self.eat_punct(Punct::LBracket) {
            let size = if self.peek() == &Tok::Punct(Punct::RBracket) {
                None
            } else {
                let n = self.int_const()?;
                if n <= 0 {
                    return self.err("array size must be positive");
                }
                Some(n as usize)
            };
            self.expect_punct(Punct::RBracket)?;
            let init = if self.eat_punct(Punct::Assign) {
                self.init_list()?
            } else {
                Vec::new()
            };
            let size = match size {
                Some(s) => {
                    if init.len() > s {
                        return self.err("more initializers than array elements");
                    }
                    s
                }
                None => {
                    if init.is_empty() {
                        return self.err("array with `[]` needs an initializer");
                    }
                    init.len()
                }
            };
            self.expect_punct(Punct::Semi)?;
            Ok(Item::GlobalArray {
                name,
                size,
                init,
                pos,
            })
        } else {
            let init = if self.eat_punct(Punct::Assign) {
                self.int_const()?
            } else {
                0
            };
            self.expect_punct(Punct::Semi)?;
            Ok(Item::GlobalScalar { name, init, pos })
        }
    }

    fn init_list(&mut self) -> Result<Vec<i64>, ParseError> {
        self.expect_punct(Punct::LBrace)?;
        let mut vals = Vec::new();
        if !self.eat_punct(Punct::RBrace) {
            loop {
                vals.push(self.int_const()?);
                if self.eat_punct(Punct::RBrace) {
                    break;
                }
                self.expect_punct(Punct::Comma)?;
                // allow trailing comma
                if self.eat_punct(Punct::RBrace) {
                    break;
                }
            }
        }
        Ok(vals)
    }

    fn func(&mut self, name: String, pos: Pos) -> Result<Func, ParseError> {
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                self.expect_kw(Kw::Int)?;
                params.push(self.ident()?);
                if self.eat_punct(Punct::RParen) {
                    break;
                }
                self.expect_punct(Punct::Comma)?;
            }
        }
        let body = self.block()?;
        Ok(Func {
            name,
            params,
            body,
            pos,
        })
    }

    // ---- statements ----

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if self.at_eof() {
                return self.err("unexpected end of input in block");
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.here();
        let kind = match self.peek().clone() {
            Tok::Kw(Kw::Int) => {
                self.bump();
                let name = self.ident()?;
                if self.eat_punct(Punct::LBracket) {
                    let n = self.int_const()?;
                    if n <= 0 {
                        return self.err("array size must be positive");
                    }
                    self.expect_punct(Punct::RBracket)?;
                    self.expect_punct(Punct::Semi)?;
                    StmtKind::DeclArray {
                        name,
                        size: n as usize,
                    }
                } else {
                    let init = if self.eat_punct(Punct::Assign) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    self.expect_punct(Punct::Semi)?;
                    StmtKind::DeclScalar { name, init }
                }
            }
            Tok::Kw(Kw::If) => {
                self.bump();
                return self.if_stmt(pos);
            }
            Tok::Kw(Kw::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.block()?;
                StmtKind::While { cond, body }
            }
            Tok::Kw(Kw::Do) => {
                self.bump();
                let body = self.block()?;
                self.expect_kw(Kw::While)?;
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                StmtKind::DoWhile { body, cond }
            }
            Tok::Kw(Kw::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if self.peek() == &Tok::Punct(Punct::Semi) {
                    None
                } else {
                    Some(Box::new(Stmt {
                        kind: self.simple_stmt()?,
                        pos,
                    }))
                };
                self.expect_punct(Punct::Semi)?;
                let cond = if self.peek() == &Tok::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if self.peek() == &Tok::Punct(Punct::RParen) {
                    None
                } else {
                    Some(Box::new(Stmt {
                        kind: self.simple_stmt()?,
                        pos,
                    }))
                };
                self.expect_punct(Punct::RParen)?;
                let body = self.block()?;
                StmtKind::For {
                    init,
                    cond,
                    step,
                    body,
                }
            }
            Tok::Kw(Kw::Switch) => {
                self.bump();
                return self.switch_stmt(pos);
            }
            Tok::Kw(Kw::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                StmtKind::Break
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                StmtKind::Continue
            }
            Tok::Kw(Kw::Return) => {
                self.bump();
                let v = if self.peek() == &Tok::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                StmtKind::Return(v)
            }
            Tok::Punct(Punct::LBrace) => StmtKind::Block(self.block()?),
            _ => {
                let k = self.simple_stmt()?;
                self.expect_punct(Punct::Semi)?;
                k
            }
        };
        Ok(Stmt { kind, pos })
    }

    /// `if` with optional `else` / `else if` chain (already past `if`).
    fn if_stmt(&mut self, pos: Pos) -> Result<Stmt, ParseError> {
        self.expect_punct(Punct::LParen)?;
        let cond = self.expr()?;
        self.expect_punct(Punct::RParen)?;
        let then_ = self.block()?;
        let else_ = if self.eat_kw(Kw::Else) {
            if self.eat_kw(Kw::If) {
                let p = self.here();
                vec![self.if_stmt(p)?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt {
            kind: StmtKind::If { cond, then_, else_ },
            pos,
        })
    }

    fn switch_stmt(&mut self, pos: Pos) -> Result<Stmt, ParseError> {
        self.expect_punct(Punct::LParen)?;
        let scrutinee = self.expr()?;
        self.expect_punct(Punct::RParen)?;
        self.expect_punct(Punct::LBrace)?;
        let mut arms: Vec<SwitchArm> = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            let mut labels = Vec::new();
            loop {
                if self.eat_kw(Kw::Case) {
                    labels.push(Some(self.int_const()?));
                    self.expect_punct(Punct::Colon)?;
                } else if self.eat_kw(Kw::Default) {
                    labels.push(None);
                    self.expect_punct(Punct::Colon)?;
                } else {
                    break;
                }
            }
            if labels.is_empty() {
                return self.err("expected `case` or `default` in switch body");
            }
            let mut stmts = Vec::new();
            while !matches!(
                self.peek(),
                Tok::Kw(Kw::Case) | Tok::Kw(Kw::Default) | Tok::Punct(Punct::RBrace)
            ) {
                if self.at_eof() {
                    return self.err("unexpected end of input in switch");
                }
                stmts.push(self.stmt()?);
            }
            arms.push(SwitchArm { labels, stmts });
        }
        Ok(Stmt {
            kind: StmtKind::Switch { scrutinee, arms },
            pos,
        })
    }

    /// Assignment, compound assignment, increment, or expression —
    /// without the trailing `;` (shared by statements and `for` clauses).
    fn simple_stmt(&mut self) -> Result<StmtKind, ParseError> {
        // Lookahead: IDENT followed by an assignment-ish operator.
        if let Tok::Ident(name) = self.peek().clone() {
            match self.peek2() {
                Tok::Punct(Punct::Assign) => {
                    self.bump();
                    self.bump();
                    let value = self.expr()?;
                    return Ok(StmtKind::AssignVar { name, value });
                }
                Tok::Punct(Punct::PlusEq) | Tok::Punct(Punct::MinusEq) => {
                    let op = if self.peek2() == &Tok::Punct(Punct::PlusEq) {
                        BinOp::Add
                    } else {
                        BinOp::Sub
                    };
                    let pos = self.here();
                    self.bump();
                    self.bump();
                    let rhs = self.expr()?;
                    let value =
                        Expr::Binary(op, Box::new(Expr::Var(name.clone(), pos)), Box::new(rhs));
                    return Ok(StmtKind::AssignVar { name, value });
                }
                Tok::Punct(Punct::PlusPlus) | Tok::Punct(Punct::MinusMinus) => {
                    let op = if self.peek2() == &Tok::Punct(Punct::PlusPlus) {
                        BinOp::Add
                    } else {
                        BinOp::Sub
                    };
                    let pos = self.here();
                    self.bump();
                    self.bump();
                    let value = Expr::Binary(
                        op,
                        Box::new(Expr::Var(name.clone(), pos)),
                        Box::new(Expr::Num(1)),
                    );
                    return Ok(StmtKind::AssignVar { name, value });
                }
                _ => {}
            }
        }
        // General expression; may turn out to be an indexed assignment.
        let e = self.expr()?;
        // `expr()` already parses `lhs = rhs`; re-shape it as a statement.
        if let Expr::Assign(target, value) = e {
            return Ok(match *target {
                Expr::Var(name, _) => StmtKind::AssignVar {
                    name,
                    value: *value,
                },
                Expr::Index(base, index) => StmtKind::AssignIndex {
                    base: *base,
                    index: *index,
                    value: *value,
                },
                _ => unreachable!("expr() only builds Assign with Var/Index targets"),
            });
        }
        if let Expr::Index(base, index) = &e {
            let mk = |value| StmtKind::AssignIndex {
                base: (**base).clone(),
                index: (**index).clone(),
                value,
            };
            for (p, op) in [(Punct::PlusEq, BinOp::Add), (Punct::MinusEq, BinOp::Sub)] {
                if self.eat_punct(p) {
                    let rhs = self.expr()?;
                    return Ok(mk(Expr::Binary(op, Box::new(e.clone()), Box::new(rhs))));
                }
            }
            for (p, op) in [
                (Punct::PlusPlus, BinOp::Add),
                (Punct::MinusMinus, BinOp::Sub),
            ] {
                if self.eat_punct(p) {
                    return Ok(mk(Expr::Binary(
                        op,
                        Box::new(e.clone()),
                        Box::new(Expr::Num(1)),
                    )));
                }
            }
        }
        Ok(StmtKind::Expr(e))
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.binary(0)?;
        if self.peek() == &Tok::Punct(Punct::Assign) {
            if !matches!(lhs, Expr::Var(..) | Expr::Index(..)) {
                return self.err("invalid assignment target");
            }
            self.bump();
            let rhs = self.expr()?; // right-associative
            return Ok(Expr::Assign(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::Punct(Punct::OrOr) => (BinOp::LOr, 1),
                Tok::Punct(Punct::AndAnd) => (BinOp::LAnd, 2),
                Tok::Punct(Punct::Pipe) => (BinOp::BitOr, 3),
                Tok::Punct(Punct::Caret) => (BinOp::BitXor, 4),
                Tok::Punct(Punct::Amp) => (BinOp::BitAnd, 5),
                Tok::Punct(Punct::EqEq) => (BinOp::Eq, 6),
                Tok::Punct(Punct::NotEq) => (BinOp::Ne, 6),
                Tok::Punct(Punct::Lt) => (BinOp::Lt, 7),
                Tok::Punct(Punct::Le) => (BinOp::Le, 7),
                Tok::Punct(Punct::Gt) => (BinOp::Gt, 7),
                Tok::Punct(Punct::Ge) => (BinOp::Ge, 7),
                Tok::Punct(Punct::Shl) => (BinOp::Shl, 8),
                Tok::Punct(Punct::Shr) => (BinOp::Shr, 8),
                Tok::Punct(Punct::Plus) => (BinOp::Add, 9),
                Tok::Punct(Punct::Minus) => (BinOp::Sub, 9),
                Tok::Punct(Punct::Star) => (BinOp::Mul, 10),
                Tok::Punct(Punct::Slash) => (BinOp::Div, 10),
                Tok::Punct(Punct::Percent) => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            Tok::Punct(Punct::Minus) => Some(UnOp::Neg),
            Tok::Punct(Punct::Bang) => Some(UnOp::Not),
            Tok::Punct(Punct::Tilde) => Some(UnOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let e = self.unary()?;
            return Ok(Expr::Unary(op, Box::new(e)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.eat_punct(Punct::LBracket) {
            let idx = self.expr()?;
            self.expect_punct(Punct::RBracket)?;
            e = Expr::Index(Box::new(e), Box::new(idx));
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let pos = self.here();
        match self.peek().clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(Expr::Num(n))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat_punct(Punct::LParen) {
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(Punct::RParen) {
                                break;
                            }
                            self.expect_punct(Punct::Comma)?;
                        }
                    }
                    Ok(Expr::Call(name, args, pos))
                } else {
                    Ok(Expr::Var(name, pos))
                }
            }
            Tok::Punct(Punct::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_global_scalars_and_arrays() {
        let items = parse("int x; int y = -3; int a[4]; int b[] = {1, 2};").unwrap();
        assert_eq!(items.len(), 4);
        assert!(matches!(&items[0], Item::GlobalScalar { name, init: 0, .. } if name == "x"));
        assert!(matches!(&items[1], Item::GlobalScalar { init: -3, .. }));
        assert!(matches!(&items[2], Item::GlobalArray { size: 4, .. }));
        match &items[3] {
            Item::GlobalArray { size, init, .. } => {
                assert_eq!(*size, 2);
                assert_eq!(init, &vec![1, 2]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_function_with_params() {
        let items = parse("int add(int a, int b) { return a + b; }").unwrap();
        match &items[0] {
            Item::Func(f) => {
                assert_eq!(f.name, "add");
                assert_eq!(f.params, vec!["a", "b"]);
                assert_eq!(f.body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let items = parse("int main() { return 1 + 2 * 3; }").unwrap();
        let Item::Func(f) = &items[0] else { panic!() };
        let StmtKind::Return(Some(e)) = &f.body[0].kind else {
            panic!()
        };
        assert_eq!(
            *e,
            Expr::Binary(
                BinOp::Add,
                Box::new(Expr::Num(1)),
                Box::new(Expr::Binary(
                    BinOp::Mul,
                    Box::new(Expr::Num(2)),
                    Box::new(Expr::Num(3))
                )),
            )
        );
    }

    #[test]
    fn precedence_logical_lowest() {
        let items = parse("int main() { return 1 < 2 && 3 == 3 || 0; }").unwrap();
        let Item::Func(f) = &items[0] else { panic!() };
        let StmtKind::Return(Some(Expr::Binary(BinOp::LOr, _, _))) = &f.body[0].kind else {
            panic!("expected top-level ||: {:?}", f.body[0].kind)
        };
    }

    #[test]
    fn parses_control_flow() {
        let src = r"
            int main() {
                int i;
                for (i = 0; i < 10; i++) {
                    if (i % 2 == 0) { continue; } else { break; }
                }
                while (i) { i -= 1; }
                do { i += 1; } while (i < 5);
                return i;
            }
        ";
        let items = parse(src).unwrap();
        let Item::Func(f) = &items[0] else { panic!() };
        assert_eq!(f.body.len(), 5);
        assert!(matches!(f.body[1].kind, StmtKind::For { .. }));
        assert!(matches!(f.body[2].kind, StmtKind::While { .. }));
        assert!(matches!(f.body[3].kind, StmtKind::DoWhile { .. }));
    }

    #[test]
    fn parses_switch_with_fallthrough_and_shared_labels() {
        let src = r"
            int main() {
                switch (getc(0)) {
                    case 1: case 2: return 1;
                    case 3: break;
                    default: return 9;
                }
                return 0;
            }
        ";
        let items = parse(src).unwrap();
        let Item::Func(f) = &items[0] else { panic!() };
        let StmtKind::Switch { arms, .. } = &f.body[0].kind else {
            panic!()
        };
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].labels, vec![Some(1), Some(2)]);
        assert_eq!(arms[1].labels, vec![Some(3)]);
        assert_eq!(arms[2].labels, vec![None]);
    }

    #[test]
    fn parses_indexed_assignment_forms() {
        let src = "int a[4]; int main() { a[0] = 1; a[1] += 2; a[2]++; a[a[0]] = 3; return a[0]; }";
        let items = parse(src).unwrap();
        let Item::Func(f) = &items[1] else { panic!() };
        assert!(matches!(f.body[0].kind, StmtKind::AssignIndex { .. }));
        assert!(matches!(f.body[1].kind, StmtKind::AssignIndex { .. }));
        assert!(matches!(f.body[2].kind, StmtKind::AssignIndex { .. }));
        assert!(matches!(f.body[3].kind, StmtKind::AssignIndex { .. }));
    }

    #[test]
    fn parses_string_literal_expression() {
        let items = parse(r#"int main() { return "ab"[0]; }"#).unwrap();
        let Item::Func(f) = &items[0] else { panic!() };
        let StmtKind::Return(Some(Expr::Index(b, _))) = &f.body[0].kind else {
            panic!()
        };
        assert_eq!(**b, Expr::Str(b"ab".to_vec()));
    }

    #[test]
    fn else_if_chains() {
        let src = "int main() { if (1) { } else if (2) { } else { return 3; } return 0; }";
        let items = parse(src).unwrap();
        let Item::Func(f) = &items[0] else { panic!() };
        let StmtKind::If { else_, .. } = &f.body[0].kind else {
            panic!()
        };
        assert_eq!(else_.len(), 1);
        assert!(matches!(else_[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn rejects_missing_semicolon() {
        assert!(parse("int main() { return 1 }").is_err());
    }

    #[test]
    fn rejects_bad_global() {
        assert!(parse("int a[0];").is_err());
        assert!(parse("int a[] ;").is_err());
        assert!(parse("int a[1] = {1, 2};").is_err());
        assert!(parse("void x;").is_err());
    }

    #[test]
    fn error_carries_position() {
        let e = parse("int main() {\n  return @;\n}").unwrap_err();
        assert_eq!(e.pos.line, 2);
    }

    #[test]
    fn unary_chains() {
        let items = parse("int main() { return !!-~1; }").unwrap();
        let Item::Func(f) = &items[0] else { panic!() };
        let StmtKind::Return(Some(Expr::Unary(UnOp::Not, _))) = &f.body[0].kind else {
            panic!()
        };
    }
}
