//! IR code generation (with integrated semantic checking) for MiniC.

use std::collections::HashMap;
use std::fmt;

use branchlab_ir::{AluOp, BlockId, Cond, FuncId, FunctionBuilder, Module, Op, Operand, Reg, Term};

use crate::ast::{BinOp, Expr, Func, Item, Stmt, StmtKind, SwitchArm, UnOp};
use crate::parser::ParseError;
use crate::token::Pos;

/// Maximum span (max − min + 1) of `switch` case labels; wider switches
/// would create unreasonable jump tables.
const MAX_SWITCH_SPAN: i64 = 4096;

/// Jump-table heuristics, mirroring late-1980s compilers: a `switch`
/// becomes an indirect jump through a table only when it has at least
/// this many cases…
const MIN_TABLE_CASES: usize = 6;
/// …and the table is at least this dense (cases / span); sparse or tiny
/// switches lower to a compare chain instead.
const MIN_TABLE_DENSITY: f64 = 0.5;

/// A compilation error (lexical, syntactic, or semantic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// Source position, when known.
    pub pos: Option<Pos>,
    /// Description.
    pub msg: String,
}

impl CompileError {
    fn at(pos: Pos, msg: impl Into<String>) -> Self {
        CompileError {
            pos: Some(pos),
            msg: msg.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "compile error at {p}: {}", self.msg),
            None => write!(f, "compile error: {}", self.msg),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError {
            pos: Some(e.pos),
            msg: e.msg,
        }
    }
}

/// How a name is bound.
#[derive(Clone, Debug)]
enum Binding {
    /// Local scalar living in a register.
    Local(Reg),
    /// Local array at a frame offset.
    LocalArray { offset: i64 },
    /// Global scalar at a data address.
    GlobalScalar { addr: u32 },
    /// Global array starting at a data address.
    GlobalArray { addr: u32 },
}

/// Compile MiniC source text to a validated IR module.
///
/// # Errors
/// Returns [`CompileError`] on any lexical, syntax, or semantic error
/// (undeclared names, arity mismatches, missing `main`, …).
pub fn compile(src: &str) -> Result<Module, CompileError> {
    let items = crate::parser::parse(src)?;
    let mut cx = ModuleCx::default();

    // Pass 1: globals and function signatures.
    let mut funcs_ast: Vec<&Func> = Vec::new();
    for item in &items {
        match item {
            Item::GlobalScalar { name, init, pos } => {
                let addr = cx.alloc_data(&[*init]);
                cx.bind_global(name, Binding::GlobalScalar { addr }, *pos)?;
            }
            Item::GlobalArray {
                name,
                size,
                init,
                pos,
            } => {
                let mut words = init.clone();
                words.resize(*size, 0);
                let addr = cx.alloc_data(&words);
                cx.bind_global(name, Binding::GlobalArray { addr }, *pos)?;
            }
            Item::Func(f) => {
                if is_builtin(&f.name) {
                    return Err(CompileError::at(
                        f.pos,
                        format!("`{}` is a builtin and cannot be redefined", f.name),
                    ));
                }
                if cx.funcs.contains_key(&f.name) {
                    return Err(CompileError::at(
                        f.pos,
                        format!("function `{}` defined twice", f.name),
                    ));
                }
                let id = FuncId(funcs_ast.len() as u32);
                cx.funcs.insert(f.name.clone(), (id, f.params.len()));
                funcs_ast.push(f);
            }
        }
    }

    let Some(&(entry, main_params)) = cx.funcs.get("main") else {
        return Err(CompileError {
            pos: None,
            msg: "no `main` function".into(),
        });
    };
    if main_params != 0 {
        return Err(CompileError {
            pos: None,
            msg: "`main` must take no parameters".into(),
        });
    }

    // Pass 2: function bodies.
    let mut funcs = Vec::with_capacity(funcs_ast.len());
    for (i, f) in funcs_ast.iter().enumerate() {
        funcs.push(gen_function(&mut cx, f, FuncId(i as u32))?);
    }

    let module = Module {
        funcs,
        globals_words: cx.data.len() as u32,
        globals_init: cx.data,
        entry,
    };
    branchlab_ir::validate_module(&module).map_err(|e| CompileError {
        pos: None,
        msg: format!("internal codegen bug: {e}"),
    })?;
    Ok(module)
}

fn is_builtin(name: &str) -> bool {
    matches!(name, "getc" | "putc" | "halt")
}

#[derive(Default)]
struct ModuleCx {
    globals: HashMap<String, Binding>,
    data: Vec<i64>,
    strings: HashMap<Vec<u8>, u32>,
    funcs: HashMap<String, (FuncId, usize)>,
}

impl ModuleCx {
    fn alloc_data(&mut self, words: &[i64]) -> u32 {
        let addr = self.data.len() as u32;
        self.data.extend_from_slice(words);
        addr
    }

    fn bind_global(&mut self, name: &str, b: Binding, pos: Pos) -> Result<(), CompileError> {
        if self.globals.insert(name.to_string(), b).is_some() {
            return Err(CompileError::at(
                pos,
                format!("global `{name}` defined twice"),
            ));
        }
        Ok(())
    }

    fn intern_string(&mut self, s: &[u8]) -> u32 {
        if let Some(&addr) = self.strings.get(s) {
            return addr;
        }
        let words: Vec<i64> = s
            .iter()
            .map(|&b| i64::from(b))
            .chain(std::iter::once(0))
            .collect();
        let addr = self.alloc_data(&words);
        self.strings.insert(s.to_vec(), addr);
        addr
    }
}

struct FuncCx<'m> {
    cx: &'m mut ModuleCx,
    fb: FunctionBuilder,
    scopes: Vec<HashMap<String, Binding>>,
    breaks: Vec<BlockId>,
    continues: Vec<BlockId>,
}

fn gen_function(
    cx: &mut ModuleCx,
    f: &Func,
    id: FuncId,
) -> Result<branchlab_ir::Function, CompileError> {
    let nparams = u16::try_from(f.params.len())
        .map_err(|_| CompileError::at(f.pos, "too many parameters"))?;
    let mut fcx = FuncCx {
        cx,
        fb: FunctionBuilder::new(f.name.clone(), id, nparams),
        scopes: vec![HashMap::new()],
        breaks: Vec::new(),
        continues: Vec::new(),
    };
    for (i, p) in f.params.iter().enumerate() {
        fcx.declare(p, Binding::Local(Reg(i as u16)), f.pos)?;
    }
    fcx.gen_stmts(&f.body)?;
    Ok(fcx.fb.finish())
}

impl FuncCx<'_> {
    fn declare(&mut self, name: &str, b: Binding, pos: Pos) -> Result<(), CompileError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.insert(name.to_string(), b).is_some() {
            return Err(CompileError::at(
                pos,
                format!("`{name}` declared twice in this scope"),
            ));
        }
        Ok(())
    }

    fn lookup(&self, name: &str, pos: Pos) -> Result<Binding, CompileError> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Ok(b.clone());
            }
        }
        self.cx
            .globals
            .get(name)
            .cloned()
            .ok_or_else(|| CompileError::at(pos, format!("undeclared variable `{name}`")))
    }

    /// Ensure the current insertion point is an open block (after a
    /// `break`/`return`, further statements are dead but still compiled).
    fn ensure_open(&mut self) {
        if self.fb.current_sealed() {
            let dead = self.fb.new_block();
            self.fb.switch_to(dead);
        }
    }

    #[allow(clippy::wrong_self_convention)]
    fn to_reg(&mut self, op: Operand) -> Reg {
        match op {
            Operand::Reg(r) => r,
            Operand::Imm(_) => {
                let r = self.fb.new_reg();
                self.fb.push(Op::Mov { dst: r, src: op });
                r
            }
        }
    }

    // ---- statements ----

    fn gen_stmts(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            self.ensure_open();
            self.gen_stmt(s)?;
        }
        Ok(())
    }

    fn gen_scoped(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        let r = self.gen_stmts(stmts);
        self.scopes.pop();
        r
    }

    fn gen_stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match &s.kind {
            StmtKind::DeclScalar { name, init } => {
                let value = match init {
                    Some(e) => self.gen_expr(e)?,
                    None => Operand::Imm(0),
                };
                let r = self.fb.new_reg();
                self.fb.push(Op::Mov { dst: r, src: value });
                self.declare(name, Binding::Local(r), s.pos)?;
            }
            StmtKind::DeclArray { name, size } => {
                let words =
                    u32::try_from(*size).map_err(|_| CompileError::at(s.pos, "array too large"))?;
                let offset = self.fb.alloc_frame(words);
                self.declare(name, Binding::LocalArray { offset }, s.pos)?;
            }
            StmtKind::AssignVar { name, value } => {
                let v = self.gen_expr(value)?;
                match self.lookup(name, s.pos)? {
                    Binding::Local(r) => self.fb.push(Op::Mov { dst: r, src: v }),
                    Binding::GlobalScalar { addr } => self.fb.push(Op::St {
                        src: v,
                        base: Operand::Imm(i64::from(addr)),
                        offset: 0,
                    }),
                    Binding::LocalArray { .. } | Binding::GlobalArray { .. } => {
                        return Err(CompileError::at(
                            s.pos,
                            format!("cannot assign to array `{name}` without an index"),
                        ))
                    }
                }
            }
            StmtKind::AssignIndex { base, index, value } => {
                let b = self.gen_expr(base)?;
                let i = self.gen_expr(index)?;
                let v = self.gen_expr(value)?;
                let (base_op, offset) = self.address_of(b, i);
                self.fb.push(Op::St {
                    src: v,
                    base: base_op,
                    offset,
                });
            }
            StmtKind::If { cond, then_, else_ } => {
                let then_bb = self.fb.new_block();
                let join = self.fb.new_block();
                let else_bb = if else_.is_empty() {
                    join
                } else {
                    self.fb.new_block()
                };
                self.gen_cond(cond, then_bb, else_bb)?;
                self.fb.switch_to(then_bb);
                self.gen_scoped(then_)?;
                self.fb.jump_if_open(join);
                if !else_.is_empty() {
                    self.fb.switch_to(else_bb);
                    self.gen_scoped(else_)?;
                    self.fb.jump_if_open(join);
                }
                self.fb.switch_to(join);
            }
            StmtKind::While { cond, body } => {
                let cond_bb = self.fb.new_block();
                let body_bb = self.fb.new_block();
                let exit = self.fb.new_block();
                self.fb.terminate(Term::Jmp(cond_bb));
                self.fb.switch_to(cond_bb);
                self.gen_cond(cond, body_bb, exit)?;
                self.fb.switch_to(body_bb);
                self.breaks.push(exit);
                self.continues.push(cond_bb);
                self.gen_scoped(body)?;
                self.breaks.pop();
                self.continues.pop();
                self.fb.jump_if_open(cond_bb);
                self.fb.switch_to(exit);
            }
            StmtKind::DoWhile { body, cond } => {
                let body_bb = self.fb.new_block();
                let cond_bb = self.fb.new_block();
                let exit = self.fb.new_block();
                self.fb.terminate(Term::Jmp(body_bb));
                self.fb.switch_to(body_bb);
                self.breaks.push(exit);
                self.continues.push(cond_bb);
                self.gen_scoped(body)?;
                self.breaks.pop();
                self.continues.pop();
                self.fb.jump_if_open(cond_bb);
                self.fb.switch_to(cond_bb);
                self.gen_cond(cond, body_bb, exit)?;
                self.fb.switch_to(exit);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.gen_stmt(i)?;
                }
                let cond_bb = self.fb.new_block();
                let body_bb = self.fb.new_block();
                let step_bb = self.fb.new_block();
                let exit = self.fb.new_block();
                self.fb.terminate(Term::Jmp(cond_bb));
                self.fb.switch_to(cond_bb);
                match cond {
                    Some(c) => self.gen_cond(c, body_bb, exit)?,
                    None => self.fb.terminate(Term::Jmp(body_bb)),
                }
                self.fb.switch_to(body_bb);
                self.breaks.push(exit);
                self.continues.push(step_bb);
                self.gen_scoped(body)?;
                self.breaks.pop();
                self.continues.pop();
                self.fb.jump_if_open(step_bb);
                self.fb.switch_to(step_bb);
                if let Some(st) = step {
                    self.gen_stmt(st)?;
                }
                self.fb.jump_if_open(cond_bb);
                self.scopes.pop();
                self.fb.switch_to(exit);
            }
            StmtKind::Switch { scrutinee, arms } => self.gen_switch(s.pos, scrutinee, arms)?,
            StmtKind::Break => {
                let Some(&target) = self.breaks.last() else {
                    return Err(CompileError::at(s.pos, "`break` outside loop or switch"));
                };
                self.fb.terminate(Term::Jmp(target));
            }
            StmtKind::Continue => {
                let Some(&target) = self.continues.last() else {
                    return Err(CompileError::at(s.pos, "`continue` outside loop"));
                };
                self.fb.terminate(Term::Jmp(target));
            }
            StmtKind::Return(v) => {
                let op = match v {
                    Some(e) => Some(self.gen_expr(e)?),
                    None => None,
                };
                self.fb.terminate(Term::Ret(op));
            }
            StmtKind::Expr(e) => {
                if let Expr::Call(name, args, pos) = e {
                    if name == "halt" {
                        if !args.is_empty() {
                            return Err(CompileError::at(*pos, "halt() takes no arguments"));
                        }
                        self.fb.terminate(Term::Halt);
                        return Ok(());
                    }
                }
                self.gen_expr(e)?;
            }
            StmtKind::Block(stmts) => self.gen_scoped(stmts)?,
        }
        Ok(())
    }

    fn gen_switch(
        &mut self,
        pos: Pos,
        scrutinee: &Expr,
        arms: &[SwitchArm],
    ) -> Result<(), CompileError> {
        let scrut = self.gen_expr(scrutinee)?;
        let scrut = self.to_reg(scrut);
        let end = self.fb.new_block();

        // One block per arm, in source order (for fall-through).
        let arm_blocks: Vec<BlockId> = arms.iter().map(|_| self.fb.new_block()).collect();

        let mut cases: Vec<(i64, BlockId)> = Vec::new();
        let mut default_block: Option<BlockId> = None;
        for (arm, &bb) in arms.iter().zip(&arm_blocks) {
            for label in &arm.labels {
                match label {
                    Some(v) => {
                        if cases.iter().any(|&(cv, _)| cv == *v) {
                            return Err(CompileError::at(pos, format!("duplicate case {v}")));
                        }
                        cases.push((*v, bb));
                    }
                    None => {
                        if default_block.is_some() {
                            return Err(CompileError::at(pos, "duplicate default"));
                        }
                        default_block = Some(bb);
                    }
                }
            }
        }
        let default = default_block.unwrap_or(end);

        if cases.is_empty() {
            self.fb.terminate(Term::Jmp(default));
        } else if !table_worthy(&cases) {
            // Compare chain: one conditional branch per case value, the
            // lowering a 1980s compiler used for small/sparse switches.
            for (i, &(v, bb)) in cases.iter().enumerate() {
                if i + 1 < cases.len() {
                    let next_test = self.fb.new_block();
                    self.fb.terminate(Term::Br {
                        cond: Cond::Eq,
                        a: scrut.into(),
                        b: Operand::Imm(v),
                        then_: bb,
                        else_: next_test,
                    });
                    self.fb.switch_to(next_test);
                } else {
                    self.fb.terminate(Term::Br {
                        cond: Cond::Eq,
                        a: scrut.into(),
                        b: Operand::Imm(v),
                        then_: bb,
                        else_: default,
                    });
                }
            }
        } else {
            let min = cases.iter().map(|&(v, _)| v).min().expect("nonempty");
            let max = cases.iter().map(|&(v, _)| v).max().expect("nonempty");
            let span = max
                .checked_sub(min)
                .and_then(|d| d.checked_add(1))
                .ok_or_else(|| CompileError::at(pos, "switch case range overflows"))?;
            if span > MAX_SWITCH_SPAN {
                return Err(CompileError::at(
                    pos,
                    format!("switch spans {span} values (max {MAX_SWITCH_SPAN})"),
                ));
            }
            let sel = if min == 0 {
                scrut
            } else {
                let r = self.fb.new_reg();
                self.fb.push(Op::Alu {
                    op: AluOp::Sub,
                    dst: r,
                    a: scrut.into(),
                    b: Operand::Imm(min),
                });
                r
            };
            let mut targets = vec![default; span as usize];
            for &(v, bb) in &cases {
                targets[(v - min) as usize] = bb;
            }
            self.fb.terminate(Term::Switch {
                sel,
                targets,
                default,
            });
        }

        // Arms with C fall-through; `break` exits to `end`.
        self.breaks.push(end);
        for (i, arm) in arms.iter().enumerate() {
            self.fb.switch_to(arm_blocks[i]);
            self.gen_scoped(&arm.stmts)?;
            let next = arm_blocks.get(i + 1).copied().unwrap_or(end);
            self.fb.jump_if_open(next);
        }
        self.breaks.pop();
        self.fb.switch_to(end);
        Ok(())
    }

    // ---- expressions ----

    /// Combine a base operand and index operand into (base, offset) for a
    /// load/store, materializing an add when the index is dynamic.
    fn address_of(&mut self, base: Operand, index: Operand) -> (Operand, i64) {
        match (base, index) {
            (b, Operand::Imm(i)) => (b, i),
            (Operand::Imm(b), i) => (i, b),
            (b, i) => {
                let r = self.fb.new_reg();
                self.fb.push(Op::Alu {
                    op: AluOp::Add,
                    dst: r,
                    a: b,
                    b: i,
                });
                (Operand::Reg(r), 0)
            }
        }
    }

    fn gen_expr(&mut self, e: &Expr) -> Result<Operand, CompileError> {
        match e {
            Expr::Num(n) => Ok(Operand::Imm(*n)),
            Expr::Str(s) => Ok(Operand::Imm(i64::from(self.cx.intern_string(s)))),
            Expr::Var(name, pos) => match self.lookup(name, *pos)? {
                Binding::Local(r) => Ok(Operand::Reg(r)),
                Binding::GlobalScalar { addr } => {
                    let r = self.fb.new_reg();
                    self.fb.push(Op::Ld {
                        dst: r,
                        base: Operand::Imm(i64::from(addr)),
                        offset: 0,
                    });
                    Ok(Operand::Reg(r))
                }
                Binding::GlobalArray { addr } => Ok(Operand::Imm(i64::from(addr))),
                Binding::LocalArray { offset } => {
                    let r = self.fb.new_reg();
                    self.fb.push(Op::FrameAddr { dst: r, offset });
                    Ok(Operand::Reg(r))
                }
            },
            Expr::Index(b, i) => {
                let base = self.gen_expr(b)?;
                let idx = self.gen_expr(i)?;
                let (base_op, offset) = self.address_of(base, idx);
                let r = self.fb.new_reg();
                self.fb.push(Op::Ld {
                    dst: r,
                    base: base_op,
                    offset,
                });
                Ok(Operand::Reg(r))
            }
            Expr::Unary(op, inner) => {
                let v = self.gen_expr(inner)?;
                if let Operand::Imm(n) = v {
                    return Ok(Operand::Imm(match op {
                        UnOp::Neg => n.wrapping_neg(),
                        UnOp::Not => i64::from(n == 0),
                        UnOp::BitNot => !n,
                    }));
                }
                let r = self.fb.new_reg();
                match op {
                    UnOp::Neg => self.fb.push(Op::Alu {
                        op: AluOp::Sub,
                        dst: r,
                        a: Operand::Imm(0),
                        b: v,
                    }),
                    UnOp::Not => self.fb.push(Op::Cmp {
                        cond: Cond::Eq,
                        dst: r,
                        a: v,
                        b: Operand::Imm(0),
                    }),
                    UnOp::BitNot => self.fb.push(Op::Alu {
                        op: AluOp::Xor,
                        dst: r,
                        a: v,
                        b: Operand::Imm(-1),
                    }),
                }
                Ok(Operand::Reg(r))
            }
            Expr::Binary(op, a, b) => self.gen_binary(*op, a, b),
            Expr::Call(name, args, pos) => self.gen_call(name, args, *pos),
            Expr::Assign(target, value) => self.gen_assign_expr(target, value),
        }
    }

    /// Assignment in expression position; evaluates to the stored value.
    fn gen_assign_expr(&mut self, target: &Expr, value: &Expr) -> Result<Operand, CompileError> {
        let v = self.gen_expr(value)?;
        match target {
            Expr::Var(name, pos) => match self.lookup(name, *pos)? {
                Binding::Local(r) => {
                    self.fb.push(Op::Mov { dst: r, src: v });
                    Ok(Operand::Reg(r))
                }
                Binding::GlobalScalar { addr } => {
                    self.fb.push(Op::St {
                        src: v,
                        base: Operand::Imm(i64::from(addr)),
                        offset: 0,
                    });
                    Ok(v)
                }
                Binding::LocalArray { .. } | Binding::GlobalArray { .. } => Err(CompileError::at(
                    *pos,
                    format!("cannot assign to array `{name}`"),
                )),
            },
            Expr::Index(b, i) => {
                let base = self.gen_expr(b)?;
                let idx = self.gen_expr(i)?;
                let (base_op, offset) = self.address_of(base, idx);
                self.fb.push(Op::St {
                    src: v,
                    base: base_op,
                    offset,
                });
                Ok(v)
            }
            other => Err(CompileError {
                pos: other.pos(),
                msg: "invalid assignment target".into(),
            }),
        }
    }

    fn gen_binary(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Result<Operand, CompileError> {
        if matches!(op, BinOp::LAnd | BinOp::LOr) {
            return self.gen_logical(op, a, b);
        }
        let va = self.gen_expr(a)?;
        let vb = self.gen_expr(b)?;
        // Constant folding.
        if let (Operand::Imm(x), Operand::Imm(y)) = (va, vb) {
            return Ok(Operand::Imm(fold(op, x, y)));
        }
        let r = self.fb.new_reg();
        match bin_to_alu(op) {
            Some(alu) => self.fb.push(Op::Alu {
                op: alu,
                dst: r,
                a: va,
                b: vb,
            }),
            None => {
                let cond = bin_to_cond(op).expect("non-alu binop is a comparison");
                self.fb.push(Op::Cmp {
                    cond,
                    dst: r,
                    a: va,
                    b: vb,
                });
            }
        }
        Ok(Operand::Reg(r))
    }

    /// Short-circuit `&&` / `||` in value position: produces 0 or 1.
    fn gen_logical(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Result<Operand, CompileError> {
        let r = self.fb.new_reg();
        let rhs_bb = self.fb.new_block();
        let short_bb = self.fb.new_block();
        let end = self.fb.new_block();
        match op {
            BinOp::LAnd => self.gen_cond(a, rhs_bb, short_bb)?,
            BinOp::LOr => self.gen_cond(a, short_bb, rhs_bb)?,
            _ => unreachable!("gen_logical only handles && and ||"),
        }
        self.fb.switch_to(rhs_bb);
        let vb = self.gen_expr(b)?;
        self.fb.push(Op::Cmp {
            cond: Cond::Ne,
            dst: r,
            a: vb,
            b: Operand::Imm(0),
        });
        self.fb.terminate(Term::Jmp(end));
        self.fb.switch_to(short_bb);
        let short_val = i64::from(op == BinOp::LOr);
        self.fb.push(Op::Mov {
            dst: r,
            src: Operand::Imm(short_val),
        });
        self.fb.terminate(Term::Jmp(end));
        self.fb.switch_to(end);
        Ok(Operand::Reg(r))
    }

    fn gen_call(&mut self, name: &str, args: &[Expr], pos: Pos) -> Result<Operand, CompileError> {
        match name {
            "getc" => {
                let [stream] = args else {
                    return Err(CompileError::at(pos, "getc(stream) takes one argument"));
                };
                let stream = self.stream_operand(stream, pos)?;
                let r = self.fb.new_reg();
                self.fb.push(Op::In { dst: r, stream });
                Ok(Operand::Reg(r))
            }
            "putc" => {
                let [stream, value] = args else {
                    return Err(CompileError::at(
                        pos,
                        "putc(stream, byte) takes two arguments",
                    ));
                };
                let stream = self.stream_operand(stream, pos)?;
                let v = self.gen_expr(value)?;
                self.fb.push(Op::Out { src: v, stream });
                Ok(Operand::Imm(0))
            }
            "halt" => Err(CompileError::at(
                pos,
                "halt() is a statement, not an expression",
            )),
            _ => {
                let Some(&(id, nparams)) = self.cx.funcs.get(name) else {
                    return Err(CompileError::at(pos, format!("unknown function `{name}`")));
                };
                if args.len() != nparams {
                    return Err(CompileError::at(
                        pos,
                        format!("`{name}` expects {nparams} arguments, got {}", args.len()),
                    ));
                }
                let mut arg_regs = Vec::with_capacity(args.len());
                for a in args {
                    let v = self.gen_expr(a)?;
                    arg_regs.push(self.to_reg(v));
                }
                let r = self.fb.new_reg();
                self.fb.push(Op::Call {
                    func: id,
                    args: arg_regs,
                    dst: Some(r),
                });
                Ok(Operand::Reg(r))
            }
        }
    }

    /// Streams are ordinary expressions (masked to 0..8 at run time),
    /// but constant streams outside the valid range are compile errors.
    fn stream_operand(&mut self, e: &Expr, pos: Pos) -> Result<Operand, CompileError> {
        match self.gen_expr(e)? {
            Operand::Imm(n) if !(0..=7).contains(&n) => {
                Err(CompileError::at(pos, "stream must be in 0..=7"))
            }
            op => Ok(op),
        }
    }

    /// Generate a conditional jump on `e` to `then_bb` (nonzero) or
    /// `else_bb` (zero), folding comparisons into compare-and-branch and
    /// short-circuiting `&&`/`||`/`!`.
    fn gen_cond(
        &mut self,
        e: &Expr,
        then_bb: BlockId,
        else_bb: BlockId,
    ) -> Result<(), CompileError> {
        match e {
            Expr::Binary(op, a, b) if op.is_comparison() => {
                let va = self.gen_expr(a)?;
                let vb = self.gen_expr(b)?;
                if let (Operand::Imm(x), Operand::Imm(y)) = (va, vb) {
                    let cond = bin_to_cond(*op).expect("comparison");
                    let t = if cond.eval(x, y) { then_bb } else { else_bb };
                    self.fb.terminate(Term::Jmp(t));
                    return Ok(());
                }
                self.fb.terminate(Term::Br {
                    cond: bin_to_cond(*op).expect("comparison"),
                    a: va,
                    b: vb,
                    then_: then_bb,
                    else_: else_bb,
                });
                Ok(())
            }
            Expr::Binary(BinOp::LAnd, a, b) => {
                let mid = self.fb.new_block();
                self.gen_cond(a, mid, else_bb)?;
                self.fb.switch_to(mid);
                self.gen_cond(b, then_bb, else_bb)
            }
            Expr::Binary(BinOp::LOr, a, b) => {
                let mid = self.fb.new_block();
                self.gen_cond(a, then_bb, mid)?;
                self.fb.switch_to(mid);
                self.gen_cond(b, then_bb, else_bb)
            }
            Expr::Unary(UnOp::Not, inner) => self.gen_cond(inner, else_bb, then_bb),
            Expr::Num(n) => {
                let t = if *n != 0 { then_bb } else { else_bb };
                self.fb.terminate(Term::Jmp(t));
                Ok(())
            }
            _ => {
                let v = self.gen_expr(e)?;
                if let Operand::Imm(n) = v {
                    let t = if n != 0 { then_bb } else { else_bb };
                    self.fb.terminate(Term::Jmp(t));
                    return Ok(());
                }
                self.fb.terminate(Term::Br {
                    cond: Cond::Ne,
                    a: v,
                    b: Operand::Imm(0),
                    then_: then_bb,
                    else_: else_bb,
                });
                Ok(())
            }
        }
    }
}

/// Should this case set use a jump table (vs a compare chain)?
fn table_worthy(cases: &[(i64, BlockId)]) -> bool {
    if cases.len() < MIN_TABLE_CASES {
        return false;
    }
    let min = cases.iter().map(|&(v, _)| v).min().expect("nonempty");
    let max = cases.iter().map(|&(v, _)| v).max().expect("nonempty");
    let span = (max - min + 1) as f64;
    cases.len() as f64 / span >= MIN_TABLE_DENSITY
}

fn bin_to_alu(op: BinOp) -> Option<AluOp> {
    Some(match op {
        BinOp::Add => AluOp::Add,
        BinOp::Sub => AluOp::Sub,
        BinOp::Mul => AluOp::Mul,
        BinOp::Div => AluOp::Div,
        BinOp::Rem => AluOp::Rem,
        BinOp::BitAnd => AluOp::And,
        BinOp::BitOr => AluOp::Or,
        BinOp::BitXor => AluOp::Xor,
        BinOp::Shl => AluOp::Shl,
        BinOp::Shr => AluOp::Shr,
        _ => return None,
    })
}

fn bin_to_cond(op: BinOp) -> Option<Cond> {
    Some(match op {
        BinOp::Eq => Cond::Eq,
        BinOp::Ne => Cond::Ne,
        BinOp::Lt => Cond::Lt,
        BinOp::Le => Cond::Le,
        BinOp::Gt => Cond::Gt,
        BinOp::Ge => Cond::Ge,
        _ => return None,
    })
}

fn fold(op: BinOp, x: i64, y: i64) -> i64 {
    match bin_to_alu(op) {
        Some(alu) => alu.eval(x, y),
        None => match bin_to_cond(op) {
            Some(c) => i64::from(c.eval(x, y)),
            None => unreachable!("logical ops handled before folding"),
        },
    }
}
