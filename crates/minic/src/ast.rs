//! Abstract syntax tree for MiniC.
//!
//! MiniC is a small C-like language: 64-bit integers only, global and
//! local scalars and arrays, functions, `if`/`while`/`for`/`do`/`switch`,
//! short-circuit logical operators, string literals (which evaluate to
//! the address of NUL-terminated global data), and two I/O builtins
//! (`getc(stream)` / `putc(stream, byte)`).

use crate::token::Pos;

/// A top-level item.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// A global scalar: `int x;` or `int x = 3;`.
    GlobalScalar {
        /// Variable name.
        name: String,
        /// Initial value (0 when omitted).
        init: i64,
        /// Source position.
        pos: Pos,
    },
    /// A global array: `int a[4];`, `int a[] = {1, 2};`.
    GlobalArray {
        /// Variable name.
        name: String,
        /// Number of elements.
        size: usize,
        /// Leading initial values (zero padded).
        init: Vec<i64>,
        /// Source position.
        pos: Pos,
    },
    /// A function definition.
    Func(Func),
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct Func {
    /// Function name.
    pub name: String,
    /// Parameter names (all parameters are `int`).
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source position of the definition.
    pub pos: Pos,
}

/// A statement with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    /// What the statement does.
    pub kind: StmtKind,
    /// Source position.
    pub pos: Pos,
}

/// Statement kinds.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // variant fields are described in variant docs
pub enum StmtKind {
    /// `int x;` / `int x = e;` — local scalar declaration.
    DeclScalar { name: String, init: Option<Expr> },
    /// `int a[N];` — local array declaration (no initializer).
    DeclArray { name: String, size: usize },
    /// `x = e;`, `x += e;`, `x++;` (the latter desugars to `x += 1`).
    AssignVar { name: String, value: Expr },
    /// `b[i] = e;`, `b[i] += e;`, `b[i]++;` (desugared like above).
    AssignIndex {
        base: Expr,
        index: Expr,
        value: Expr,
    },
    /// `if (c) { … } else { … }`
    If {
        cond: Expr,
        then_: Vec<Stmt>,
        else_: Vec<Stmt>,
    },
    /// `while (c) { … }`
    While { cond: Expr, body: Vec<Stmt> },
    /// `do { … } while (c);`
    DoWhile { body: Vec<Stmt>, cond: Expr },
    /// `for (init; cond; step) { … }` (each clause optional).
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Vec<Stmt>,
    },
    /// `switch (e) { case N: … default: … }` with C fall-through.
    Switch {
        scrutinee: Expr,
        arms: Vec<SwitchArm>,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return;` / `return e;`
    Return(Option<Expr>),
    /// An expression evaluated for side effects (calls).
    Expr(Expr),
    /// `{ … }` — a nested scope.
    Block(Vec<Stmt>),
}

/// One arm of a `switch`. Arms fall through in source order unless a
/// `break` intervenes, exactly like C.
#[derive(Clone, Debug, PartialEq)]
pub struct SwitchArm {
    /// Case labels for this arm (`None` marks `default`). Multiple
    /// consecutive labels (`case 1: case 2:`) share one arm.
    pub labels: Vec<Option<i64>>,
    /// The arm's statements.
    pub stmts: Vec<Stmt>,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // variant fields are described in variant docs
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// String literal: evaluates to the address of the NUL-terminated
    /// copy placed in global data (one word per byte).
    Str(Vec<u8>),
    /// Variable reference; arrays evaluate to their base address.
    Var(String, Pos),
    /// `base[index]` — a load from `base + index`.
    Index(Box<Expr>, Box<Expr>),
    /// Unary operator application.
    Unary(UnOp, Box<Expr>),
    /// Binary operator application (`&&`/`||` short-circuit).
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Function or builtin call.
    Call(String, Vec<Expr>, Pos),
    /// Assignment expression `(x = e)` / `(a[i] = e)`; evaluates to the
    /// assigned value. The target must be a variable or index expression.
    Assign(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Best-effort source position (for diagnostics).
    #[must_use]
    pub fn pos(&self) -> Option<Pos> {
        match self {
            Expr::Var(_, p) | Expr::Call(_, _, p) => Some(*p),
            Expr::Index(b, _) => b.pos(),
            Expr::Unary(_, e) => e.pos(),
            Expr::Binary(_, a, b) => a.pos().or_else(|| b.pos()),
            Expr::Assign(t, v) => t.pos().or_else(|| v.pos()),
            Expr::Num(_) | Expr::Str(_) => None,
        }
    }
}

/// Unary operators.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!e` is 1 when `e == 0`).
    Not,
    /// Bitwise complement.
    BitNot,
}

/// Binary operators.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Short-circuit logical and.
    LAnd,
    /// Short-circuit logical or.
    LOr,
}

impl BinOp {
    /// Is this a comparison producing 0/1?
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}
