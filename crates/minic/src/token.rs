//! Tokens and the MiniC lexer.

use std::fmt;

/// A source position (1-based line and column), carried through to
/// compile errors.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Integer literal (decimal, hex `0x…`, or char `'c'`).
    Num(i64),
    /// String literal (escapes already processed).
    Str(Vec<u8>),
    /// Identifier.
    Ident(String),
    /// Keyword.
    Kw(Kw),
    /// Punctuation / operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Num(n) => write!(f, "{n}"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Kw(k) => write!(f, "`{k}`"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

macro_rules! keywords {
    ($($variant:ident => $text:literal),* $(,)?) => {
        /// MiniC keywords.
        #[derive(Copy, Clone, PartialEq, Eq, Debug)]
        #[allow(missing_docs)]
        pub enum Kw { $($variant),* }

        impl Kw {
            fn from_str(s: &str) -> Option<Kw> {
                match s { $($text => Some(Kw::$variant),)* _ => None }
            }
        }

        impl fmt::Display for Kw {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(match self { $(Kw::$variant => $text),* })
            }
        }
    };
}

keywords! {
    Int => "int", Void => "void", If => "if", Else => "else",
    While => "while", For => "for", Do => "do", Break => "break",
    Continue => "continue", Return => "return", Switch => "switch",
    Case => "case", Default => "default",
}

macro_rules! puncts {
    ($($variant:ident => $text:literal),* $(,)?) => {
        /// Punctuation and operators.
        #[derive(Copy, Clone, PartialEq, Eq, Debug)]
        #[allow(missing_docs)]
        pub enum Punct { $($variant),* }

        impl fmt::Display for Punct {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(match self { $(Punct::$variant => $text),* })
            }
        }
    };
}

puncts! {
    LParen => "(", RParen => ")", LBrace => "{", RBrace => "}",
    LBracket => "[", RBracket => "]", Semi => ";", Comma => ",",
    Colon => ":", Assign => "=", Plus => "+", Minus => "-",
    Star => "*", Slash => "/", Percent => "%", Amp => "&",
    Pipe => "|", Caret => "^", Tilde => "~", Bang => "!",
    Shl => "<<", Shr => ">>", EqEq => "==", NotEq => "!=",
    Lt => "<", Le => "<=", Gt => ">", Ge => ">=",
    AndAnd => "&&", OrOr => "||",
    PlusEq => "+=", MinusEq => "-=", PlusPlus => "++", MinusMinus => "--",
}

/// A lexical error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Where the error occurred.
    pub pos: Pos,
    /// Description.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenize MiniC source. Returns tokens paired with their positions;
/// the final element is always [`Tok::Eof`].
///
/// # Errors
/// Returns [`LexError`] on malformed literals, unterminated comments or
/// strings, and unknown characters.
pub fn lex(src: &str) -> Result<Vec<(Tok, Pos)>, LexError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if b[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < b.len() {
        let pos = Pos { line, col };
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                bump!();
                bump!();
                loop {
                    if i + 1 >= b.len() {
                        return Err(LexError {
                            pos,
                            msg: "unterminated block comment".into(),
                        });
                    }
                    if b[i] == b'*' && b[i + 1] == b'/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
            }
            b'0'..=b'9' => {
                let mut v: i64 = 0;
                if c == b'0' && i + 1 < b.len() && (b[i + 1] | 32) == b'x' {
                    bump!();
                    bump!();
                    let start = i;
                    while i < b.len() && b[i].is_ascii_hexdigit() {
                        v = v.wrapping_mul(16)
                            + i64::from((b[i] as char).to_digit(16).unwrap_or(0));
                        bump!();
                    }
                    if i == start {
                        return Err(LexError {
                            pos,
                            msg: "empty hex literal".into(),
                        });
                    }
                } else {
                    while i < b.len() && b[i].is_ascii_digit() {
                        v = v.wrapping_mul(10) + i64::from(b[i] - b'0');
                        bump!();
                    }
                }
                if i < b.len() && (b[i].is_ascii_alphabetic() || b[i] == b'_') {
                    return Err(LexError {
                        pos,
                        msg: "identifier starts with digit".into(),
                    });
                }
                out.push((Tok::Num(v), pos));
            }
            b'\'' => {
                bump!();
                if i >= b.len() {
                    return Err(LexError {
                        pos,
                        msg: "unterminated char literal".into(),
                    });
                }
                let v = if b[i] == b'\\' {
                    bump!();
                    if i >= b.len() {
                        return Err(LexError {
                            pos,
                            msg: "unterminated char literal".into(),
                        });
                    }
                    let e = escape(b[i]).ok_or_else(|| LexError {
                        pos,
                        msg: "bad escape in char".into(),
                    })?;
                    bump!();
                    e
                } else {
                    let v = b[i];
                    bump!();
                    v
                };
                if i >= b.len() || b[i] != b'\'' {
                    return Err(LexError {
                        pos,
                        msg: "unterminated char literal".into(),
                    });
                }
                bump!();
                out.push((Tok::Num(i64::from(v)), pos));
            }
            b'"' => {
                bump!();
                let mut s = Vec::new();
                loop {
                    if i >= b.len() {
                        return Err(LexError {
                            pos,
                            msg: "unterminated string".into(),
                        });
                    }
                    match b[i] {
                        b'"' => {
                            bump!();
                            break;
                        }
                        b'\\' => {
                            bump!();
                            if i >= b.len() {
                                return Err(LexError {
                                    pos,
                                    msg: "unterminated string".into(),
                                });
                            }
                            let e = escape(b[i]).ok_or_else(|| LexError {
                                pos,
                                msg: "bad escape in string".into(),
                            })?;
                            s.push(e);
                            bump!();
                        }
                        c => {
                            s.push(c);
                            bump!();
                        }
                    }
                }
                out.push((Tok::Str(s), pos));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    bump!();
                }
                let word = std::str::from_utf8(&b[start..i]).expect("ascii ident");
                match Kw::from_str(word) {
                    Some(k) => out.push((Tok::Kw(k), pos)),
                    None => out.push((Tok::Ident(word.to_string()), pos)),
                }
            }
            _ => {
                let two = if i + 1 < b.len() {
                    &b[i..i + 2]
                } else {
                    &b[i..i + 1]
                };
                let p2 = match two {
                    b"<<" => Some(Punct::Shl),
                    b">>" => Some(Punct::Shr),
                    b"==" => Some(Punct::EqEq),
                    b"!=" => Some(Punct::NotEq),
                    b"<=" => Some(Punct::Le),
                    b">=" => Some(Punct::Ge),
                    b"&&" => Some(Punct::AndAnd),
                    b"||" => Some(Punct::OrOr),
                    b"+=" => Some(Punct::PlusEq),
                    b"-=" => Some(Punct::MinusEq),
                    b"++" => Some(Punct::PlusPlus),
                    b"--" => Some(Punct::MinusMinus),
                    _ => None,
                };
                if let Some(p) = p2 {
                    bump!();
                    bump!();
                    out.push((Tok::Punct(p), pos));
                    continue;
                }
                let p1 = match c {
                    b'(' => Punct::LParen,
                    b')' => Punct::RParen,
                    b'{' => Punct::LBrace,
                    b'}' => Punct::RBrace,
                    b'[' => Punct::LBracket,
                    b']' => Punct::RBracket,
                    b';' => Punct::Semi,
                    b',' => Punct::Comma,
                    b':' => Punct::Colon,
                    b'=' => Punct::Assign,
                    b'+' => Punct::Plus,
                    b'-' => Punct::Minus,
                    b'*' => Punct::Star,
                    b'/' => Punct::Slash,
                    b'%' => Punct::Percent,
                    b'&' => Punct::Amp,
                    b'|' => Punct::Pipe,
                    b'^' => Punct::Caret,
                    b'~' => Punct::Tilde,
                    b'!' => Punct::Bang,
                    b'<' => Punct::Lt,
                    b'>' => Punct::Gt,
                    other => {
                        return Err(LexError {
                            pos,
                            msg: format!("unexpected character {:?}", other as char),
                        })
                    }
                };
                bump!();
                out.push((Tok::Punct(p1), pos));
            }
        }
    }
    out.push((Tok::Eof, Pos { line, col }));
    Ok(out)
}

fn escape(c: u8) -> Option<u8> {
    Some(match c {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        b'\\' => b'\\',
        b'\'' => b'\'',
        b'"' => b'"',
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            toks("0 42 0x1f"),
            vec![Tok::Num(0), Tok::Num(42), Tok::Num(31), Tok::Eof]
        );
    }

    #[test]
    fn lexes_char_literals() {
        assert_eq!(
            toks("'a' '\\n' '\\0'"),
            vec![Tok::Num(97), Tok::Num(10), Tok::Num(0), Tok::Eof]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            toks(r#""hi\n""#),
            vec![Tok::Str(b"hi\n".to_vec()), Tok::Eof]
        );
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            toks("int foo while_x"),
            vec![
                Tok::Kw(Kw::Int),
                Tok::Ident("foo".into()),
                Tok::Ident("while_x".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators_greedily() {
        assert_eq!(
            toks("<= << = == ++"),
            vec![
                Tok::Punct(Punct::Le),
                Tok::Punct(Punct::Shl),
                Tok::Punct(Punct::Assign),
                Tok::Punct(Punct::EqEq),
                Tok::Punct(Punct::PlusPlus),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            toks("1 // line\n2 /* block\nmore */ 3"),
            vec![Tok::Num(1), Tok::Num(2), Tok::Num(3), Tok::Eof]
        );
    }

    #[test]
    fn tracks_positions_across_lines() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].1, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].1, Pos { line: 2, col: 3 });
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex("/* abc").is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(lex("@").is_err());
    }

    #[test]
    fn rejects_ident_starting_with_digit() {
        assert!(lex("1abc").is_err());
    }
}
