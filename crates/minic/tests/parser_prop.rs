//! Robustness properties of the MiniC front end: no input can panic the
//! lexer/parser/compiler, and lexing is total over printable streams.
//!
//! Driven by the seeded `branchlab_telemetry::Rng` (the build has no
//! crates.io access, so no proptest): each case runs many independent
//! randomized trials from fixed seeds, which keeps failures
//! reproducible by construction.

use branchlab_telemetry::Rng;

/// A printable-ish random string: mostly ASCII source characters with
/// occasional arbitrary Unicode sprinkled in.
fn random_string(rng: &mut Rng, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.9) {
                char::from(rng.gen_range(32u8..127))
            } else {
                char::from_u32(rng.gen_range(0u32..0x11_0000)).unwrap_or('\u{fffd}')
            }
        })
        .collect()
}

#[test]
fn compile_never_panics_on_arbitrary_strings() {
    for seed in 0..200u64 {
        let src = random_string(&mut Rng::seed_from_u64(seed), 120);
        // Result is Ok or Err — never a panic.
        let _ = branchlab_minic::compile(&src);
    }
}

#[test]
fn lexer_never_panics_on_arbitrary_bytes() {
    for seed in 0..200u64 {
        let mut rng = Rng::seed_from_u64(0xbeef ^ seed);
        let len = rng.gen_range(0..200usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = branchlab_minic::lex(s);
        }
    }
}

#[test]
fn lexer_roundtrips_integer_literals() {
    for seed in 0..100u64 {
        let n = Rng::seed_from_u64(seed).gen_range(0i64..1_000_000_000);
        let toks = branchlab_minic::lex(&n.to_string()).unwrap();
        assert_eq!(toks.len(), 2); // Num + Eof
        match &toks[0].0 {
            branchlab_minic::token::Tok::Num(v) => assert_eq!(*v, n),
            other => panic!("expected Num, got {other:?}"),
        }
    }
}

#[test]
fn parser_accepts_all_rendered_expression_trees() {
    // Build a nested arithmetic expression and check it parses.
    fn render(depth: u32, seed: u64) -> String {
        if depth == 0 {
            return format!("{}", seed % 100);
        }
        let op = ["+", "-", "*", "/", "%", "<", "==", "&&"][(seed % 8) as usize];
        format!(
            "({} {op} {})",
            render(depth - 1, seed / 3),
            render(depth - 1, seed / 7)
        )
    }
    for trial in 0..100u64 {
        let mut rng = Rng::seed_from_u64(trial);
        let depth = rng.gen_range(0..4u32);
        let seed = rng.next_u64();
        let src = format!("int main() {{ return {}; }}", render(depth, seed));
        assert!(branchlab_minic::parse(&src).is_ok(), "{src}");
    }
}
