//! Robustness properties of the MiniC front end: no input can panic the
//! lexer/parser/compiler, and lexing is total over printable streams.

use proptest::prelude::*;

proptest! {
    #[test]
    fn compile_never_panics_on_arbitrary_strings(src in "\\PC*") {
        // Result is Ok or Err — never a panic.
        let _ = branchlab_minic::compile(&src);
    }

    #[test]
    fn lexer_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = branchlab_minic::lex(s);
        }
    }

    #[test]
    fn lexer_roundtrips_integer_literals(n in 0i64..1_000_000_000) {
        let toks = branchlab_minic::lex(&n.to_string()).unwrap();
        prop_assert_eq!(toks.len(), 2); // Num + Eof
        match &toks[0].0 {
            branchlab_minic::token::Tok::Num(v) => prop_assert_eq!(*v, n),
            other => prop_assert!(false, "expected Num, got {:?}", other),
        }
    }

    #[test]
    fn parser_accepts_all_rendered_expression_trees(depth in 0u32..4, seed in any::<u64>()) {
        // Build a nested arithmetic expression and check it parses.
        fn render(depth: u32, seed: u64) -> String {
            if depth == 0 {
                return format!("{}", seed % 100);
            }
            let op = ["+", "-", "*", "/", "%", "<", "==", "&&"][(seed % 8) as usize];
            format!("({} {op} {})", render(depth - 1, seed / 3), render(depth - 1, seed / 7))
        }
        let src = format!("int main() {{ return {}; }}", render(depth, seed));
        prop_assert!(branchlab_minic::parse(&src).is_ok(), "{src}");
    }
}
