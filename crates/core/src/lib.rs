//! # branchlab
//!
//! A full reproduction of **Hwu, Conte & Chang, “Comparing Software and
//! Hardware Schemes For Reducing the Cost of Branches” (ISCA 1989)** as
//! a Rust library — the three branch cost-reduction schemes (SBTB, CBTB,
//! Forward Semantic), every substrate they need (a profiling compiler
//! for a small C language, an IR interpreter with branch-event tracing,
//! trace selection and forward-slot filling, a parametric pipeline cost
//! model and cycle simulator), a 12-program benchmark suite standing in
//! for the paper's Unix workloads, and a harness that regenerates every
//! table and figure.
//!
//! ## Crate map
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`ir`] | `branchlab-ir` | CFG + linear IR, layout plans, lowering |
//! | [`minic`] | `branchlab-minic` | The MiniC compiler front end |
//! | [`interp`] | `branchlab-interp` | Interpreter + branch-event stream |
//! | [`trace`] | `branchlab-trace` | Event types, Table 1/2 statistics |
//! | [`predict`] | `branchlab-predict` | SBTB, CBTB, FS bits, baselines |
//! | [`profile`] | `branchlab-profile` | Probe builds, edge/site profiles |
//! | [`fsem`] | `branchlab-fsem` | Trace selection, forward slots, Table 5 |
//! | [`pipeline`] | `branchlab-pipeline` | Cost model + cycle simulator |
//! | [`workloads`] | `branchlab-workloads` | The 12 MiniC benchmarks |
//! | [`experiments`] | `branchlab-experiments` | Tables 1–5, Figures 3–4, ablations |
//! | [`server`] | `branchlab-server` | `branchlabd`: sweeps as an HTTP service |
//! | [`telemetry`] | `branchlab-telemetry` | Metrics, span timers, probes, manifests |
//!
//! ## Quickstart
//!
//! ```
//! use branchlab::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Compile a program with the bundled C-like compiler.
//! let module = branchlab::minic::compile(
//!     "int main() { int i; int s = 0; for (i = 0; i < 100; i++) { s += i; } return s; }",
//! )?;
//!
//! // 2. Profile it, build the Forward Semantic binary, and compare
//! //    prediction accuracy against the 256-entry CBTB.
//! let profile = branchlab::profile::profile_module(&module, &[vec![]])?;
//! let fs_bin = branchlab::fsem::fs_program(&module, &profile, FsConfig::with_slots(2))?;
//!
//! let mut cbtb = Evaluator::new(Cbtb::paper());
//! branchlab::interp::run(&branchlab::ir::lower(&module)?, &Default::default(), &[], &mut cbtb)?;
//!
//! let mut fs = Evaluator::new(LikelyBit);
//! branchlab::interp::run(&fs_bin, &Default::default(), &[], &mut fs)?;
//!
//! // 3. Put both accuracies through the paper's cost model.
//! let flush = FlushModel { l_bar: 1.0, m_bar: 1.0 };
//! let cost_cbtb = branch_cost(cbtb.stats.accuracy(), 1, &flush);
//! let cost_fs = branch_cost(fs.stats.accuracy(), 1, &flush);
//! assert!(cost_fs > 1.0 && cost_cbtb > 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use branchlab_experiments as experiments;
pub use branchlab_fsem as fsem;
pub use branchlab_interp as interp;
pub use branchlab_ir as ir;
pub use branchlab_minic as minic;
pub use branchlab_pipeline as pipeline;
pub use branchlab_predict as predict;
pub use branchlab_profile as profile;
pub use branchlab_server as server;
pub use branchlab_telemetry as telemetry;
pub use branchlab_trace as trace;
pub use branchlab_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use branchlab_experiments::{
        run_benchmark, run_suite, run_suite_supervised, ExperimentConfig, FaultConfig, SuiteResult,
        SupervisorConfig,
    };
    pub use branchlab_fsem::{fs_program, FsConfig};
    pub use branchlab_interp::{run, run_simple, ExecConfig};
    pub use branchlab_ir::{lower, lower_with_plan, LayoutPlan, Module, Program};
    pub use branchlab_minic::compile;
    pub use branchlab_pipeline::{branch_cost, CycleSim, FlushModel, PipelineConfig};
    pub use branchlab_predict::{
        BranchPredictor, Cbtb, Evaluator, ForwardSemantic, LikelyBit, Sbtb,
    };
    pub use branchlab_profile::{profile_module, Profile};
    pub use branchlab_trace::{BranchEvent, BranchKind, BranchMix, ExecHooks};
    pub use branchlab_workloads::{benchmark, Benchmark, Scale, SUITE};
}
