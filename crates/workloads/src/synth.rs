//! Synthetic large-code-footprint workload generators.
//!
//! The 1989 suite tops out at a few hundred static branch sites — small
//! enough that the paper's 256-entry BTB holds every hot branch. Server
//! workloads do not look like that: request routing and megamorphic
//! dispatch spread execution across hundreds to thousands of branch
//! sites, which is exactly the regime multi-level BTB hierarchies and
//! fetch-directed prefetching were built for.
//!
//! This module *generates* MiniC sources with seeded-deterministic
//! branch-site populations:
//!
//! * [`dispatch_source`] — megamorphic dispatch: a dense `switch` over
//!   N request types (lowered to an indirect jump table) fanning out to
//!   N generated handler functions, each with its own loop/conditional
//!   structure.
//! * [`router_source`] — server request routing: a generated binary
//!   decision tree over route ids (N−1 internal compare branches) with
//!   a distinct action body at each of the N leaves.
//!
//! Generation is deterministic in the seed alone, so the committed
//! benchmarks ([`suite`]) have stable sources — and therefore stable
//! `program_hash` trace-cache keys — across processes and sessions.
//! Different seeds produce different handler constants, body shapes,
//! and tree splits: a different branch-site population.

use std::sync::OnceLock;

use branchlab_telemetry::Rng;

use crate::Benchmark;

/// Handler count of the committed `dispatch` benchmark.
pub const DISPATCH_HANDLERS: usize = 96;
/// Route count of the committed `router` benchmark.
pub const ROUTER_ROUTES: usize = 96;

/// Construction seed of the committed `dispatch` source.
pub const DISPATCH_SEED: u64 = 0x1989_0001;
/// Construction seed of the committed `router` source.
pub const ROUTER_SEED: u64 = 0x1989_0002;

/// Generate the megamorphic-dispatch MiniC source: `handlers` request
/// handlers behind one dense `switch` (an indirect jump table after
/// lowering). Deterministic in `(seed, handlers)`.
///
/// # Panics
/// Panics when `handlers` is outside `8..=250` (request types must fit
/// in one input byte with room for the default arm).
#[must_use]
pub fn dispatch_source(seed: u64, handlers: usize) -> String {
    assert!((8..=250).contains(&handlers), "handlers must be in 8..=250");
    let mut rng = Rng::seed_from_u64(seed ^ 0xd15b_a7c4);
    let mut src = String::with_capacity(64 * 1024);
    src.push_str("int stats[256];\n\n");
    for i in 0..handlers {
        emit_handler(&mut src, &mut rng, i);
    }
    src.push_str(
        "int main() {\n    int t; int p; int r = 0; int n = 0;\n    t = getc(0);\n    while (t != -1) {\n        p = getc(0);\n        if (p == -1) { p = 0; }\n        switch (t) {\n",
    );
    for i in 0..handlers {
        src.push_str(&format!(
            "            case {i}: r = (r + handle_{i}(p, r)) % 1000003; stats[{i}]++; break;\n"
        ));
    }
    src.push_str(
        "            default: r = (r + 1) % 1000003; break;\n        }\n        n++;\n        t = getc(0);\n    }\n    print_num(1, r); putc(1, '\\n');\n    print_num(1, n); putc(1, '\\n');\n    return n;\n}\n",
    );
    src
}

/// Emit one generated handler: a bounded loop whose body shape and
/// constants are drawn from `rng`, so each handler is a distinct set of
/// branch sites.
fn emit_handler(src: &mut String, rng: &mut Rng, idx: usize) {
    let c = rng.gen_range(1..=9973u64);
    let m = rng.gen_range(3..=17u64);
    let mask = [3u64, 7, 15, 31][rng.gen_range(0..4u64) as usize];
    let t1 = rng.gen_range(0..=mask);
    let a1 = rng.gen_range(1..=255u64);
    // Odd, so the shape-2 `while ((v & mask) > t1)` loop walks every
    // residue class mod the power-of-two mask and always terminates.
    let a2 = rng.gen_range(0..=127u64) * 2 + 1;
    let d = rng.gen_range(2..=7u64);
    let shape = rng.gen_range(0..3u64);
    src.push_str(&format!(
        "int handle_{idx}(int x, int s) {{\n    int j; int v = s + {c};\n    int n = (x % {m}) + 1;\n    for (j = 0; j < n; j++) {{\n"
    ));
    match shape {
        0 => src.push_str(&format!(
            "        if ((v & {mask}) < {t1}) {{ v = v + {a1}; }} else {{ v = v - {a2}; }}\n        if (j % {d} == 0) {{ v = v + x; }}\n"
        )),
        1 => src.push_str(&format!(
            "        if ((v & {mask}) == {t1}) {{ v = v + {a1}; }} else if ((v & 1) == 0) {{ v = v - {a2}; }} else {{ v = v + j; }}\n"
        )),
        _ => src.push_str(&format!(
            "        while ((v & {mask}) > {t1}) {{ v = v - {a2}; }}\n        if (j % {d} != 0) {{ v = v + {a1} + x; }}\n"
        )),
    }
    src.push_str("    }\n    if (v < 0) { v = 0 - v; }\n    return v % 65521;\n}\n\n");
}

/// Generate the request-router MiniC source: a binary decision tree
/// over `routes` route ids with a generated action body at each leaf.
/// Deterministic in `(seed, routes)`.
///
/// # Panics
/// Panics when `routes` is outside `8..=250`.
#[must_use]
pub fn router_source(seed: u64, routes: usize) -> String {
    assert!((8..=250).contains(&routes), "routes must be in 8..=250");
    let mut rng = Rng::seed_from_u64(seed ^ 0x40c7_e12f);
    let mut src = String::with_capacity(64 * 1024);
    src.push_str("int mcount[4];\nint rcount[256];\n\nint route(int m, int a, int b) {\n    int v = b + 17;\n");
    emit_route_tree(&mut src, &mut rng, 0, routes, 1);
    src.push_str("}\n\n");
    src.push_str(&format!(
        "int main() {{\n    int m; int a; int b; int r = 0; int n = 0;\n    m = getc(0);\n    while (m != -1) {{\n        a = getc(0);\n        b = getc(0);\n        if (a == -1) {{ a = 0; }}\n        if (b == -1) {{ b = 0; }}\n        mcount[m % 4]++;\n        r = (r + route(m % 4, a % {routes}, b)) % 1000003;\n        n++;\n        m = getc(0);\n    }}\n    print_num(1, r); putc(1, '\\n');\n    print_num(1, n); putc(1, '\\n');\n    return n;\n}}\n"
    ));
    src
}

/// Emit the `[lo, hi)` subtree of the route decision tree: an
/// rng-skewed split per internal node, a generated action per leaf.
fn emit_route_tree(src: &mut String, rng: &mut Rng, lo: usize, hi: usize, depth: usize) {
    let pad = "    ".repeat(depth);
    if hi - lo == 1 {
        emit_route_leaf(src, rng, lo, &pad);
        return;
    }
    // Skewed splits vary the tree shape (and so the branch sites) with
    // the seed while keeping every leaf reachable.
    let span = hi - lo;
    let mid = lo + 1 + rng.gen_range(0..(span - 1) as u64) as usize;
    src.push_str(&format!("{pad}if (a < {mid}) {{\n"));
    emit_route_tree(src, rng, lo, mid, depth + 1);
    src.push_str(&format!("{pad}}} else {{\n"));
    emit_route_tree(src, rng, mid, hi, depth + 1);
    src.push_str(&format!("{pad}}}\n"));
}

/// Emit one leaf action: count the route, branch on the method, and
/// run a small rng-shaped computation before returning.
fn emit_route_leaf(src: &mut String, rng: &mut Rng, route: usize, pad: &str) {
    let x = rng.gen_range(1..=9973u64);
    let y = rng.gen_range(1..=255u64);
    let mask = [3u64, 7, 15][rng.gen_range(0..3u64) as usize];
    let shape = rng.gen_range(0..3u64);
    src.push_str(&format!("{pad}rcount[{route}]++;\n"));
    match shape {
        0 => src.push_str(&format!(
            "{pad}if (m == 0) {{ v = v + {x}; }} else {{ v = v * 2 + {y}; }}\n{pad}if ((v & {mask}) == 0) {{ v = v + b; }}\n"
        )),
        1 => src.push_str(&format!(
            "{pad}if (m < 2) {{ v = v + {x} + m; }} else if (b > {y}) {{ v = v - {x}; }} else {{ v = v + b; }}\n"
        )),
        _ => src.push_str(&format!(
            "{pad}while (v > {x}) {{ v = v - {x}; }}\n{pad}if (m == 3) {{ v = v + {y}; }}\n"
        )),
    }
    src.push_str(&format!(
        "{pad}if (v < 0) {{ v = 0 - v; }}\n{pad}return v % 65521;\n"
    ));
}

/// The committed synthetic benchmarks, generated once per process with
/// the fixed construction seeds (stable sources → stable trace-cache
/// keys).
pub fn suite() -> &'static [Benchmark] {
    static SUITE: OnceLock<Vec<Benchmark>> = OnceLock::new();
    SUITE.get_or_init(|| {
        vec![
            Benchmark {
                name: "dispatch",
                source: leak(dispatch_source(DISPATCH_SEED, DISPATCH_HANDLERS)),
                input_description: "megamorphic request streams (generated)",
                paper_runs: 8,
                in_main_tables: false,
            },
            Benchmark {
                name: "router",
                source: leak(router_source(ROUTER_SEED, ROUTER_ROUTES)),
                input_description: "routed server requests (generated)",
                paper_runs: 8,
                in_main_tables: false,
            },
        ]
    })
}

fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchlab_ir::lower;

    /// Compile a generated source against the shared prelude (for
    /// non-suite seeds).
    fn compile_synth(body: &str) -> Result<branchlab_ir::Module, branchlab_minic::CompileError> {
        let mut src = String::from(crate::programs::PRELUDE);
        src.push_str(body);
        branchlab_minic::compile(&src)
    }

    #[test]
    fn sources_are_deterministic_in_the_seed() {
        assert_eq!(dispatch_source(7, 32), dispatch_source(7, 32));
        assert_eq!(router_source(7, 32), router_source(7, 32));
        assert_ne!(dispatch_source(7, 32), dispatch_source(8, 32));
        assert_ne!(router_source(7, 32), router_source(8, 32));
    }

    #[test]
    fn different_seeds_give_different_site_populations() {
        let a = lower(&compile_synth(&dispatch_source(1, 48)).unwrap()).unwrap();
        let b = lower(&compile_synth(&dispatch_source(2, 48)).unwrap()).unwrap();
        // Same generator, different seed: the static branch-site layout
        // diverges (different body shapes shift every later site).
        assert_ne!(a.branch_sites(), b.branch_sites());
    }

    #[test]
    fn committed_benchmarks_have_large_footprints() {
        for b in suite() {
            let program = lower(&b.compile().unwrap()).unwrap();
            let sites = program.branch_sites().len();
            assert!(
                sites >= 400,
                "{} has only {sites} static branch sites",
                b.name
            );
        }
    }

    #[test]
    fn dispatch_lowers_to_an_indirect_jump_table() {
        let program =
            lower(&compile_synth(&dispatch_source(DISPATCH_SEED, DISPATCH_HANDLERS)).unwrap())
                .unwrap();
        assert!(
            !program.jump_tables.is_empty(),
            "dense dispatch switch should lower to a jump table"
        );
        assert!(program
            .jump_tables
            .iter()
            .any(|t| t.targets.len() >= DISPATCH_HANDLERS));
    }
}
