//! MiniC sources for the benchmark suite: re-implementations of the
//! core algorithms of the ten Unix programs the paper measures
//! (Table 1), plus `eqn` and `espresso` which appear in Table 5.
//!
//! Every source is concatenated with [`PRELUDE`] (decimal/string output
//! helpers) before compilation.

/// Shared output helpers linked into every benchmark.
pub const PRELUDE: &str = r#"
int print_num(int fd, int n) {
    if (n < 0) { putc(fd, '-'); n = 0 - n; }
    if (n >= 10) { print_num(fd, n / 10); }
    putc(fd, '0' + n % 10);
    return 0;
}
int print_str(int fd, int s) {
    int i = 0;
    while (s[i] != 0) { putc(fd, s[i]); i++; }
    return i;
}
"#;

/// `wc` — line/word/character count over stream 0.
pub const WC: &str = r#"
int main() {
    int c; int lines = 0; int words = 0; int chars = 0; int inword = 0;
    while ((c = getc(0)) != -1) {
        chars++;
        if (c == '\n') { lines++; }
        if (c == ' ' || c == '\n' || c == '\t') {
            inword = 0;
        } else if (inword == 0) {
            inword = 1;
            words++;
        }
    }
    print_num(1, lines); putc(1, ' ');
    print_num(1, words); putc(1, ' ');
    print_num(1, chars); putc(1, '\n');
    return lines + words + chars;
}
"#;

/// `cmp` — compare streams 0 and 1; report first difference.
pub const CMP: &str = r#"
int main() {
    int a; int b; int pos = 0; int line = 1;
    while (1) {
        a = getc(0);
        b = getc(1);
        if (a != b) {
            print_str(1, "differ: byte ");
            print_num(1, pos);
            print_str(1, " line ");
            print_num(1, line);
            putc(1, '\n');
            return 1;
        }
        if (a == -1) { return 0; }
        pos++;
        if (a == '\n') { line++; }
    }
    return 0;
}
"#;

/// `tee` — copy stream 0 to output streams 1, 2 and 3.
pub const TEE: &str = r#"
int main() {
    int c; int n = 0; int lines = 0;
    while ((c = getc(0)) != -1) {
        putc(1, c);
        putc(2, c);
        putc(3, c);
        n++;
        if (c == '\n') { lines++; }
    }
    return lines;
}
"#;

/// `grep` — regex match (literal, `.`, `*`, `^`) of the pattern on
/// stream 1 against each line of stream 0; matching lines go to
/// output 1.
pub const GREP: &str = r#"
int pat[256];
int line[1024];

int match_here(int p, int l) {
    if (pat[p] == 0) { return 1; }
    if (pat[p + 1] == '*') {
        // match_star inlined as a loop over l
        int cc = pat[p];
        while (1) {
            if (match_here(p + 2, l)) { return 1; }
            if (line[l] == 0) { return 0; }
            if (cc != '.' && line[l] != cc) { return 0; }
            l++;
        }
    }
    if (line[l] == 0) { return 0; }
    if (pat[p] == '.' || pat[p] == line[l]) { return match_here(p + 1, l + 1); }
    return 0;
}

int match_line() {
    int l = 0;
    if (pat[0] == '^') { return match_here(1, 0); }
    while (1) {
        if (match_here(0, l)) { return 1; }
        if (line[l] == 0) { return 0; }
        l++;
    }
    return 0;
}

int main() {
    int c; int i = 0; int matches = 0; int scanned = 0;
    while ((c = getc(1)) != -1 && i < 255) { pat[i] = c; i++; }
    pat[i] = 0;
    while (1) {
        i = 0;
        while ((c = getc(0)) != -1 && c != '\n' && i < 1023) { line[i] = c; i++; }
        line[i] = 0;
        if (i > 0 || c == '\n') {
            scanned++;
            if (match_line()) {
                matches++;
                int j = 0;
                while (line[j] != 0) { putc(1, line[j]); j++; }
                putc(1, '\n');
            }
        }
        if (c == -1) {
            print_num(2, matches); putc(2, '/'); print_num(2, scanned); putc(2, '\n');
            return matches;
        }
    }
    return 0;
}
"#;

/// `compress` — LZW compression (12-bit codes, hash-table dictionary)
/// of stream 0 onto output 1 as little-endian code pairs.
pub const COMPRESS: &str = r#"
int hash_code[32768];
int hash_prefix[32768];
int hash_char[32768];

int main() {
    int next_code = 256;
    int prefix; int c; int h; int found; int emitted = 0;
    prefix = getc(0);
    if (prefix == -1) { return 0; }
    while ((c = getc(0)) != -1) {
        h = ((c << 7) ^ prefix * 31) & 32767;
        found = -1;
        while (hash_code[h] != 0) {
            if (hash_prefix[h] == prefix && hash_char[h] == c) {
                found = hash_code[h] - 1;
                break;
            }
            h = (h + 0x1555) & 32767;
        }
        if (found >= 0) {
            prefix = found;
        } else {
            putc(1, prefix & 255);
            putc(1, (prefix >> 8) & 255);
            emitted++;
            if (next_code < 4096) {
                hash_code[h] = next_code + 1;
                hash_prefix[h] = prefix;
                hash_char[h] = c;
                next_code++;
            }
            prefix = c;
        }
    }
    putc(1, prefix & 255);
    putc(1, (prefix >> 8) & 255);
    emitted++;
    print_num(2, emitted); putc(2, '\n');
    return emitted;
}
"#;

/// `tar` — walk an archive on stream 0: verify per-file checksums,
/// extract payloads to output 2, and write a listing to output 1.
pub const TAR: &str = r#"
int name[64];

int main() {
    int nlen; int i; int c; int size; int sum; int stored;
    int files = 0; int bytes = 0; int bad = 0;
    while (1) {
        nlen = getc(0);
        if (nlen <= 0) { break; }
        for (i = 0; i < nlen; i++) {
            c = getc(0);
            if (c == -1) { return -1; }
            if (i < 63) { name[i] = c; }
        }
        name[nlen] = 0;
        size = getc(0);
        c = getc(0);
        if (c == -1) { return -1; }
        size = size + (c << 8);
        sum = 0;
        for (i = 0; i < size; i++) {
            c = getc(0);
            if (c == -1) { return -1; }
            sum = (sum + c) & 255;
            putc(2, c);
            bytes++;
        }
        stored = getc(0);
        files++;
        i = 0;
        while (name[i] != 0) { putc(1, name[i]); i++; }
        if (stored == sum) {
            print_str(1, " ok ");
        } else {
            print_str(1, " BAD ");
            bad++;
        }
        print_num(1, size);
        putc(1, '\n');
    }
    print_num(1, files); putc(1, ' '); print_num(1, bytes); putc(1, ' ');
    print_num(1, bad); putc(1, '\n');
    return files * 1000 + bad;
}
"#;

/// `cccp` — a macro preprocessor: `#define`/`#undef`/`#ifdef`/`#else`/
/// `#endif` plus identifier substitution, with switch-dispatched
/// directive handling (the source of cccp's unknown-target branches in
/// the paper's Table 2).
pub const CCCP: &str = r#"
int macn[4096];
int macv[256];
int nmac;
int tok[16];
int line_class[8];

int is_ident(int c) {
    if (c >= 'a' && c <= 'z') { return 1; }
    if (c >= 'A' && c <= 'Z') { return 1; }
    if (c >= '0' && c <= '9') { return 1; }
    if (c == '_') { return 1; }
    return 0;
}

int tok_eq_mac(int m) {
    int i = 0;
    while (i < 16) {
        if (macn[m * 16 + i] != tok[i]) { return 0; }
        if (tok[i] == 0) { return 1; }
        i++;
    }
    return 1;
}

int find_mac() {
    int m;
    for (m = 0; m < nmac; m++) {
        if (tok_eq_mac(m)) { return m; }
    }
    return -1;
}

// Reads an identifier starting at c into tok; returns the first
// character after it.
int read_word(int c) {
    int i = 0;
    while (i < 16) { tok[i] = 0; i++; }
    i = 0;
    while (is_ident(c)) {
        if (i < 15) { tok[i] = c; i++; }
        c = getc(0);
    }
    return c;
}

int main() {
    int c; int i; int m; int v;
    int at_start = 1; int skipping = 0;
    int lines = 0; int subs = 0; int directives = 0;
    c = getc(0);
    while (c != -1) {
        if (at_start) {
            // Dense dispatch on the leading character's class — lowered
            // to an indirect jump table (cccp's unknown-target branches
            // in the paper's Table 2).
            switch (c & 7) {
                case 0: line_class[0]++; break;
                case 1: line_class[1]++; break;
                case 2: line_class[2]++; break;
                case 3: line_class[3]++; break;
                case 4: line_class[4]++; break;
                case 5: line_class[5]++; break;
                case 6: line_class[6]++; break;
                case 7: line_class[7]++; break;
            }
        }
        if (at_start && c == '#') {
            directives++;
            c = read_word(getc(0));
            switch (tok[0]) {
                case 'd': // define
                    while (c == ' ') { c = getc(0); }
                    c = read_word(c);
                    m = find_mac();
                    if (m < 0 && nmac < 256) {
                        m = nmac;
                        nmac++;
                        for (i = 0; i < 16; i++) { macn[m * 16 + i] = tok[i]; }
                    }
                    while (c == ' ') { c = getc(0); }
                    v = 0;
                    while (c >= '0' && c <= '9') { v = v * 10 + c - '0'; c = getc(0); }
                    if (m >= 0) { macv[m] = v; }
                    break;
                case 'u': // undef
                    while (c == ' ') { c = getc(0); }
                    c = read_word(c);
                    m = find_mac();
                    if (m >= 0) {
                        nmac--;
                        for (i = 0; i < 16; i++) { macn[m * 16 + i] = macn[nmac * 16 + i]; }
                        macv[m] = macv[nmac];
                    }
                    break;
                case 'i': // ifdef
                    while (c == ' ') { c = getc(0); }
                    c = read_word(c);
                    if (find_mac() < 0) { skipping = 1; }
                    break;
                case 'e': // else / endif
                    if (tok[1] == 'n') { skipping = 0; }
                    else { skipping = 1 - skipping; }
                    break;
            }
            while (c != '\n' && c != -1) { c = getc(0); }
            if (c == '\n') { lines++; at_start = 1; c = getc(0); }
        } else if (skipping) {
            while (c != '\n' && c != -1) { c = getc(0); }
            if (c == '\n') { lines++; at_start = 1; c = getc(0); }
        } else if (is_ident(c) && (c < '0' || c > '9')) {
            c = read_word(c);
            m = find_mac();
            if (m >= 0) {
                print_num(1, macv[m]);
                subs++;
            } else {
                i = 0;
                while (tok[i] != 0) { putc(1, tok[i]); i++; }
            }
            at_start = 0;
        } else {
            putc(1, c);
            if (c == '\n') { lines++; at_start = 1; } else { at_start = 0; }
            c = getc(0);
        }
    }
    print_num(2, lines); putc(2, ' ');
    print_num(2, subs); putc(2, ' ');
    print_num(2, directives); putc(2, '\n');
    return subs;
}
"#;

/// `lex` — a table-driven DFA scanner over C-like input, counting
/// tokens by class. The transition/emit/redo tables are the kind of
/// machine-generated tables a real lex produces.
pub const LEX: &str = r#"
int cls[128];
// states: 0 start, 1 ident, 2 number, 3 slash, 4 comment, 5 comstar, 6 string
// classes: 0 letter, 1 digit, 2 space, 3 newline, 4 '/', 5 '*', 6 '"', 7 other
int trans[56] = {
    1, 2, 0, 0, 3, 0, 6, 0,
    1, 1, 0, 0, 0, 0, 0, 0,
    2, 2, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 4, 0, 0,
    4, 4, 4, 4, 4, 5, 4, 4,
    4, 4, 4, 4, 0, 5, 4, 4,
    6, 6, 6, 0, 6, 6, 0, 6,
};
// token emitted on this transition: 0 none, 1 ident, 2 num, 3 punct,
// 4 comment, 5 string, 6 newline
int emit[56] = {
    0, 0, 0, 6, 0, 3, 0, 3,
    0, 0, 1, 1, 1, 1, 1, 1,
    0, 0, 2, 2, 2, 2, 2, 2,
    3, 3, 3, 3, 3, 0, 3, 3,
    0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 4, 0, 0, 0,
    0, 0, 0, 5, 0, 0, 5, 0,
};
// reprocess the character after emitting (token ended at previous char)
int redo[56] = {
    0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 1, 1, 1, 1, 1, 1,
    0, 0, 1, 1, 1, 1, 1, 1,
    1, 1, 1, 1, 1, 0, 1, 1,
    0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0,
};
int counts[6];

int main() {
    int i; int c; int cl; int s = 0; int idx; int e;
    for (i = 0; i < 128; i++) { cls[i] = 7; }
    for (i = 'a'; i <= 'z'; i++) { cls[i] = 0; }
    for (i = 'A'; i <= 'Z'; i++) { cls[i] = 0; }
    cls['_'] = 0;
    for (i = '0'; i <= '9'; i++) { cls[i] = 1; }
    cls[' '] = 2; cls[9] = 2; cls[13] = 2;
    cls['\n'] = 3;
    cls['/'] = 4; cls['*'] = 5; cls['"'] = 6;

    while ((c = getc(0)) != -1) {
        if (c > 127 || c < 0) { c = 127; }
        cl = cls[c];
        while (1) {
            idx = s * 8 + cl;
            e = emit[idx];
            if (e > 0) { counts[e - 1]++; }
            s = trans[idx];
            if (redo[idx] == 0) { break; }
        }
    }
    // flush a token in progress at EOF
    if (s == 1) { counts[0]++; }
    if (s == 2) { counts[1]++; }
    for (i = 0; i < 6; i++) {
        switch (i) {
            case 0: print_str(1, "ident "); break;
            case 1: print_str(1, "num "); break;
            case 2: print_str(1, "punct "); break;
            case 3: print_str(1, "comment "); break;
            case 4: print_str(1, "string "); break;
            case 5: print_str(1, "line "); break;
        }
        print_num(1, counts[i]);
        putc(1, '\n');
    }
    return counts[0] + counts[1] + counts[2];
}
"#;

/// `make` — dependency-graph evaluation: parse a makefile-like
/// description plus timestamps, then recursively decide which targets
/// need rebuilding.
pub const MAKE: &str = r##"
int dep_node[4096];
int dep_next[4096];
int dep_head[512];
int stamp[512];
int built[512];
int newstamp[512];
int ntargets;
int ndeps;
int rebuilds;

int build(int t) {
    if (built[t]) { return newstamp[t]; }
    built[t] = 1;
    int need = 0;
    int maxd = 0;
    int e = dep_head[t];
    while (e >= 0) {
        int ds = build(dep_node[e]);
        if (ds > stamp[t]) { need = 1; }
        if (ds > maxd) { maxd = ds; }
        e = dep_next[e];
    }
    if (need) {
        newstamp[t] = maxd + 1;
        rebuilds++;
        print_str(1, "build t");
        print_num(1, t);
        putc(1, '\n');
    } else {
        newstamp[t] = stamp[t];
    }
    return newstamp[t];
}

int main() {
    int c; int t; int d; int v; int i;
    for (i = 0; i < 512; i++) { dep_head[i] = -1; }
    c = getc(0);
    // Rules: "t<N>: t<M> t<K>...\n" until a '#' line.
    while (c == 't') {
        c = getc(0);
        t = 0;
        while (c >= '0' && c <= '9') { t = t * 10 + c - '0'; c = getc(0); }
        if (t >= 512) { return -1; }
        if (t >= ntargets) { ntargets = t + 1; }
        if (c == ':') { c = getc(0); }
        while (c == ' ') {
            c = getc(0); // 't'
            c = getc(0);
            d = 0;
            while (c >= '0' && c <= '9') { d = d * 10 + c - '0'; c = getc(0); }
            if (ndeps < 4096 && d < 512) {
                dep_node[ndeps] = d;
                dep_next[ndeps] = dep_head[t];
                dep_head[t] = ndeps;
                ndeps++;
            }
        }
        if (c == '\n') { c = getc(0); }
    }
    // "#stamps" header line.
    while (c != '\n' && c != -1) { c = getc(0); }
    if (c == '\n') { c = getc(0); }
    // Stamps: "t<N> <V>\n".
    while (c == 't') {
        c = getc(0);
        t = 0;
        while (c >= '0' && c <= '9') { t = t * 10 + c - '0'; c = getc(0); }
        while (c == ' ') { c = getc(0); }
        v = 0;
        while (c >= '0' && c <= '9') { v = v * 10 + c - '0'; c = getc(0); }
        if (t < 512) { stamp[t] = v; }
        if (c == '\n') { c = getc(0); }
    }
    for (t = 0; t < ntargets; t++) { build(t); }
    print_num(1, rebuilds); putc(1, '\n');
    return rebuilds;
}
"##;

/// `yacc` — a table/precedence-driven shift-reduce expression parser
/// (the engine a yacc-generated parser runs), evaluating one expression
/// per line.
pub const YACC: &str = r#"
int vals[128];
int ops[128];

int prec(int op) {
    switch (op) {
        case '+': return 1;
        case '-': return 1;
        case '*': return 2;
        case '/': return 2;
        case '(': return 0;
    }
    return -1;
}

int apply(int op, int a, int b) {
    switch (op) {
        case '+': return a + b;
        case '-': return a - b;
        case '*': return a * b;
        case '/': if (b == 0) { return 0; } return a / b;
    }
    return 0;
}

int main() {
    int c; int vsp = 0; int osp = 0; int n;
    int exprs = 0; int errors = 0; int b; int a;
    c = getc(0);
    while (1) {
        if (c >= '0' && c <= '9') {
            n = 0;
            while (c >= '0' && c <= '9') { n = n * 10 + c - '0'; c = getc(0); }
            if (vsp < 128) { vals[vsp] = n; vsp++; }
        } else if (c == '+' || c == '-' || c == '*' || c == '/') {
            while (osp > 0 && prec(ops[osp - 1]) >= prec(c)) {
                osp--;
                if (vsp >= 2) {
                    b = vals[vsp - 1]; a = vals[vsp - 2];
                    vsp--;
                    vals[vsp - 1] = apply(ops[osp], a, b);
                } else { errors++; }
            }
            if (osp < 128) { ops[osp] = c; osp++; }
            c = getc(0);
        } else if (c == '(') {
            if (osp < 128) { ops[osp] = c; osp++; }
            c = getc(0);
        } else if (c == ')') {
            while (osp > 0 && ops[osp - 1] != '(') {
                osp--;
                if (vsp >= 2) {
                    b = vals[vsp - 1]; a = vals[vsp - 2];
                    vsp--;
                    vals[vsp - 1] = apply(ops[osp], a, b);
                } else { errors++; }
            }
            if (osp > 0) { osp--; } else { errors++; }
            c = getc(0);
        } else if (c == '\n' || c == -1) {
            while (osp > 0) {
                osp--;
                if (ops[osp] != '(' && vsp >= 2) {
                    b = vals[vsp - 1]; a = vals[vsp - 2];
                    vsp--;
                    vals[vsp - 1] = apply(ops[osp], a, b);
                }
            }
            if (vsp >= 1) {
                print_num(1, vals[vsp - 1]);
                putc(1, '\n');
                exprs++;
            }
            vsp = 0;
            osp = 0;
            if (c == -1) { break; }
            c = getc(0);
        } else {
            c = getc(0); // skip spaces/garbage
        }
    }
    print_num(2, exprs); putc(2, ' '); print_num(2, errors); putc(2, '\n');
    return exprs;
}
"#;

/// `eqn` — an equation formatter: translate infix expressions to
/// troff-eqn-like markup (`over`, `times`, `left ( … right )`) with a
/// recursive-descent walk.
pub const EQN: &str = r#"
int cur;

int advance() {
    cur = getc(0);
    return cur;
}

int emit_word(int s) {
    putc(1, ' ');
    print_str(1, s);
    putc(1, ' ');
    return 0;
}

// factor := number | '(' expr ')'
int parse_factor() {
    int depth = 0;
    while (cur == ' ') { advance(); }
    if (cur == '(') {
        emit_word("left (");
        advance();
        depth = parse_expr() + 1;
        if (cur == ')') { advance(); }
        emit_word("right )");
        return depth;
    }
    while (cur >= '0' && cur <= '9') {
        putc(1, cur);
        advance();
    }
    return 0;
}

// term := factor (('*'|'/') factor)*
int parse_term() {
    int d = parse_factor();
    int d2;
    while (1) {
        while (cur == ' ') { advance(); }
        if (cur == '*') {
            emit_word("times");
            advance();
            d2 = parse_factor();
            if (d2 > d) { d = d2; }
        } else if (cur == '/') {
            emit_word("over");
            advance();
            d2 = parse_factor();
            if (d2 > d) { d = d2; }
        } else {
            return d;
        }
    }
    return d;
}

// expr := term (('+'|'-') term)*
int parse_expr() {
    int d = parse_term();
    int d2;
    while (1) {
        while (cur == ' ') { advance(); }
        if (cur == '+') {
            emit_word("plus");
            advance();
            d2 = parse_term();
            if (d2 > d) { d = d2; }
        } else if (cur == '-') {
            emit_word("minus");
            advance();
            d2 = parse_term();
            if (d2 > d) { d = d2; }
        } else {
            return d;
        }
    }
    return d;
}

int main() {
    int eqns = 0; int maxdepth = 0; int d;
    advance();
    while (cur != -1) {
        d = parse_expr();
        if (d > maxdepth) { maxdepth = d; }
        putc(1, '\n');
        eqns++;
        while (cur != '\n' && cur != -1) { advance(); }
        if (cur == '\n') { advance(); }
    }
    print_num(2, eqns); putc(2, ' '); print_num(2, maxdepth); putc(2, '\n');
    return eqns;
}
"#;

/// `espresso` — two-level boolean minimization (distance-1 cube merging
/// and containment deletion to a fixpoint, Quine–McCluskey style).
pub const ESPRESSO: &str = r#"
int cube[8192];
int alive[512];
int nvars;
int ncubes;

int covers(int i, int j) {
    int v;
    for (v = 0; v < nvars; v++) {
        int a = cube[i * 16 + v];
        int b = cube[j * 16 + v];
        if (a != '-' && a != b) { return 0; }
    }
    return 1;
}

int main() {
    int c; int v; int i; int j; int changed; int passes = 0;
    // Parse cubes: lines over 0/1/-.
    v = 0;
    while ((c = getc(0)) != -1) {
        if (c == '\n') {
            if (v > 0) {
                if (nvars == 0) { nvars = v; }
                if (v == nvars && ncubes < 512) { alive[ncubes] = 1; ncubes++; }
            }
            v = 0;
        } else if (v < 16) {
            if (ncubes < 512) { cube[ncubes * 16 + v] = c; }
            v++;
        }
    }
    // Merge to fixpoint.
    changed = 1;
    while (changed) {
        changed = 0;
        passes++;
        for (i = 0; i < ncubes; i++) {
            if (!alive[i]) { continue; }
            for (j = i + 1; j < ncubes; j++) {
                if (!alive[j]) { continue; }
                // distance-1 merge
                int diff = -1;
                int ok = 1;
                for (v = 0; v < nvars; v++) {
                    int a = cube[i * 16 + v];
                    int b = cube[j * 16 + v];
                    if (a != b) {
                        if (a == '-' || b == '-') { ok = 0; break; }
                        if (diff >= 0) { ok = 0; break; }
                        diff = v;
                    }
                }
                if (ok && diff >= 0) {
                    cube[i * 16 + diff] = '-';
                    alive[j] = 0;
                    changed = 1;
                } else if (covers(i, j)) {
                    alive[j] = 0;
                    changed = 1;
                } else if (covers(j, i)) {
                    alive[i] = 0;
                    changed = 1;
                    break;
                }
            }
        }
    }
    // Output surviving cubes.
    int out = 0;
    for (i = 0; i < ncubes; i++) {
        if (alive[i]) {
            for (v = 0; v < nvars; v++) { putc(1, cube[i * 16 + v]); }
            putc(1, '\n');
            out++;
        }
    }
    print_num(2, ncubes); putc(2, ' '); print_num(2, out); putc(2, ' ');
    print_num(2, passes); putc(2, '\n');
    return out;
}
"#;
