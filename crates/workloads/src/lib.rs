//! # branchlab-workloads
//!
//! The benchmark suite of the reproduction: MiniC re-implementations of
//! the core algorithms of the ten Unix programs measured by
//! Hwu, Conte & Chang (ISCA 1989, Table 1) — cccp, cmp, compress, grep,
//! lex, make, tar, tee, wc, yacc — plus eqn and espresso (Table 5 only),
//! together with seeded input generators matching each benchmark's
//! "Input description" (C sources for cccp, similar/dissimilar text
//! files for cmp, exercised options for grep, …).
//!
//! The real 1989 binaries and traces are unavailable; what the paper's
//! experiments actually consume is each program's *dynamic branch
//! behaviour*, which is a property of the algorithms (LZW, DFA scanning,
//! regex matching, shift-reduce parsing, …) — see DESIGN.md §2.
//!
//! ```
//! use branchlab_workloads::{benchmark, Scale};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let wc = benchmark("wc").expect("wc is in the suite");
//! let module = wc.compile()?;
//! let runs = wc.runs(Scale::Test, 42);
//! assert_eq!(runs.len(), wc.paper_runs.min(4));
//! # let _ = module;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod inputs;
mod programs;
pub mod synth;

pub use inputs::Scale;

use branchlab_ir::Module;
use branchlab_minic::CompileError;
use branchlab_telemetry::Rng;

/// One benchmark of the suite.
#[derive(Copy, Clone, Debug)]
pub struct Benchmark {
    /// Benchmark name as in the paper's tables.
    pub name: &'static str,
    /// MiniC source (without the shared prelude).
    pub source: &'static str,
    /// Paper Table 1 "Input description".
    pub input_description: &'static str,
    /// Paper Table 1 "Runs" (number of profiling inputs).
    pub paper_runs: usize,
    /// Whether the benchmark appears in Tables 1–4 (the ten Unix
    /// programs) or only in Table 5 (eqn, espresso).
    pub in_main_tables: bool,
}

impl Benchmark {
    /// Compile the benchmark (prelude + source) to an IR module.
    ///
    /// # Errors
    /// Returns [`CompileError`] — never for the shipped sources (a test
    /// compiles every benchmark).
    pub fn compile(&self) -> Result<Module, CompileError> {
        let mut src = String::from(programs::PRELUDE);
        src.push_str(self.source);
        branchlab_minic::compile(&src)
    }

    /// Number of non-blank source lines (the paper's *Lines* column
    /// analogue).
    #[must_use]
    pub fn source_lines(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }

    /// Generate this benchmark's input runs at a given scale. Each run
    /// is a set of input streams. Deterministic in `(self, scale, seed)`.
    ///
    /// At `Scale::Test` the run count is capped at 4; otherwise it
    /// matches the paper's Runs column.
    #[must_use]
    pub fn runs(&self, scale: Scale, seed: u64) -> Vec<Vec<Vec<u8>>> {
        let n_runs = match scale {
            Scale::Test => self.paper_runs.min(4),
            Scale::Small | Scale::Paper => self.paper_runs,
        };
        let units = scale.units();
        (0..n_runs)
            .map(|r| {
                let mut rng = Rng::seed_from_u64(
                    seed ^ (r as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ hash_name(self.name),
                );
                self.gen_run(&mut rng, units, r)
            })
            .collect()
    }

    fn gen_run(&self, rng: &mut Rng, units: usize, run_idx: usize) -> Vec<Vec<u8>> {
        match self.name {
            "wc" | "tee" => vec![inputs::text(rng, units)],
            "cmp" => {
                // The paper: "similar/dissimilar text files".
                let (a, b) = inputs::cmp_pair(rng, units, run_idx.is_multiple_of(2));
                vec![a, b]
            }
            "compress" => vec![inputs::c_source(rng, units)],
            "grep" => {
                // "exercised various options": vary the pattern shape.
                vec![inputs::text(rng, units), inputs::grep_pattern(rng)]
            }
            "lex" => {
                // "lexers (C, Lisp, awk, pic)": big token streams.
                vec![inputs::c_source(rng, units * 2)]
            }
            "make" => vec![inputs::makefile(rng, (units / 4).clamp(4, 500))],
            "tar" => vec![inputs::archive(rng, (units / 8).clamp(2, 400))],
            "cccp" => vec![inputs::c_source(rng, units)],
            "yacc" => vec![inputs::expressions(rng, units)],
            "eqn" => vec![inputs::expressions(rng, units)],
            "espresso" => {
                let vars = rng.gen_range(6..=12usize);
                vec![inputs::cubes(rng, vars, (units / 4).clamp(8, 400))]
            }
            "dispatch" => vec![inputs::dispatch_requests(
                rng,
                units,
                synth::DISPATCH_HANDLERS,
            )],
            "router" => vec![inputs::route_requests(rng, units, synth::ROUTER_ROUTES)],
            other => unreachable!("unknown benchmark {other}"),
        }
    }

    /// Static branch-site count of the lowered program (conditional and
    /// unconditional branches, excluding calls/returns and forward
    /// slots). Compiled once per process and cached by name; returns 0
    /// if the source fails to compile (never for shipped sources).
    #[must_use]
    pub fn branch_sites(&self) -> usize {
        use std::collections::HashMap;
        use std::sync::Mutex;
        static CACHE: std::sync::OnceLock<Mutex<HashMap<&'static str, usize>>> =
            std::sync::OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(&n) = cache.lock().unwrap().get(self.name) {
            return n;
        }
        let n = self
            .compile()
            .ok()
            .and_then(|m| branchlab_ir::lower(&m).ok())
            .map_or(0, |p| p.branch_sites().len());
        cache.lock().unwrap().insert(self.name, n);
        n
    }

    /// Code-footprint class from the static branch-site count: how hard
    /// this benchmark presses on BTB capacity. `small` fits comfortably
    /// in the paper's 256-entry buffer, `medium` approaches it, `large`
    /// overflows a small set-associative L1.
    #[must_use]
    pub fn footprint_class(&self) -> &'static str {
        match self.branch_sites() {
            0..=99 => "small",
            100..=399 => "medium",
            _ => "large",
        }
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// The full suite: the ten Table 1 benchmarks plus eqn and espresso.
pub const SUITE: &[Benchmark] = &[
    Benchmark {
        name: "cccp",
        source: programs::CCCP,
        input_description: "C progs (generated)",
        paper_runs: 20,
        in_main_tables: true,
    },
    Benchmark {
        name: "cmp",
        source: programs::CMP,
        input_description: "similar/dissimilar text files",
        paper_runs: 16,
        in_main_tables: true,
    },
    Benchmark {
        name: "compress",
        source: programs::COMPRESS,
        input_description: "same as cccp",
        paper_runs: 20,
        in_main_tables: true,
    },
    Benchmark {
        name: "grep",
        source: programs::GREP,
        input_description: "exercised various patterns",
        paper_runs: 20,
        in_main_tables: true,
    },
    Benchmark {
        name: "lex",
        source: programs::LEX,
        input_description: "C-like token streams",
        paper_runs: 4,
        in_main_tables: true,
    },
    Benchmark {
        name: "make",
        source: programs::MAKE,
        input_description: "makefiles (generated DAGs)",
        paper_runs: 20,
        in_main_tables: true,
    },
    Benchmark {
        name: "tar",
        source: programs::TAR,
        input_description: "save/extract files",
        paper_runs: 14,
        in_main_tables: true,
    },
    Benchmark {
        name: "tee",
        source: programs::TEE,
        input_description: "text files",
        paper_runs: 18,
        in_main_tables: true,
    },
    Benchmark {
        name: "wc",
        source: programs::WC,
        input_description: "same input class as cccp",
        paper_runs: 20,
        in_main_tables: true,
    },
    Benchmark {
        name: "yacc",
        source: programs::YACC,
        input_description: "expression grammars",
        paper_runs: 8,
        in_main_tables: true,
    },
    Benchmark {
        name: "eqn",
        source: programs::EQN,
        input_description: "equations (generated)",
        paper_runs: 6,
        in_main_tables: false,
    },
    Benchmark {
        name: "espresso",
        source: programs::ESPRESSO,
        input_description: "boolean cube sets",
        paper_runs: 6,
        in_main_tables: false,
    },
];

/// Look up a benchmark by name — the 1989 suite first, then the
/// generated synthetic benchmarks ([`synth::suite`]).
#[must_use]
pub fn benchmark(name: &str) -> Option<&'static Benchmark> {
    SUITE
        .iter()
        .find(|b| b.name == name)
        .or_else(|| synth::suite().iter().find(|b| b.name == name))
}

/// The ten benchmarks of Tables 1–4.
pub fn main_suite() -> impl Iterator<Item = &'static Benchmark> {
    SUITE.iter().filter(|b| b.in_main_tables)
}

/// Every benchmark: the 1989 suite followed by the synthetic
/// large-footprint benchmarks.
pub fn all_benchmarks() -> impl Iterator<Item = &'static Benchmark> {
    SUITE.iter().chain(synth::suite().iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchlab_interp::{run, ExecConfig, Outcome};
    use branchlab_ir::lower;

    fn exec(b: &Benchmark, streams: &[&[u8]]) -> Outcome {
        let m = b.compile().unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let p = lower(&m).unwrap();
        let cfg = ExecConfig {
            max_insts: 200_000_000,
            ..ExecConfig::default()
        };
        run(&p, &cfg, streams, &mut ()).unwrap_or_else(|e| panic!("{}: {e}", b.name))
    }

    #[test]
    fn every_benchmark_compiles() {
        for b in SUITE {
            b.compile()
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}", b.name));
        }
    }

    #[test]
    fn every_benchmark_runs_on_generated_input() {
        for b in SUITE {
            for (ri, streams) in b.runs(Scale::Test, 1).iter().enumerate() {
                let refs: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
                let out = exec(b, &refs);
                assert!(
                    out.stats.branches > 0,
                    "{} run {ri} executed no branches",
                    b.name
                );
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        for b in SUITE {
            assert_eq!(b.runs(Scale::Test, 7), b.runs(Scale::Test, 7), "{}", b.name);
        }
    }

    #[test]
    fn wc_matches_reference_counts() {
        let input = b"hello world\nthe quick  brown\n\nfox\n";
        let out = exec(benchmark("wc").unwrap(), &[input]);
        let text = String::from_utf8(out.outputs[1].clone()).unwrap();
        // 4 lines, 6 words, 34 chars.
        assert_eq!(text, "4 6 34\n");
    }

    #[test]
    fn cmp_equal_and_differing() {
        let b = benchmark("cmp").unwrap();
        assert_eq!(exec(b, &[b"same text", b"same text"]).exit_value, 0);
        let out = exec(b, &[b"same text", b"samX text"]);
        assert_eq!(out.exit_value, 1);
        let msg = String::from_utf8(out.outputs[1].clone()).unwrap();
        assert!(msg.contains("byte 3"), "{msg}");
    }

    #[test]
    fn tee_duplicates_to_three_streams() {
        let out = exec(benchmark("tee").unwrap(), &[b"ab\ncd\n"]);
        for s in 1..=3 {
            assert_eq!(out.outputs[s], b"ab\ncd\n");
        }
        assert_eq!(out.exit_value, 2);
    }

    #[test]
    fn grep_literal_and_metacharacters() {
        let b = benchmark("grep").unwrap();
        let text = b"the quick fox\nlazy dog\nquack\n";
        // Literal.
        let out = exec(b, &[text, b"quick"]);
        assert_eq!(out.outputs[1], b"the quick fox\n");
        // Anchor.
        let out = exec(b, &[text, b"^lazy"]);
        assert_eq!(out.outputs[1], b"lazy dog\n");
        // Dot.
        let out = exec(b, &[text, b"qu.ck"]);
        assert_eq!(
            String::from_utf8(out.outputs[1].clone()).unwrap(),
            "the quick fox\nquack\n"
        );
        // Star: zero or more 'u' then 'a'.
        let out = exec(b, &[text, b"qu*a"]);
        assert_eq!(out.outputs[1], b"quack\n");
        // No match.
        let out = exec(b, &[text, b"zebra"]);
        assert!(out.outputs[1].is_empty());
    }

    /// Reference LZW matching the MiniC implementation's output format.
    fn lzw_reference(data: &[u8]) -> Vec<u8> {
        use std::collections::HashMap;
        let mut dict: HashMap<(i64, u8), i64> = HashMap::new();
        let mut next = 256i64;
        let mut out = Vec::new();
        let mut iter = data.iter();
        let Some(&first) = iter.next() else {
            return out;
        };
        let mut prefix = i64::from(first);
        for &c in iter {
            if let Some(&code) = dict.get(&(prefix, c)) {
                prefix = code;
            } else {
                out.push((prefix & 255) as u8);
                out.push(((prefix >> 8) & 255) as u8);
                if next < 4096 {
                    dict.insert((prefix, c), next);
                    next += 1;
                }
                prefix = i64::from(c);
            }
        }
        out.push((prefix & 255) as u8);
        out.push(((prefix >> 8) & 255) as u8);
        out
    }

    #[test]
    fn compress_matches_reference_lzw() {
        let data = b"abababababcabcabcabcabcaaaaabbbbbb the the the";
        let out = exec(benchmark("compress").unwrap(), &[data]);
        assert_eq!(out.outputs[1], lzw_reference(data));
    }

    #[test]
    fn tar_verifies_checksums() {
        // name "ab", size 3, payload "xyz", good checksum.
        let sum = (u32::from(b'x') + u32::from(b'y') + u32::from(b'z')) & 255;
        let mut arch = vec![2, b'a', b'b', 3, 0, b'x', b'y', b'z', sum as u8];
        // Second file with a corrupt checksum.
        arch.extend_from_slice(&[2, b'c', b'd', 1, 0, b'q', 0x77]);
        arch.push(0);
        let out = exec(benchmark("tar").unwrap(), &[&arch]);
        let listing = String::from_utf8(out.outputs[1].clone()).unwrap();
        assert!(listing.contains("ab ok 3"), "{listing}");
        assert!(listing.contains("cd BAD 1"), "{listing}");
        assert_eq!(out.outputs[2], b"xyzq");
        assert_eq!(out.exit_value, 2001); // 2 files, 1 bad
    }

    #[test]
    fn cccp_defines_and_substitutes() {
        let src = b"#define N 42\nint a = N;\n#undef N\nint b = N;\n";
        let out = exec(benchmark("cccp").unwrap(), &[src]);
        let text = String::from_utf8(out.outputs[1].clone()).unwrap();
        assert_eq!(text, "int a = 42;\nint b = N;\n");
    }

    #[test]
    fn cccp_ifdef_skips() {
        let src = b"#define YES 1\n#ifdef YES\nkept\n#endif\n#ifdef NO\ndropped\n#endif\ntail\n";
        let out = exec(benchmark("cccp").unwrap(), &[src]);
        let text = String::from_utf8(out.outputs[1].clone()).unwrap();
        assert!(text.contains("kept"), "{text}");
        assert!(!text.contains("dropped"), "{text}");
        assert!(text.contains("tail"), "{text}");
    }

    #[test]
    fn lex_counts_tokens() {
        let src = b"int x1 = 42; /* hi */ \"str\"\n";
        let out = exec(benchmark("lex").unwrap(), &[src]);
        let text = String::from_utf8(out.outputs[1].clone()).unwrap();
        assert!(text.contains("ident 2"), "{text}"); // int, x1
        assert!(text.contains("num 1"), "{text}"); // 42
        assert!(text.contains("comment 1"), "{text}");
        assert!(text.contains("string 1"), "{text}");
        assert!(text.contains("line 1"), "{text}");
    }

    #[test]
    fn make_rebuilds_stale_targets() {
        // t1 depends on t0; t0 is newer than t1 → rebuild t1 only.
        let mf = b"t0:\nt1: t0\n#stamps\nt0 10\nt1 5\n";
        let out = exec(benchmark("make").unwrap(), &[mf]);
        let text = String::from_utf8(out.outputs[1].clone()).unwrap();
        assert!(text.contains("build t1"), "{text}");
        assert!(!text.contains("build t0"), "{text}");
        assert_eq!(out.exit_value, 1);
    }

    #[test]
    fn make_fresh_targets_not_rebuilt() {
        let mf = b"t0:\nt1: t0\n#stamps\nt0 5\nt1 10\n";
        let out = exec(benchmark("make").unwrap(), &[mf]);
        assert_eq!(out.exit_value, 0);
    }

    #[test]
    fn yacc_evaluates_expressions() {
        let out = exec(benchmark("yacc").unwrap(), &[b"1+2*3\n(1+2)*3\n10/2-3\n"]);
        let text = String::from_utf8(out.outputs[1].clone()).unwrap();
        assert_eq!(text, "7\n9\n2\n");
        assert_eq!(out.exit_value, 3);
    }

    #[test]
    fn eqn_translates_operators() {
        let out = exec(benchmark("eqn").unwrap(), &[b"1+2/3\n(4*5)\n"]);
        let text = String::from_utf8(out.outputs[1].clone()).unwrap();
        assert!(text.contains("plus"), "{text}");
        assert!(text.contains("over"), "{text}");
        assert!(text.contains("times"), "{text}");
        assert!(text.contains("left ("), "{text}");
        assert_eq!(out.exit_value, 2);
    }

    #[test]
    fn espresso_merges_distance_one_cubes() {
        // 000 and 001 merge into 00-; 111 is covered by 11-.
        let out = exec(benchmark("espresso").unwrap(), &[b"000\n001\n11-\n111\n"]);
        let text = String::from_utf8(out.outputs[1].clone()).unwrap();
        assert!(text.contains("00-"), "{text}");
        assert!(text.contains("11-"), "{text}");
        assert_eq!(out.exit_value, 2); // two surviving cubes
    }

    #[test]
    fn synthetic_benchmarks_run_on_generated_input() {
        for b in synth::suite() {
            for (ri, streams) in b.runs(Scale::Test, 1).iter().enumerate() {
                let refs: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
                let out = exec(b, &refs);
                assert!(
                    out.stats.branches > 0,
                    "{} run {ri} executed no branches",
                    b.name
                );
            }
        }
    }

    #[test]
    fn synthetic_runs_are_deterministic() {
        for b in synth::suite() {
            assert_eq!(b.runs(Scale::Test, 7), b.runs(Scale::Test, 7), "{}", b.name);
            assert_ne!(b.runs(Scale::Test, 7), b.runs(Scale::Test, 8), "{}", b.name);
        }
    }

    #[test]
    fn footprint_classes_separate_synthetics_from_the_suite() {
        assert_eq!(benchmark("wc").unwrap().footprint_class(), "small");
        for b in synth::suite() {
            assert_eq!(b.footprint_class(), "large", "{}", b.name);
        }
        assert!(benchmark("dispatch").is_some());
        assert!(benchmark("router").is_some());
        assert_eq!(all_benchmarks().count(), SUITE.len() + 2);
    }

    #[test]
    fn suite_has_ten_main_benchmarks() {
        assert_eq!(main_suite().count(), 10);
        assert_eq!(SUITE.len(), 12);
        for name in [
            "cccp", "cmp", "compress", "grep", "lex", "make", "tar", "tee", "wc", "yacc",
        ] {
            assert!(benchmark(name).unwrap().in_main_tables, "{name}");
        }
        assert!(!benchmark("eqn").unwrap().in_main_tables);
        assert!(!benchmark("espresso").unwrap().in_main_tables);
    }
}
