//! Seeded input generators shared by the benchmark workloads.
//!
//! Every generator takes an explicit RNG so workloads are reproducible:
//! the same (benchmark, scale, seed) triple always yields byte-identical
//! inputs, which keeps every table in EXPERIMENTS.md regenerable.

use branchlab_telemetry::Rng;

/// How large to make generated inputs.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Tiny inputs for unit/integration tests (≤ ~2 KB per run).
    Test,
    /// The default experiment scale (tens of KB per run — enough for
    /// branch statistics to converge).
    Small,
    /// Larger runs approaching the paper's dynamic instruction counts
    /// where practical.
    Paper,
}

impl Scale {
    /// A size knob: roughly the number of "units" (lines, records,
    /// expressions…) a generator should produce.
    #[must_use]
    pub fn units(self) -> usize {
        match self {
            Scale::Test => 40,
            Scale::Small => 1_200,
            Scale::Paper => 12_000,
        }
    }
}

const WORDS: &[&str] = &[
    "the",
    "quick",
    "brown",
    "fox",
    "jumps",
    "over",
    "lazy",
    "dog",
    "pack",
    "my",
    "box",
    "with",
    "five",
    "dozen",
    "liquor",
    "jugs",
    "pipeline",
    "branch",
    "target",
    "buffer",
    "cache",
    "fetch",
    "decode",
    "execute",
    "semantic",
    "forward",
    "trace",
    "profile",
    "compiler",
    "hardware",
    "software",
    "scheme",
    "cost",
    "cycle",
    "instruction",
];

/// Random prose: words separated by spaces, wrapped into lines of
/// 3–9 words. Used by wc, tee, grep, compress.
pub fn text(rng: &mut Rng, lines: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for _ in 0..lines {
        let n = rng.gen_range(3..=9);
        for w in 0..n {
            if w > 0 {
                out.push(b' ');
            }
            out.extend_from_slice(WORDS[rng.gen_range(0..WORDS.len())].as_bytes());
        }
        out.push(b'\n');
    }
    out
}

/// A C-ish source file (identifiers, punctuation, numbers, keywords,
/// comments, preprocessor lines) for cccp, lex and wc.
pub fn c_source(rng: &mut Rng, lines: usize) -> Vec<u8> {
    let base = [
        "count", "buf", "i", "j", "tmp", "state", "next", "len", "ptr", "val",
    ];
    let kws = ["int", "if", "while", "return", "else", "for", "char"];
    // A per-file vocabulary with numbered variants, so identifier streams
    // have both repetition (macro hits) and novelty (LZW/dict misses).
    let idents: Vec<String> = (0..40)
        .map(|_| {
            let b = base[rng.gen_range(0..base.len())];
            if rng.gen_bool(0.5) {
                format!("{b}{}", rng.gen_range(0..100))
            } else {
                b.to_string()
            }
        })
        .collect();
    let idents: Vec<&str> = idents.iter().map(String::as_str).collect();
    let mut out = Vec::new();
    for li in 0..lines {
        match rng.gen_range(0..10) {
            0 => {
                out.extend_from_slice(b"#define LIM_");
                out.extend_from_slice(idents[rng.gen_range(0..idents.len())].as_bytes());
                out.extend_from_slice(format!(" {}\n", rng.gen_range(0..4096)).as_bytes());
            }
            1 => {
                if rng.gen_bool(0.4) {
                    // An #ifdef block over a macro that may or may not
                    // have been defined above (cccp's skip path).
                    let name = idents[rng.gen_range(0..idents.len())];
                    out.extend_from_slice(format!("#ifdef LIM_{name}\n").as_bytes());
                    out.extend_from_slice(format!("{name} = {name} + 1;\n").as_bytes());
                    out.extend_from_slice(b"#endif\n");
                } else {
                    out.extend_from_slice(b"/* generated line ");
                    out.extend_from_slice(li.to_string().as_bytes());
                    out.extend_from_slice(b" */\n");
                }
            }
            2..=4 => {
                write_stmt(
                    &mut out,
                    kws[rng.gen_range(0..kws.len())],
                    idents[rng.gen_range(0..idents.len())],
                    rng.gen_range(0..100u32),
                );
            }
            _ => {
                let a = idents[rng.gen_range(0..idents.len())];
                let b = idents[rng.gen_range(0..idents.len())];
                let op = ["+", "-", "*", "/", "<<", "&"][rng.gen_range(0..6usize)];
                out.extend_from_slice(
                    format!("{a} = {b} {op} {};\n", rng.gen_range(0..256)).as_bytes(),
                );
            }
        }
    }
    out
}

fn write_stmt(out: &mut Vec<u8>, kw: &str, id: &str, n: u32) {
    out.extend_from_slice(format!("{kw} ({id} < {n}) {{ {id}++; }}\n").as_bytes());
}

/// A pair of byte streams for cmp: equal with probability `p_same`,
/// otherwise differing at a random position.
pub fn cmp_pair(rng: &mut Rng, lines: usize, same: bool) -> (Vec<u8>, Vec<u8>) {
    let a = text(rng, lines);
    if same {
        return (a.clone(), a);
    }
    let mut b = a.clone();
    if b.is_empty() {
        b.push(b'x');
    } else {
        let pos = rng.gen_range(0..b.len());
        b[pos] = b[pos].wrapping_add(1).max(1);
        b.truncate(rng.gen_range(pos..=b.len().max(pos)));
        if b.len() == pos {
            b.push(b'!');
        }
    }
    (a, b)
}

/// A makefile-like dependency description for the `make` benchmark:
/// `T<id>: D<id> D<id>…` lines followed by a `stamps` section giving
/// each node a timestamp.
pub fn makefile(rng: &mut Rng, targets: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for t in 0..targets {
        out.extend_from_slice(format!("t{t}:").as_bytes());
        // Depend only on lower-numbered nodes → acyclic.
        let deps = rng.gen_range(0..=3.min(t));
        let mut used = Vec::new();
        for _ in 0..deps {
            let d = rng.gen_range(0..t.max(1));
            if !used.contains(&d) && d < t {
                out.extend_from_slice(format!(" t{d}").as_bytes());
                used.push(d);
            }
        }
        out.push(b'\n');
    }
    out.extend_from_slice(b"#stamps\n");
    for t in 0..targets {
        out.extend_from_slice(format!("t{t} {}\n", rng.gen_range(0..1000)).as_bytes());
    }
    out
}

/// A simple archive for the `tar` benchmark: records of
/// `name-length, name bytes, size (2 bytes LE), payload, checksum byte`.
pub fn archive(rng: &mut Rng, files: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for f in 0..files {
        let name = format!("file{f:03}.txt");
        out.push(name.len() as u8);
        out.extend_from_slice(name.as_bytes());
        let size = rng.gen_range(8..200usize);
        out.push((size & 0xff) as u8);
        out.push((size >> 8) as u8);
        let mut sum: u32 = 0;
        for _ in 0..size {
            let b = rng.gen_range(32u8..127);
            sum = sum.wrapping_add(u32::from(b));
            out.push(b);
        }
        out.push((sum & 0xff) as u8);
    }
    out.push(0); // terminator: zero-length name
    out
}

/// Arithmetic expressions (one per line) for yacc and eqn:
/// integers, `+ - * /`, parentheses.
pub fn expressions(rng: &mut Rng, count: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for _ in 0..count {
        gen_expr(rng, &mut out, 0);
        out.push(b'\n');
    }
    out
}

fn gen_expr(rng: &mut Rng, out: &mut Vec<u8>, depth: usize) {
    if depth > 4 || rng.gen_bool(0.35) {
        out.extend_from_slice(rng.gen_range(1..100i32).to_string().as_bytes());
        return;
    }
    if rng.gen_bool(0.2) {
        out.push(b'(');
        gen_expr(rng, out, depth + 1);
        out.push(b')');
        return;
    }
    gen_expr(rng, out, depth + 1);
    // Operator mix skewed like real arithmetic code: mostly `+`.
    let r = rng.gen_range(0..100);
    out.push(if r < 45 {
        b'+'
    } else if r < 65 {
        b'-'
    } else if r < 90 {
        b'*'
    } else {
        b'/'
    });
    gen_expr(rng, out, depth + 1);
}

/// Boolean cubes (lines over `0`, `1`, `-`) for espresso.
pub fn cubes(rng: &mut Rng, vars: usize, count: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for _ in 0..count {
        for _ in 0..vars {
            out.push(match rng.gen_range(0..4) {
                0 => b'0',
                1 | 2 => b'1',
                _ => b'-',
            });
        }
        out.push(b'\n');
    }
    out
}

/// grep patterns of varying selectivity (literal fragments of real
/// words, some with `.`/`*`/`^`).
pub fn grep_pattern(rng: &mut Rng) -> Vec<u8> {
    let base = WORDS[rng.gen_range(0..WORDS.len())].as_bytes();
    let mut pat = Vec::new();
    match rng.gen_range(0..4) {
        0 => pat.extend_from_slice(base),
        1 => {
            pat.push(b'^');
            pat.extend_from_slice(base);
        }
        2 => {
            pat.extend_from_slice(&base[..base.len().min(2)]);
            pat.push(b'.');
            if base.len() > 3 {
                pat.extend_from_slice(&base[3..]);
            }
        }
        _ => {
            pat.extend_from_slice(&base[..base.len().min(2)]);
            pat.push(b'*');
        }
    }
    pat
}

/// Pick a seed-dependent *active subset* of `population` ids (roughly
/// three quarters, never empty) plus a small hot set within it — the
/// skew that makes different seeds exercise different branch-site
/// populations in the synthetic server workloads.
fn active_and_hot(rng: &mut Rng, population: usize) -> (Vec<u8>, Vec<u8>) {
    let mut active: Vec<u8> = (0..population as u8)
        .filter(|_| !rng.gen_bool(0.25))
        .collect();
    if active.is_empty() {
        active.push(rng.gen_range(0..population as u64) as u8);
    }
    let hot: Vec<u8> = (0..8.min(active.len()))
        .map(|_| active[rng.gen_range(0..active.len())])
        .collect();
    (active, hot)
}

/// Megamorphic-dispatch request stream: `count` records of
/// `[type, payload]` bytes. Types are drawn from a seed-dependent
/// active subset of `handlers` with a hot-set skew (≈70% of requests
/// hit ~8 hot types).
pub fn dispatch_requests(rng: &mut Rng, count: usize, handlers: usize) -> Vec<u8> {
    let (active, hot) = active_and_hot(rng, handlers);
    let mut out = Vec::with_capacity(count * 2);
    for _ in 0..count {
        let t = if rng.gen_bool(0.7) {
            hot[rng.gen_range(0..hot.len())]
        } else {
            active[rng.gen_range(0..active.len())]
        };
        out.push(t);
        out.push(rng.gen_range(0..256u64) as u8);
    }
    out
}

/// Server-routing request stream: `count` records of
/// `[method, route, payload]` bytes with a skewed method mix and the
/// same seed-dependent active/hot route subsetting as
/// [`dispatch_requests`].
pub fn route_requests(rng: &mut Rng, count: usize, routes: usize) -> Vec<u8> {
    let (active, hot) = active_and_hot(rng, routes);
    let mut out = Vec::with_capacity(count * 3);
    for _ in 0..count {
        // GET-heavy method mix: 0 = read, 1 = write, 2/3 = rare.
        let m = if rng.gen_bool(0.65) {
            0
        } else if rng.gen_bool(0.7) {
            1
        } else {
            rng.gen_range(2..4u64) as u8
        };
        let r = if rng.gen_bool(0.7) {
            hot[rng.gen_range(0..hot.len())]
        } else {
            active[rng.gen_range(0..active.len())]
        };
        out.push(m);
        out.push(r);
        out.push(rng.gen_range(0..256u64) as u8);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Rng {
        Rng::seed_from_u64(seed)
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(text(&mut rng(7), 50), text(&mut rng(7), 50));
        assert_eq!(c_source(&mut rng(7), 50), c_source(&mut rng(7), 50));
        assert_eq!(makefile(&mut rng(7), 20), makefile(&mut rng(7), 20));
        assert_eq!(archive(&mut rng(7), 5), archive(&mut rng(7), 5));
        assert_eq!(expressions(&mut rng(7), 9), expressions(&mut rng(7), 9));
        assert_eq!(
            dispatch_requests(&mut rng(7), 64, 96),
            dispatch_requests(&mut rng(7), 64, 96)
        );
        assert_eq!(
            route_requests(&mut rng(7), 64, 96),
            route_requests(&mut rng(7), 64, 96)
        );
    }

    #[test]
    fn request_streams_have_seed_dependent_populations() {
        let types = |seed: u64| -> std::collections::BTreeSet<u8> {
            dispatch_requests(&mut rng(seed), 400, 96)
                .chunks(2)
                .map(|r| r[0])
                .collect()
        };
        assert_ne!(types(1), types(2));
        // Every type stays in range for the dispatch switch.
        assert!(types(1).iter().all(|&t| t < 96));
        let routes = |seed: u64| -> std::collections::BTreeSet<u8> {
            route_requests(&mut rng(seed), 400, 96)
                .chunks(3)
                .map(|r| r[1])
                .collect()
        };
        assert_ne!(routes(3), routes(4));
        assert!(route_requests(&mut rng(5), 100, 96)
            .chunks(3)
            .all(|r| r[0] < 4));
    }

    #[test]
    fn text_has_lines_and_words() {
        let t = text(&mut rng(1), 100);
        assert_eq!(t.iter().filter(|&&c| c == b'\n').count(), 100);
        assert!(t.iter().any(|&c| c == b' '));
        assert!(t.iter().all(|&c| c == b'\n' || (32..127).contains(&c)));
    }

    #[test]
    fn cmp_pair_same_and_different() {
        let (a, b) = cmp_pair(&mut rng(2), 20, true);
        assert_eq!(a, b);
        let (a, b) = cmp_pair(&mut rng(3), 20, false);
        assert_ne!(a, b);
    }

    #[test]
    fn makefile_shape() {
        let m = makefile(&mut rng(4), 10);
        let s = String::from_utf8(m).unwrap();
        assert!(s.contains("t0:"));
        assert!(s.contains("#stamps"));
    }

    #[test]
    fn archive_is_parseable() {
        let a = archive(&mut rng(5), 3);
        // First record: name length then name.
        let n = a[0] as usize;
        assert_eq!(&a[1..1 + n], b"file000.txt");
        assert_eq!(*a.last().unwrap(), 0);
    }

    #[test]
    fn expressions_contain_operators() {
        let e = expressions(&mut rng(6), 50);
        let s = String::from_utf8(e).unwrap();
        assert!(s.contains('+') || s.contains('*'));
        assert!(s.lines().count() == 50);
    }

    #[test]
    fn cubes_alphabet() {
        let c = cubes(&mut rng(8), 8, 10);
        assert!(c
            .iter()
            .all(|&b| b == b'0' || b == b'1' || b == b'-' || b == b'\n'));
    }

    #[test]
    fn scale_units_are_ordered() {
        assert!(Scale::Test.units() < Scale::Small.units());
        assert!(Scale::Small.units() < Scale::Paper.units());
    }
}
