//! A literal reconstruction of the paper's **Figure 2** example: a
//! program fragment whose likely branch absorbs an *unlikely branch*
//! into its forward slots.
//!
//! Original fragment (left column of Figure 2):
//!
//! ```text
//! 1: I1
//! 2: beq pc+3 (likely)      → 5
//! 3: I3
//! 4: I4
//! 5: beq pc+3 (unlikely)    → 8
//! 6: I6
//! 7: I7
//! 8: I8
//! 9: I9
//! ```
//!
//! After the transformation (right column), the two instructions of the
//! likely branch's target path — the unlikely branch and I6 — are
//! copied into its k+ℓ = 2 forward slots, everything after shifts down,
//! and the branch's target is adjusted. This module exists for the
//! golden test below, which checks our slot-filling lowering produces
//! exactly that layout.

use branchlab_ir::{
    AluOp, BlockId, BranchId, Cond, FuncId, FunctionBuilder, LayoutPlan, Module, Op, Reg, Term,
};

/// Build a CFG module equivalent to Figure 2's original fragment.
///
/// Block structure (r0 and r1 drive the two branches):
/// * b0: `I1`; `beq r0 → b2 (likely)` else b1
/// * b1: `I3; I4`; jmp b2  — the fall-through path
/// * b2: `beq r1 → b4 (unlikely)` else b3
/// * b3: `I6; I7`; jmp b4
/// * b4: `I8; I9`; halt
#[must_use]
pub fn figure2_module() -> Module {
    let mut fb = FunctionBuilder::new("main", FuncId(0), 0);
    let r0 = fb.new_reg();
    let r1 = fb.new_reg();
    let marker = fb.new_reg();
    let b1 = fb.new_block();
    let b2 = fb.new_block();
    let b3 = fb.new_block();
    let b4 = fb.new_block();

    let inst = |n: i64| Op::Alu {
        op: AluOp::Add,
        dst: marker,
        a: Reg(2).into(),
        b: n.into(),
    };

    // b0: I1; beq (likely taken → b2)
    fb.push(inst(1)); // I1
    fb.terminate(Term::Br {
        cond: Cond::Eq,
        a: r0.into(),
        b: 0i64.into(),
        then_: b2,
        else_: b1,
    });
    // b1: I3; I4 (the not-taken path of the likely branch)
    fb.switch_to(b1);
    fb.push(inst(3)); // I3
    fb.push(inst(4)); // I4
    fb.terminate(Term::Jmp(b2));
    // b2: beq (unlikely → b4)
    fb.switch_to(b2);
    fb.terminate(Term::Br {
        cond: Cond::Eq,
        a: r1.into(),
        b: 0i64.into(),
        then_: b4,
        else_: b3,
    });
    // b3: I6; I7
    fb.switch_to(b3);
    fb.push(inst(6)); // I6
    fb.push(inst(7)); // I7
    fb.terminate(Term::Jmp(b4));
    // b4: I8; I9
    fb.switch_to(b4);
    fb.push(inst(8)); // I8
    fb.push(inst(9)); // I9
    fb.terminate(Term::Halt);

    Module {
        funcs: vec![fb.finish()],
        globals_words: 0,
        globals_init: Vec::new(),
        entry: FuncId(0),
    }
}

/// The layout plan of the figure: block order 0,1,2,3,4 (the original
/// order), the first branch likely-taken, the second unlikely, and
/// k + ℓ = 2 forward slots.
#[must_use]
pub fn figure2_plan(module: &Module) -> LayoutPlan {
    let mut plan = LayoutPlan::natural(module);
    plan.slots = 2;
    plan.slot_jumps = false;
    plan.set_likely(
        BranchId {
            func: FuncId(0),
            block: BlockId(0),
        },
        true,
    ); // likely
    plan.set_likely(
        BranchId {
            func: FuncId(0),
            block: BlockId(2),
        },
        false,
    ); // unlikely
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchlab_interp::run_simple;
    use branchlab_ir::{lower, lower_with_plan, Addr, Inst};

    #[test]
    fn figure2_transformed_layout_matches_the_paper() {
        let module = figure2_module();
        let plan = figure2_plan(&module);
        let prog = lower_with_plan(&module, &plan).unwrap();

        // Expected layout (0-based addresses; paper's figure is 1-based):
        //  0: I1
        //  1: beq (likely) → target 6, 2 slots
        //  2: [slot] copy of the unlikely beq      ← absorbed branch
        //  3: [slot] copy of I6
        //  4: I3
        //  5: I4
        //  6: beq (unlikely) → I8's address
        //  7: I6
        //  8: I7
        //  9: I8
        // 10: I9
        // 11: halt
        assert_eq!(prog.len(), 12, "{:#?}", prog.code);
        assert!(matches!(prog.code[0], Inst::Alu { .. })); // I1
        match &prog.code[1] {
            Inst::Br {
                likely,
                slots,
                target,
                ..
            } => {
                assert!(*likely);
                assert_eq!(*slots, 2);
                // Target = relocated start of the branch's target path
                // (original location 5 → shifted by the 2 slots → 6, the
                // paper's "pc+3 becomes pc+5").
                assert_eq!(*target, Addr(6));
            }
            other => panic!("expected likely branch, got {other:?}"),
        }
        // The forward slots hold copies of the target path's first two
        // instructions: the unlikely branch (absorbed, target unchanged)
        // and I6.
        assert!(prog.meta[2].is_slot && prog.meta[3].is_slot);
        match (&prog.code[2], &prog.code[6]) {
            (
                Inst::Br {
                    target: slot_target,
                    likely: slot_likely,
                    ..
                },
                Inst::Br {
                    target: real_target,
                    ..
                },
            ) => {
                assert_eq!(
                    slot_target, real_target,
                    "the absorbed branch's target is not altered (paper: \
                     'Note that the target for this branch is not altered')"
                );
                assert!(!slot_likely);
            }
            other => panic!("expected branch copies at 2 and 6, got {other:?}"),
        }
        assert!(matches!(prog.code[3], Inst::Alu { .. })); // copy of I6
                                                           // Fall-through path I3, I4 follows the slots.
        assert!(matches!(prog.code[4], Inst::Alu { .. }));
        assert!(matches!(prog.code[5], Inst::Alu { .. }));
        // And the unlikely branch received no slots of its own.
        match &prog.code[6] {
            Inst::Br { slots, likely, .. } => {
                assert_eq!(*slots, 0);
                assert!(!likely);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn figure2_semantics_survive_for_all_register_outcomes() {
        // The fragment reads r0/r1 as 0 (registers initialize to zero),
        // so both branches are taken; semantics must match the
        // slot-free build. (With MiniC we also cover data-driven cases;
        // this is the raw-IR check.)
        let module = figure2_module();
        let natural = lower(&module).unwrap();
        let fs = lower_with_plan(&module, &figure2_plan(&module)).unwrap();
        let a = run_simple(&natural, &[]).unwrap();
        let b = run_simple(&fs, &[]).unwrap();
        assert_eq!(a.exit_value, b.exit_value);
        assert_eq!(a.stats.insts, b.stats.insts);
    }
}
