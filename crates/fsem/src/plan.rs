//! Building the Forward Semantic layout plan: trace order, likely bits,
//! and forward-slot reservation — the complete software side of the
//! paper's scheme, handed to `branchlab_ir::lower_with_plan`.

use branchlab_ir::{LayoutPlan, LowerError, Module, Program, Term};
use branchlab_profile::Profile;

use crate::traces::select_traces;

/// Configuration of the Forward Semantic transformation.
#[derive(Copy, Clone, Debug)]
pub struct FsConfig {
    /// Forward slots per predicted-taken branch — `k + ℓ` in the paper.
    pub slots: u16,
    /// Give slots to unconditional direct jumps too (they are trivially
    /// "predicted taken"; the paper reserves slots after every
    /// predicted-taken branch at a trace end, which includes these).
    pub slot_jumps: bool,
}

impl FsConfig {
    /// The paper's Table 4 machine: `k + ℓ = 2`.
    #[must_use]
    pub fn paper_shallow() -> Self {
        FsConfig {
            slots: 2,
            slot_jumps: true,
        }
    }

    /// A configuration with `k + ℓ = slots`.
    #[must_use]
    pub fn with_slots(slots: u16) -> Self {
        FsConfig {
            slots,
            slot_jumps: true,
        }
    }
}

impl Default for FsConfig {
    fn default() -> Self {
        Self::paper_shallow()
    }
}

/// Build the Forward Semantic [`LayoutPlan`] for a module:
///
/// 1. select traces from the profile (hot paths fall through);
/// 2. set each conditional branch's likely bit from profile edge
///    weights (`then` likely iff its edge outweighs the `else` edge);
/// 3. reserve `config.slots` forward slots after every predicted-taken
///    branch (filled with target-path copies during lowering).
#[must_use]
pub fn build_fs_plan(module: &Module, profile: &Profile, config: FsConfig) -> LayoutPlan {
    let traces = select_traces(module, profile);
    let weights = profile.block_weights(module);
    let mut plan = LayoutPlan::natural(module);
    plan.slots = config.slots;
    plan.slot_jumps = config.slot_jumps;
    for (fi, f) in module.funcs.iter().enumerate() {
        plan.hot[fi] = weights[fi].iter().map(|&w| w > 0).collect();
        plan.order[fi] = traces[fi].layout_order();
        for b in &f.blocks {
            if let Term::Br { then_, else_, .. } = b.term {
                let wt = profile.edge_weight(f.id, b.id, then_);
                let we = profile.edge_weight(f.id, b.id, else_);
                plan.then_likely[fi][b.id.0 as usize] = if wt == 0 && we == 0 {
                    None
                } else {
                    Some(wt > we)
                };
            }
        }
    }
    plan
}

/// Lower a module under the Forward Semantic transformation.
///
/// # Errors
/// Returns [`LowerError`] if the module/plan are inconsistent (cannot
/// happen for plans produced by [`build_fs_plan`] on the same module).
pub fn fs_program(
    module: &Module,
    profile: &Profile,
    config: FsConfig,
) -> Result<Program, LowerError> {
    branchlab_ir::lower_with_plan(module, &build_fs_plan(module, profile, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchlab_interp::run_simple;
    use branchlab_ir::{lower, Inst};
    use branchlab_minic::compile;
    use branchlab_profile::profile_module;

    const SPACE_COUNTER: &str = r"
        int main() {
            int c; int n = 0;
            while ((c = getc(0)) != -1) {
                if (c == ' ') { n++; }
            }
            return n;
        }
    ";

    fn spacey_input() -> Vec<u8> {
        (0..400)
            .map(|i| if i % 10 == 0 { b'x' } else { b' ' })
            .collect()
    }

    #[test]
    fn fs_program_preserves_semantics() {
        let m = compile(SPACE_COUNTER).unwrap();
        let prof = profile_module(&m, &[vec![spacey_input()]]).unwrap();
        let natural = lower(&m).unwrap();
        let fs = fs_program(&m, &prof, FsConfig::with_slots(3)).unwrap();
        // Same input as the profile…
        let input = spacey_input();
        let a = run_simple(&natural, &[&input]).unwrap();
        let b = run_simple(&fs, &[&input]).unwrap();
        assert_eq!(a.exit_value, b.exit_value);
        assert_eq!(a.outputs, b.outputs);
        // …and a *different* input (transformation must not bake in data).
        let other = b"  x  yy   z".to_vec();
        let a = run_simple(&natural, &[&other]).unwrap();
        let b = run_simple(&fs, &[&other]).unwrap();
        assert_eq!(a.exit_value, b.exit_value);
    }

    #[test]
    fn fs_program_contains_slots_and_likely_bits() {
        // A do-while back edge is a conditional branch whose likely
        // successor (the loop head) is already placed in its own trace,
        // so it is predicted taken and receives forward slots.
        let m =
            compile("int main() { int i = 0; do { i++; } while (i < 1000); return i; }").unwrap();
        let prof = profile_module(&m, &[vec![]]).unwrap();
        let fs = fs_program(&m, &prof, FsConfig::with_slots(2)).unwrap();
        assert!(fs.slot_count() > 0, "expected forward slots");
        let has_likely_slots = fs.code.iter().any(|i| {
            matches!(
                i,
                Inst::Br {
                    likely: true,
                    slots: 2,
                    ..
                }
            )
        });
        assert!(
            has_likely_slots,
            "expected a likely-taken branch with slots"
        );
    }

    #[test]
    fn hot_fallthrough_paths_are_not_predicted_taken() {
        // In SPACE_COUNTER every hot direction falls through after trace
        // layout — exactly the paper's intent ("all conditional branches
        // that are predicted taken are placed at the end of traces").
        let m = compile(SPACE_COUNTER).unwrap();
        let prof = profile_module(&m, &[vec![spacey_input()]]).unwrap();
        let fs = fs_program(&m, &prof, FsConfig::with_slots(2)).unwrap();
        let likely_brs = fs
            .code
            .iter()
            .filter(|i| matches!(i, Inst::Br { likely: true, .. }))
            .count();
        assert_eq!(likely_brs, 0, "hot paths should fall through");
        // The loop back edge (unconditional) still carries slots.
        assert!(fs.slot_count() > 0);
    }

    #[test]
    fn zero_slots_fs_is_pure_relayout() {
        let m = compile(SPACE_COUNTER).unwrap();
        let prof = profile_module(&m, &[vec![spacey_input()]]).unwrap();
        let fs = fs_program(
            &m,
            &prof,
            FsConfig {
                slots: 0,
                slot_jumps: false,
            },
        )
        .unwrap();
        assert_eq!(fs.slot_count(), 0);
        let input = spacey_input();
        let a = run_simple(&lower(&m).unwrap(), &[&input]).unwrap();
        let b = run_simple(&fs, &[&input]).unwrap();
        assert_eq!(a.exit_value, b.exit_value);
    }

    #[test]
    fn likely_bits_follow_edge_majority() {
        let m = compile(SPACE_COUNTER).unwrap();
        let prof = profile_module(&m, &[vec![spacey_input()]]).unwrap();
        let plan = build_fs_plan(&m, &prof, FsConfig::default());
        // At least one branch has a decided likely bit.
        let decided = plan.then_likely[0].iter().filter(|b| b.is_some()).count();
        assert!(decided >= 2, "plan: {:?}", plan.then_likely);
    }

    #[test]
    fn unprofiled_branches_have_no_likely_bit() {
        let m = compile(
            r"
            int main() {
                if (getc(0) == -1) { return 1; }
                if (getc(0) == 'q') { return 2; } // unreached on empty input
                return 3;
            }",
        )
        .unwrap();
        let prof = profile_module(&m, &[vec![Vec::new()]]).unwrap();
        let plan = build_fs_plan(&m, &prof, FsConfig::default());
        assert!(
            plan.then_likely[0].iter().any(Option::is_none),
            "unexecuted branch should stay undecided"
        );
    }

    #[test]
    fn recursion_and_calls_survive_transformation() {
        let src = r"
            int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
            int main() { return fib(14); }
        ";
        let m = compile(src).unwrap();
        let prof = profile_module(&m, &[vec![]]).unwrap();
        let fs = fs_program(&m, &prof, FsConfig::with_slots(4)).unwrap();
        assert_eq!(run_simple(&fs, &[]).unwrap().exit_value, 377);
    }
}
