//! Code-expansion metrics: the source of the paper's Table 5
//! ("Percentage of code-size increase as a function of k + ℓ").

use branchlab_ir::{lower, LowerError, Module};
use branchlab_profile::Profile;

use crate::plan::{fs_program, FsConfig};

/// Static code sizes of one module's builds at one slot depth.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ExpansionPoint {
    /// Forward slots per predicted-taken branch (k + ℓ).
    pub slots: u16,
    /// Static instructions in the conventional (natural) build.
    pub natural_size: usize,
    /// Static instructions in the trace-laid-out build *without* slots —
    /// the Table 5 baseline ("code-size increases occur due to the
    /// copying of instructions into forward slots").
    pub base_size: usize,
    /// Static instructions in the Forward Semantic build (trace layout +
    /// forward slots).
    pub fs_size: usize,
    /// Forward-slot instructions within `fs_size`.
    pub slot_insts: usize,
}

impl ExpansionPoint {
    /// Percentage growth caused by forward-slot copying, relative to the
    /// trace layout without slots — the quantity Table 5 reports.
    #[must_use]
    pub fn increase_pct(&self) -> f64 {
        if self.base_size == 0 {
            0.0
        } else {
            (self.fs_size as f64 - self.base_size as f64) / self.base_size as f64 * 100.0
        }
    }

    /// Percentage size change of the slot-free trace re-layout relative
    /// to the conventional layout (can be negative: re-layout removes
    /// jumps).
    #[must_use]
    pub fn relayout_pct(&self) -> f64 {
        if self.natural_size == 0 {
            0.0
        } else {
            (self.base_size as f64 - self.natural_size as f64) / self.natural_size as f64 * 100.0
        }
    }
}

/// Measure code expansion at each requested slot depth.
///
/// # Errors
/// Returns [`LowerError`] if the module cannot be lowered.
pub fn code_expansion(
    module: &Module,
    profile: &Profile,
    slot_depths: &[u16],
) -> Result<Vec<ExpansionPoint>, LowerError> {
    let natural_size = lower(module)?.len();
    let base_size = fs_program(
        module,
        profile,
        FsConfig {
            slots: 0,
            slot_jumps: false,
        },
    )?
    .len();
    slot_depths
        .iter()
        .map(|&slots| {
            let fs = fs_program(module, profile, FsConfig::with_slots(slots))?;
            Ok(ExpansionPoint {
                slots,
                natural_size,
                base_size,
                fs_size: fs.len(),
                slot_insts: fs.slot_count(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchlab_minic::compile;
    use branchlab_profile::profile_module;

    fn measure(src: &str, runs: &[Vec<Vec<u8>>], depths: &[u16]) -> Vec<ExpansionPoint> {
        let m = compile(src).unwrap();
        let prof = profile_module(&m, runs).unwrap();
        code_expansion(&m, &prof, depths).unwrap()
    }

    const LOOPY: &str = r"
        int main() {
            int c; int n = 0; int w = 0; int in = 0;
            while ((c = getc(0)) != -1) {
                n++;
                if (c == ' ' || c == '\n') { in = 0; }
                else if (in == 0) { in = 1; w++; }
            }
            return n * 100 + w;
        }
    ";

    #[test]
    fn expansion_grows_with_slot_depth() {
        let pts = measure(
            LOOPY,
            &[vec![b"the quick brown fox".to_vec()]],
            &[1, 2, 4, 8],
        );
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(
                w[1].fs_size >= w[0].fs_size,
                "expansion must be monotone: {pts:?}"
            );
        }
        assert!(pts[3].increase_pct() > pts[0].increase_pct());
    }

    #[test]
    fn expansion_is_roughly_linear_in_slots() {
        let pts = measure(LOOPY, &[vec![b"a b c d e f g h".to_vec()]], &[1, 2, 4, 8]);
        // slot_insts = (#slotted branches) × slots → exactly linear in
        // slots as long as the same branches are predicted taken.
        let per_slot: Vec<f64> = pts
            .iter()
            .map(|p| p.slot_insts as f64 / f64::from(p.slots))
            .collect();
        for w in per_slot.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9, "{per_slot:?}");
        }
    }

    #[test]
    fn paper_magnitude_band() {
        // Table 5 averages ≈3.2% at k+ℓ=1 up to ≈33% at k+ℓ=8. Our MiniC
        // workloads should land in the same order of magnitude (0.5%–60%).
        let pts = measure(
            LOOPY,
            &[vec![b"words in a row for counting".to_vec()]],
            &[1, 8],
        );
        let p1 = pts[0].increase_pct();
        let p8 = pts[1].increase_pct();
        assert!(p1 > 0.0 && p1 < 25.0, "k+l=1 expansion {p1}%");
        assert!(p8 > p1 && p8 < 120.0, "k+l=8 expansion {p8}%");
    }

    #[test]
    fn zero_depth_has_zero_slot_expansion() {
        let pts = measure(LOOPY, &[vec![b"x y".to_vec()]], &[0]);
        assert_eq!(pts[0].slot_insts, 0);
        assert!((pts[0].increase_pct() - 0.0).abs() < 1e-12);
        // Re-layout delta is reported separately and may have any sign.
        let _ = pts[0].relayout_pct();
    }
}
