//! Delayed-branch slot filling analysis — the alternative the Forward
//! Semantic was designed to beat.
//!
//! The paper's introduction leans on McFarling & Hennessy's measurement
//! that a compiler can fill **one** delay slot for ≈70% of branches but
//! a **second** slot only ≈25% of the time, concluding that delayed
//! branches cannot support deeply pipelined fetch units. This module
//! reproduces that measurement on our suite: for each conditional
//! branch, how many of the instructions *preceding it in its own basic
//! block* can legally move into delay slots after it?
//!
//! Movability rule (filling *from above*): scanning backward through
//! the block, an op can move into a slot when doing so crosses no
//! dependence — it must not define a register the branch reads, must
//! not define a register that a skipped (staying) op reads or writes,
//! must not read a register a skipped op defines, must respect
//! memory/I/O ordering against skipped ops, and must not be a call.
//!
//! On this compare-and-branch IR the measured from-above rates come out
//! far *below* McFarling & Hennessy's ≈70%/≈25%: conditions are
//! computed immediately before their branches and loop-test blocks are
//! often empty, so there is usually nothing independent to hoist. That
//! is exactly the argument for filling slots from the *target path*
//! with squashing — which, pushed to `k + ℓ` slots with compiler
//! prediction, is the Forward Semantic.

use std::collections::HashSet;

use branchlab_ir::{BranchId, Module, Op, Operand, Reg, Term};
use branchlab_profile::Profile;

/// Fill statistics for delay slots 1..=N.
#[derive(Clone, Debug, PartialEq)]
pub struct FillRates {
    /// Conditional branch sites analyzed.
    pub static_branches: u64,
    /// `static_filled[i]` = number of sites whose slot `i+1` can be
    /// filled from above.
    pub static_filled: Vec<u64>,
    /// Dynamic executions of the analyzed sites (from the profile).
    pub dynamic_branches: u64,
    /// `dynamic_filled[i]` = executions whose slot `i+1` was filled.
    pub dynamic_filled: Vec<u64>,
}

impl FillRates {
    /// Fraction of static branch sites with slot `i` (1-based) filled.
    #[must_use]
    pub fn static_rate(&self, slot: usize) -> f64 {
        rate(
            self.static_filled.get(slot - 1).copied().unwrap_or(0),
            self.static_branches,
        )
    }

    /// Fraction of dynamic branches with slot `i` (1-based) filled.
    #[must_use]
    pub fn dynamic_rate(&self, slot: usize) -> f64 {
        rate(
            self.dynamic_filled.get(slot - 1).copied().unwrap_or(0),
            self.dynamic_branches,
        )
    }
}

fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Registers a branch condition reads.
fn branch_reads(a: Operand, b: Operand) -> HashSet<Reg> {
    [a, b].iter().filter_map(|o| o.reg()).collect()
}

/// Registers an op defines.
fn op_defs(op: &Op) -> Option<Reg> {
    match op {
        Op::Alu { dst, .. }
        | Op::Cmp { dst, .. }
        | Op::Mov { dst, .. }
        | Op::Ld { dst, .. }
        | Op::FrameAddr { dst, .. }
        | Op::In { dst, .. } => Some(*dst),
        Op::Call { dst, .. } => *dst,
        Op::St { .. } | Op::Out { .. } | Op::Nop => None,
    }
}

/// Registers an op reads.
fn op_uses(op: &Op) -> HashSet<Reg> {
    let mut u = HashSet::new();
    let mut add = |o: Operand| {
        if let Some(r) = o.reg() {
            u.insert(r);
        }
    };
    match op {
        Op::Alu { a, b, .. } | Op::Cmp { a, b, .. } => {
            add(*a);
            add(*b);
        }
        Op::Mov { src, .. } => add(*src),
        Op::Ld { base, .. } => add(*base),
        Op::St { src, base, .. } => {
            add(*src);
            add(*base);
        }
        Op::In { stream, .. } => add(*stream),
        Op::Out { src, stream, .. } => {
            add(*src);
            add(*stream);
        }
        Op::Call { args, .. } => {
            for r in args {
                u.insert(*r);
            }
        }
        Op::FrameAddr { .. } | Op::Nop => {}
    }
    u
}

#[derive(Copy, Clone, PartialEq, Eq)]
enum MemClass {
    None,
    Load,
    Store,
    Input,
    Output,
}

fn mem_class(op: &Op) -> MemClass {
    match op {
        Op::Ld { .. } => MemClass::Load,
        Op::St { .. } => MemClass::Store,
        Op::In { .. } => MemClass::Input,
        Op::Out { .. } => MemClass::Output,
        _ => MemClass::None,
    }
}

/// How many delay slots (up to `max_slots`) the branch terminating
/// `ops` can fill from above, allowing reordering past skipped ops when
/// no register, memory, or I/O dependence is crossed.
#[must_use]
pub fn fillable_slots(ops: &[Op], cond_a: Operand, cond_b: Operand, max_slots: usize) -> usize {
    let reads = branch_reads(cond_a, cond_b);
    // State accumulated over *skipped* (staying) ops we'd move past.
    let mut skipped_defs: HashSet<Reg> = HashSet::new();
    let mut skipped_uses: HashSet<Reg> = HashSet::new();
    let mut skipped_load = false;
    let mut skipped_store = false;
    let mut skipped_in = false;
    let mut skipped_out = false;
    let mut filled = 0;

    for op in ops.iter().rev() {
        if filled == max_slots {
            break;
        }
        let defs = op_defs(op);
        let uses = op_uses(op);
        let mem = mem_class(op);
        let reg_ok = defs.is_none_or(|d| {
            !reads.contains(&d) && !skipped_uses.contains(&d) && !skipped_defs.contains(&d)
        }) && uses.iter().all(|r| !skipped_defs.contains(r));
        let mem_ok = match mem {
            MemClass::None => true,
            // A load moved past a store could read the wrong value.
            MemClass::Load => !skipped_store,
            // A store moved past any memory access reorders the heap.
            MemClass::Store => !skipped_store && !skipped_load,
            // Input/output order is architectural.
            MemClass::Input => !skipped_in,
            MemClass::Output => !skipped_out,
        };
        if reg_ok && mem_ok && !matches!(op, Op::Call { .. }) {
            filled += 1;
        } else {
            if let Some(d) = defs {
                skipped_defs.insert(d);
            }
            skipped_uses.extend(uses);
            match mem {
                MemClass::Load => skipped_load = true,
                MemClass::Store => skipped_store = true,
                MemClass::Input => skipped_in = true,
                MemClass::Output => skipped_out = true,
                MemClass::None => {}
            }
            if matches!(op, Op::Call { .. }) {
                // Calls can do anything: nothing may move past one.
                break;
            }
        }
    }
    filled
}

/// Measure fill rates over every conditional branch of a module,
/// weighting the dynamic rates by the profile's per-site counts.
#[must_use]
pub fn fill_rates(module: &Module, profile: &Profile, max_slots: usize) -> FillRates {
    let mut r = FillRates {
        static_branches: 0,
        static_filled: vec![0; max_slots],
        dynamic_branches: 0,
        dynamic_filled: vec![0; max_slots],
    };
    for f in &module.funcs {
        for block in &f.blocks {
            let Term::Br { a, b, .. } = block.term else {
                continue;
            };
            let filled = fillable_slots(&block.ops, a, b, max_slots);
            let weight = profile
                .sites
                .get(BranchId {
                    func: f.id,
                    block: block.id,
                })
                .map_or(0, |c| c.total);
            r.static_branches += 1;
            r.dynamic_branches += weight;
            for slot in 0..filled {
                r.static_filled[slot] += 1;
                r.dynamic_filled[slot] += weight;
            }
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchlab_ir::{AluOp, Reg};
    use branchlab_minic::compile;
    use branchlab_profile::profile_module;

    fn alu(dst: u16, src: u16) -> Op {
        Op::Alu {
            op: AluOp::Add,
            dst: Reg(dst),
            a: Reg(src).into(),
            b: 1i64.into(),
        }
    }

    #[test]
    fn independent_ops_fill_slots() {
        // r1 += 1; r2 += 1; branch on r0 — both movable.
        let ops = vec![alu(1, 1), alu(2, 2)];
        assert_eq!(fillable_slots(&ops, Reg(0).into(), 0i64.into(), 2), 2);
    }

    #[test]
    fn op_feeding_the_condition_is_skipped_but_independents_still_move() {
        // r1 += 1; r0 += 1; branch on r0 — the closest op defines r0 and
        // stays, but the earlier independent r1 op can move past it.
        let ops = vec![alu(1, 1), alu(0, 0)];
        assert_eq!(fillable_slots(&ops, Reg(0).into(), 0i64.into(), 2), 1);
        // r0 += 1; r1 += 1 — both checked: r1 moves, r0 stays.
        let ops = vec![alu(0, 0), alu(1, 1)];
        assert_eq!(fillable_slots(&ops, Reg(0).into(), 0i64.into(), 2), 1);
    }

    #[test]
    fn dependences_across_skipped_ops_are_respected() {
        // r2 = r1 + 1; r0 = r2 + 1; branch on r0.
        // r0's def stays; r2's def cannot move past it because the
        // staying op *reads* r2.
        let dep = Op::Alu {
            op: AluOp::Add,
            dst: Reg(0),
            a: Reg(2).into(),
            b: 1i64.into(),
        };
        let ops = vec![alu(2, 1), dep];
        assert_eq!(fillable_slots(&ops, Reg(0).into(), 0i64.into(), 2), 0);
    }

    #[test]
    fn loads_do_not_move_past_stores() {
        let st = Op::St {
            src: Reg(1).into(),
            base: 5i64.into(),
            offset: 0,
        };
        let ld = Op::Ld {
            dst: Reg(2),
            base: 6i64.into(),
            offset: 0,
        };
        // ld; st; branch — st movable (no load skipped), then ld movable.
        assert_eq!(
            fillable_slots(&[ld.clone(), st.clone()], Reg(0).into(), 0i64.into(), 2),
            2
        );
        // Now force the store to stay: it reads r0, and the staying op
        // right before the branch *defines* r0, so moving the store
        // past it would read the wrong value. With the store skipped,
        // the load may not cross it either.
        let st0 = Op::St {
            src: Reg(0).into(),
            base: 5i64.into(),
            offset: 0,
        };
        let cond_def = alu(0, 0); // defines r0 read by branch → stays
        let ops = vec![ld, st0, cond_def];
        assert_eq!(fillable_slots(&ops, Reg(0).into(), 0i64.into(), 3), 0);
    }

    #[test]
    fn stores_and_io_are_movable_but_calls_are_not() {
        let st = Op::St {
            src: Reg(1).into(),
            base: 0i64.into(),
            offset: 0,
        };
        let out = Op::Out {
            src: Reg(1).into(),
            stream: 1i64.into(),
        };
        assert_eq!(fillable_slots(&[st, out], Reg(0).into(), 0i64.into(), 2), 2);
        let call = Op::Call {
            func: branchlab_ir::FuncId(0),
            args: vec![],
            dst: None,
        };
        assert_eq!(fillable_slots(&[call], Reg(0).into(), 0i64.into(), 2), 0);
    }

    #[test]
    fn empty_block_fills_nothing() {
        assert_eq!(fillable_slots(&[], Reg(0).into(), 0i64.into(), 2), 0);
    }

    #[test]
    fn max_slots_caps_the_count() {
        let ops = vec![alu(1, 1), alu(2, 2), alu(3, 3), alu(4, 4)];
        assert_eq!(fillable_slots(&ops, Reg(0).into(), 0i64.into(), 2), 2);
        assert_eq!(fillable_slots(&ops, Reg(0).into(), 0i64.into(), 4), 4);
    }

    #[test]
    fn suite_fill_rates_match_mcfarling_shape() {
        // Slot 1 fills much more often than slot 2 (paper: ≈70% vs ≈25%).
        let mut agg = FillRates {
            static_branches: 0,
            static_filled: vec![0; 2],
            dynamic_branches: 0,
            dynamic_filled: vec![0; 2],
        };
        for name in ["wc", "compress", "grep", "cccp", "yacc"] {
            let bench = branchlab_workloads::benchmark(name).unwrap();
            let module = bench.compile().unwrap();
            let runs = bench.runs(branchlab_workloads::Scale::Test, 3);
            let profile = profile_module(&module, &runs).unwrap();
            let r = fill_rates(&module, &profile, 2);
            agg.static_branches += r.static_branches;
            agg.dynamic_branches += r.dynamic_branches;
            for i in 0..2 {
                agg.static_filled[i] += r.static_filled[i];
                agg.dynamic_filled[i] += r.dynamic_filled[i];
            }
        }
        let s1 = agg.dynamic_rate(1);
        let s2 = agg.dynamic_rate(2);
        assert!(
            s1 >= s2,
            "slot 1 ({s1}) must fill at least as often as slot 2 ({s2})"
        );
        // Compare-and-branch code fills from above far less often than
        // McFarling's ≈70% — the finding that motivates target-path
        // (squashing/Forward Semantic) filling.
        assert!(s1 > 0.01 && s1 < 0.7, "slot-1 fill rate {s1}");
    }

    #[test]
    fn fill_rates_weight_by_profile() {
        let src = r"
            int main() {
                int i; int x = 0;
                for (i = 0; i < 100; i++) { x = x + 3; }
                return x;
            }
        ";
        let module = compile(src).unwrap();
        let profile = profile_module(&module, &[vec![]]).unwrap();
        let r = fill_rates(&module, &profile, 2);
        assert!(r.static_branches >= 1);
        assert!(r.dynamic_branches >= 100);
        // Rates are probabilities.
        for slot in 1..=2 {
            assert!((0.0..=1.0).contains(&r.static_rate(slot)));
            assert!((0.0..=1.0).contains(&r.dynamic_rate(slot)));
        }
    }
}
