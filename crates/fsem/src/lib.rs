//! # branchlab-fsem
//!
//! The **Forward Semantic** — the software branch-cost-reduction scheme
//! that is the central contribution of Hwu, Conte & Chang (ISCA 1989) —
//! implemented end to end:
//!
//! 1. [`select_traces`]: Hwu–Chang trace selection over profile data,
//!    so that predicted-taken conditional branches land at trace ends;
//! 2. [`build_fs_plan`]: trace-order layout + likely bits + reservation
//!    of `k + ℓ` forward slots after every predicted-taken branch;
//! 3. [`fs_program`]: the transformed executable (slots filled with
//!    copies of the target path during lowering — the paper's
//!    slot-filling algorithm);
//! 4. [`code_expansion`]: the static code-growth measurement behind the
//!    paper's Table 5.
//!
//! ```
//! use branchlab_fsem::{fs_program, FsConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = branchlab_minic::compile(
//!     "int main() { int i; int s = 0; for (i = 0; i < 64; i++) { s += i; } return s; }",
//! )?;
//! let profile = branchlab_profile::profile_module(&module, &[vec![]])?;
//! let fs = fs_program(&module, &profile, FsConfig::with_slots(2))?;
//! let out = branchlab_interp::run_simple(&fs, &[])?;
//! assert_eq!(out.exit_value, 2016);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod delayed;
pub mod figure2;
mod metrics;
mod plan;
mod traces;

pub use metrics::{code_expansion, ExpansionPoint};
pub use plan::{build_fs_plan, fs_program, FsConfig};
pub use traces::{select_function_traces, select_traces, FunctionTraces};
