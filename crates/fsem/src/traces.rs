//! Trace selection à la Hwu & Chang (MICRO-21, 1988), as used by the
//! paper's Forward Semantic: group basic blocks that almost always
//! execute together into *traces*, growing each trace from a seed block
//! along mutually-most-likely edges.

use std::collections::HashMap;

use branchlab_ir::{BlockId, Function, Module};
use branchlab_profile::Profile;

/// The traces selected for one function, in layout order (entry trace
/// first, then by descending weight).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionTraces {
    /// Each trace is a sequence of blocks laid out consecutively.
    pub traces: Vec<Vec<BlockId>>,
}

impl FunctionTraces {
    /// The block layout order implied by the traces (concatenation).
    #[must_use]
    pub fn layout_order(&self) -> Vec<BlockId> {
        self.traces.iter().flatten().copied().collect()
    }

    /// Index of the trace containing each block.
    #[must_use]
    pub fn trace_of(&self) -> HashMap<BlockId, usize> {
        let mut m = HashMap::new();
        for (i, t) in self.traces.iter().enumerate() {
            for &b in t {
                m.insert(b, i);
            }
        }
        m
    }
}

/// Select traces for every function of a module from profile data.
#[must_use]
pub fn select_traces(module: &Module, profile: &Profile) -> Vec<FunctionTraces> {
    let weights = profile.block_weights(module);
    module
        .funcs
        .iter()
        .map(|f| select_function_traces(f, profile, &weights[f.id.0 as usize]))
        .collect()
}

/// Select traces for one function.
///
/// Growth rule: from the current block, follow the heaviest outgoing
/// edge to a block not yet in any trace, but only when that edge is also
/// the heaviest *incoming* edge of its destination ("mutually most
/// likely"); symmetric for backward growth from the seed. Ties break
/// toward lower block ids for determinism. Unexecuted blocks become
/// singleton traces at the end.
#[must_use]
pub fn select_function_traces(
    func: &Function,
    profile: &Profile,
    weights: &[u64],
) -> FunctionTraces {
    let n = func.blocks.len();
    let mut in_trace = vec![false; n];

    // Successor/predecessor edge weights.
    let succs: Vec<Vec<(BlockId, u64)>> = func
        .blocks
        .iter()
        .map(|b| {
            b.term
                .successors()
                .into_iter()
                .map(|s| (s, profile.edge_weight(func.id, b.id, s)))
                .collect()
        })
        .collect();
    let mut preds: Vec<Vec<(BlockId, u64)>> = vec![Vec::new(); n];
    for b in &func.blocks {
        for &(s, w) in &succs[b.id.0 as usize] {
            preds[s.0 as usize].push((b.id, w));
        }
    }

    // Seeds in descending weight order (stable on block id).
    let mut seed_order: Vec<usize> = (0..n).collect();
    seed_order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), i));

    let best = |edges: &[(BlockId, u64)], in_trace: &[bool]| -> Option<BlockId> {
        edges
            .iter()
            .filter(|(b, w)| *w > 0 && !in_trace[b.0 as usize])
            .max_by_key(|(b, w)| (*w, std::cmp::Reverse(b.0)))
            .map(|(b, _)| *b)
    };
    let heaviest = |edges: &[(BlockId, u64)]| -> Option<BlockId> {
        edges
            .iter()
            .filter(|(_, w)| *w > 0)
            .max_by_key(|(b, w)| (*w, std::cmp::Reverse(b.0)))
            .map(|(b, _)| *b)
    };

    let mut traces: Vec<Vec<BlockId>> = Vec::new();
    for &seed in &seed_order {
        if in_trace[seed] || weights[seed] == 0 {
            continue;
        }
        let seed = BlockId(seed as u32);
        let mut trace = vec![seed];
        in_trace[seed.0 as usize] = true;

        // Grow forward.
        let mut cur = seed;
        while let Some(next) = best(&succs[cur.0 as usize], &in_trace) {
            // Mutually most likely: cur must be next's heaviest predecessor.
            if heaviest(&preds[next.0 as usize]) != Some(cur) {
                break;
            }
            trace.push(next);
            in_trace[next.0 as usize] = true;
            cur = next;
        }

        // Grow backward.
        let mut cur = seed;
        while let Some(prev) = best(&preds[cur.0 as usize], &in_trace) {
            if heaviest(&succs[prev.0 as usize]) != Some(cur) {
                break;
            }
            trace.insert(0, prev);
            in_trace[prev.0 as usize] = true;
            cur = prev;
        }

        traces.push(trace);
    }

    // Unexecuted blocks: singleton traces, in id order.
    for (i, covered) in in_trace.iter().enumerate().take(n) {
        if !covered {
            traces.push(vec![BlockId(i as u32)]);
        }
    }

    // Entry block's trace leads; the rest stay in selection (weight) order.
    if let Some(pos) = traces.iter().position(|t| t.contains(&BlockId(0))) {
        let entry_trace = traces.remove(pos);
        traces.insert(0, entry_trace);
    }

    FunctionTraces { traces }
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchlab_minic::compile;
    use branchlab_profile::profile_module;

    fn traces_for(src: &str, runs: &[Vec<Vec<u8>>]) -> (Module, Vec<FunctionTraces>) {
        let m = compile(src).unwrap();
        let p = profile_module(&m, runs).unwrap();
        let t = select_traces(&m, &p);
        (m, t)
    }

    #[test]
    fn layout_order_is_a_permutation() {
        let (m, ts) = traces_for(
            r"
            int main() {
                int c; int n = 0;
                while ((c = getc(0)) != -1) {
                    if (c == ' ') { n++; } else { n += 2; }
                }
                return n;
            }",
            &[vec![b"a b c d".to_vec()]],
        );
        for (f, t) in m.funcs.iter().zip(&ts) {
            let mut order = t.layout_order();
            order.sort();
            let expect: Vec<BlockId> = (0..f.blocks.len() as u32).map(BlockId).collect();
            assert_eq!(order, expect, "function {}", f.name);
        }
    }

    #[test]
    fn entry_trace_comes_first() {
        let (_, ts) = traces_for(
            "int main() { int i; int s = 0; for (i = 0; i < 9; i++) { s += i; } return s; }",
            &[vec![]],
        );
        assert_eq!(ts[0].traces[0][0], BlockId(0));
    }

    #[test]
    fn hot_loop_blocks_share_a_trace() {
        let (_, ts) = traces_for(
            "int main() { int i; int s = 0; for (i = 0; i < 100; i++) { s += i; } return s; }",
            &[vec![]],
        );
        // The loop condition block and body block execute 100+ times each
        // and are connected by a dominant edge: they must share a trace.
        let t = &ts[0];
        let map = t.trace_of();
        // Find the largest trace; it must have at least 2 blocks (cond+body chain).
        let max_len = t.traces.iter().map(Vec::len).max().unwrap();
        assert!(max_len >= 2, "traces: {:?}", t.traces);
        let _ = map;
    }

    #[test]
    fn biased_if_keeps_hot_path_in_trace() {
        // The ' ' case is hot (90%); the else side should be in a
        // different trace than the hot chain.
        let input: Vec<u8> = (0..200)
            .map(|i| if i % 10 == 0 { b'x' } else { b' ' })
            .collect();
        let (m, ts) = traces_for(
            r"
            int hot;
            int cold;
            int main() {
                int c;
                while ((c = getc(0)) != -1) {
                    if (c == ' ') { hot = hot + 1; } else { cold = cold + 1; }
                }
                return hot * 1000 + cold;
            }",
            &[vec![input]],
        );
        let f = &m.funcs[0];
        // Identify then/else blocks of the biased branch via the profile-free
        // CFG: find the Br block with two distinct successors both nonempty.
        let t = &ts[0];
        let map = t.trace_of();
        // The hot successor shares a trace with some neighbor; the cold one
        // is elsewhere. Weak but structural assertion: at least 2 traces.
        assert!(t.traces.len() >= 2);
        let _ = (f, map);
    }

    #[test]
    fn unexecuted_blocks_become_singletons() {
        let (_, ts) = traces_for(
            r"
            int main() {
                if (getc(0) == -1) { return 1; }
                return 2; // never reached with empty input
            }",
            &[vec![]],
        );
        let t = &ts[0];
        // Every block is in exactly one trace.
        let total: usize = t.traces.iter().map(Vec::len).sum();
        let distinct: std::collections::HashSet<_> = t.layout_order().into_iter().collect();
        assert_eq!(total, distinct.len());
    }

    #[test]
    fn deterministic_across_runs() {
        let src = "int main() { int i; int s = 0; for (i = 0; i < 50; i++) { s += i; } return s; }";
        let (_, a) = traces_for(src, &[vec![]]);
        let (_, b) = traces_for(src, &[vec![]]);
        assert_eq!(a[0], b[0]);
    }
}
