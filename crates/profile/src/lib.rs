//! # branchlab-profile
//!
//! Profiling infrastructure: the software half of the paper's Forward
//! Semantic pipeline. A module is lowered with an *instrumented* layout
//! (no jump elision — the analogue of the paper's basic-block probes),
//! executed over one or more representative inputs, and the resulting
//! [`Profile`] records per-site taken/total counts, CFG edge weights,
//! and function entry counts. Trace selection (`branchlab-fsem`) and
//! likely-bit derivation both consume this.
//!
//! ```
//! use branchlab_profile::profile_module;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = branchlab_minic::compile(r"
//!     int main() {
//!         int c; int n = 0;
//!         while ((c = getc(0)) != -1) { if (c == ' ') { n++; } }
//!         return n;
//!     }
//! ")?;
//! let profile = branchlab_profile::profile_module(&module, &[vec![b"a b c".to_vec()]])?;
//! assert!(profile.sites.len() >= 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use std::collections::HashMap;

use branchlab_interp::{run, ExecConfig, ExecError};
use branchlab_ir::{
    lower_with_plan, Addr, BlockId, FuncId, LayoutPlan, LowerError, Module, Program,
};
use branchlab_trace::{BranchEvent, ExecHooks, SiteStats};

/// A CFG edge within one function.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Edge {
    /// Function containing the edge.
    pub func: FuncId,
    /// Source block.
    pub from: BlockId,
    /// Destination block.
    pub to: BlockId,
}

/// Aggregated profile data over one or more runs.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Per-branch-site taken/total counts.
    pub sites: SiteStats,
    /// Execution counts of CFG edges.
    pub edges: HashMap<Edge, u64>,
    /// Entry counts per function (calls, plus one for the entry
    /// function per run).
    pub func_entries: Vec<u64>,
}

impl Profile {
    /// Weight of an edge (0 if never executed).
    #[must_use]
    pub fn edge_weight(&self, func: FuncId, from: BlockId, to: BlockId) -> u64 {
        self.edges
            .get(&Edge { func, from, to })
            .copied()
            .unwrap_or(0)
    }

    /// Entry count of a function.
    #[must_use]
    pub fn func_entry(&self, func: FuncId) -> u64 {
        self.func_entries.get(func.0 as usize).copied().unwrap_or(0)
    }

    /// Block execution weights by flow conservation: a block's weight is
    /// the sum of its incoming edge weights, plus the function entry
    /// count for block 0.
    #[must_use]
    pub fn block_weights(&self, module: &Module) -> Vec<Vec<u64>> {
        let mut w: Vec<Vec<u64>> = module
            .funcs
            .iter()
            .map(|f| vec![0u64; f.blocks.len()])
            .collect();
        for (fi, weights) in w.iter_mut().enumerate() {
            weights[0] = self.func_entry(FuncId(fi as u32));
        }
        for (edge, count) in &self.edges {
            w[edge.func.0 as usize][edge.to.0 as usize] += count;
        }
        w
    }

    /// Merge another profile (e.g. from a different input) into this one.
    pub fn merge(&mut self, other: &Profile) {
        self.sites.merge(&other.sites);
        for (e, c) in &other.edges {
            *self.edges.entry(*e).or_insert(0) += c;
        }
        if self.func_entries.len() < other.func_entries.len() {
            self.func_entries.resize(other.func_entries.len(), 0);
        }
        for (i, c) in other.func_entries.iter().enumerate() {
            self.func_entries[i] += c;
        }
    }
}

/// Live profiler: an [`ExecHooks`] sink that maps branch events back to
/// CFG blocks of the instrumented program it was built for.
#[derive(Clone, Debug)]
pub struct Profiler {
    addr_to_block: HashMap<u32, (FuncId, BlockId)>,
    /// The profile being accumulated.
    pub profile: Profile,
}

impl Profiler {
    /// Create a profiler for `program` (which should be lowered with
    /// [`LayoutPlan::instrumented`] so all edges are observable).
    #[must_use]
    pub fn new(program: &Program) -> Self {
        let mut addr_to_block = HashMap::new();
        for (fi, blocks) in program.block_addrs.iter().enumerate() {
            for (bi, addr) in blocks.iter().enumerate() {
                addr_to_block.insert(addr.0, (FuncId(fi as u32), BlockId(bi as u32)));
            }
        }
        let profile = Profile {
            func_entries: vec![0; program.funcs.len()],
            ..Profile::default()
        };
        Profiler {
            addr_to_block,
            profile,
        }
    }

    /// Record one entry of the program's entry function (call once per
    /// run).
    pub fn record_program_entry(&mut self, entry: FuncId) {
        self.profile.func_entries[entry.0 as usize] += 1;
    }

    /// Extract the accumulated profile.
    #[must_use]
    pub fn into_profile(self) -> Profile {
        self.profile
    }
}

impl ExecHooks for Profiler {
    fn branch(&mut self, ev: &BranchEvent) {
        // Only conditional branches contribute to per-site bias: a block
        // may also own a trailing unconditional jump, which must not
        // skew its likely bit.
        if ev.kind == branchlab_trace::BranchKind::Cond {
            self.profile.sites.branch(ev);
        }
        // Map the successor address to a block. A not-taken fallthrough
        // that lands on a trailing Jmp of the same block is not a block
        // boundary; the Jmp's own event records the real edge.
        if let Some(&(func, to)) = self.addr_to_block.get(&ev.next_pc().0) {
            if func == ev.branch.func {
                let edge = Edge {
                    func,
                    from: ev.branch.block,
                    to,
                };
                *self.profile.edges.entry(edge).or_insert(0) += 1;
            }
        }
    }

    fn call(&mut self, _from: Addr, callee: FuncId) {
        self.profile.func_entries[callee.0 as usize] += 1;
    }
}

/// Errors from end-to-end profiling.
#[derive(Debug)]
pub enum ProfileError {
    /// Lowering the instrumented layout failed.
    Lower(LowerError),
    /// A profiling run failed.
    Exec(ExecError),
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::Lower(e) => write!(f, "profiling lower failed: {e}"),
            ProfileError::Exec(e) => write!(f, "profiling run failed: {e}"),
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<LowerError> for ProfileError {
    fn from(e: LowerError) -> Self {
        ProfileError::Lower(e)
    }
}

impl From<ExecError> for ProfileError {
    fn from(e: ExecError) -> Self {
        ProfileError::Exec(e)
    }
}

/// Profile a module over several runs (each run is a set of input
/// streams), with default execution limits.
///
/// # Errors
/// Returns [`ProfileError`] if lowering or any run fails.
pub fn profile_module(module: &Module, runs: &[Vec<Vec<u8>>]) -> Result<Profile, ProfileError> {
    profile_module_with(module, runs, &ExecConfig::default())
}

/// Profile a module over several runs with explicit execution limits.
///
/// # Errors
/// Returns [`ProfileError`] if lowering or any run fails.
pub fn profile_module_with(
    module: &Module,
    runs: &[Vec<Vec<u8>>],
    config: &ExecConfig,
) -> Result<Profile, ProfileError> {
    let program = lower_with_plan(module, &LayoutPlan::instrumented(module))?;
    let mut profiler = Profiler::new(&program);
    for streams in runs {
        profiler.record_program_entry(module.entry);
        let stream_refs: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
        run(&program, config, &stream_refs, &mut profiler)?;
    }
    Ok(profiler.into_profile())
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchlab_ir::Module;
    use branchlab_minic::compile;

    fn profile_src(src: &str, runs: &[Vec<Vec<u8>>]) -> (Module, Profile) {
        let m = compile(src).unwrap();
        let p = profile_module(&m, runs).unwrap();
        (m, p)
    }

    #[test]
    fn loop_profile_counts_iterations() {
        let (m, p) = profile_src(
            "int main() { int i; int s = 0; for (i = 0; i < 10; i++) { s += i; } return s; }",
            &[vec![]],
        );
        // The loop condition site executed 11 times, taken 10 (or the
        // inverted equivalent: taken 1). Find it by total.
        let cond_site = p
            .sites
            .iter()
            .find(|(_, c)| c.total == 11)
            .expect("loop condition site");
        assert!(
            cond_site.1.taken == 10 || cond_site.1.taken == 1,
            "{cond_site:?}"
        );
        let w = p.block_weights(&m);
        // Entry block of main runs exactly once.
        assert_eq!(w[0][0], 1);
        // Some block (the loop body) runs 10 times.
        assert!(w[0].iter().any(|&x| x == 10), "{w:?}");
    }

    #[test]
    fn flow_conservation_holds() {
        let src = r"
            int f(int n) { if (n % 2 == 0) { return n / 2; } return 3 * n + 1; }
            int main() {
                int i; int x = 27;
                for (i = 0; i < 40; i++) { x = f(x); }
                return x;
            }
        ";
        let (m, p) = profile_src(src, &[vec![]]);
        let w = p.block_weights(&m);
        let entry = m.entry.0 as usize;
        assert_eq!(w[entry][0], p.func_entry(m.entry));
        let func = m.func_by_name("f").unwrap();
        let f_id = func.id;
        assert_eq!(w[f_id.0 as usize][0], 40);
        // Outgoing edge weights of each branch block sum to its weight.
        for b in &func.blocks {
            if let branchlab_ir::Term::Br { then_, else_, .. } = b.term {
                let out = p.edge_weight(f_id, b.id, then_) + p.edge_weight(f_id, b.id, else_);
                assert_eq!(out, w[f_id.0 as usize][b.id.0 as usize], "block {}", b.id);
            }
        }
    }

    #[test]
    fn multi_run_accumulates() {
        let src = "int main() { int c; int n = 0; while ((c = getc(0)) != -1) { n++; } return n; }";
        let (_, p1) = profile_src(src, &[vec![b"abc".to_vec()]]);
        let (_, p3) = profile_src(
            src,
            &[
                vec![b"abc".to_vec()],
                vec![b"d".to_vec()],
                vec![b"".to_vec()],
            ],
        );
        let total1: u64 = p1.sites.iter().map(|(_, c)| c.total).sum();
        let total3: u64 = p3.sites.iter().map(|(_, c)| c.total).sum();
        assert!(total3 > total1);
        assert_eq!(p3.func_entry(FuncId(0)), 3);
    }

    #[test]
    fn profile_merge_equals_joint_profile() {
        let src = "int main() { int c; int n = 0; while ((c = getc(0)) != -1) { n += c; } return n & 255; }";
        let m = compile(src).unwrap();
        let run_a = vec![b"hello".to_vec()];
        let run_b = vec![b"world!".to_vec()];
        let mut separate = profile_module(&m, &[run_a.clone()]).unwrap();
        separate.merge(&profile_module(&m, &[run_b.clone()]).unwrap());
        let joint = profile_module(&m, &[run_a, run_b]).unwrap();
        let sum = |p: &Profile| -> (u64, u64) {
            p.sites
                .iter()
                .fold((0, 0), |(t, n), (_, c)| (t + c.taken, n + c.total))
        };
        assert_eq!(sum(&separate), sum(&joint));
        assert_eq!(separate.edges, joint.edges);
        assert_eq!(separate.func_entries, joint.func_entries);
    }

    #[test]
    fn biased_branch_bias_is_visible() {
        // 90% spaces: the `c == ' '` check is heavily biased.
        let input: Vec<u8> = (0..100)
            .map(|i| if i % 10 == 0 { b'x' } else { b' ' })
            .collect();
        let src = r"
            int main() {
                int c; int n = 0;
                while ((c = getc(0)) != -1) { if (c == ' ') { n++; } }
                return n;
            }
        ";
        let (_, p) = profile_src(src, &[vec![input]]);
        let biased = p
            .sites
            .iter()
            .find(|(_, c)| c.total == 100 && (c.taken == 90 || c.taken == 10));
        assert!(biased.is_some(), "expected a 90/10 site");
    }
}
