//! Interpreter throughput: dynamic instructions per second over
//! representative benchmark binaries.

use branchlab::interp::{run, ExecConfig};
use branchlab::ir::lower;
use branchlab::workloads::{benchmark, Scale};
use branchlab_bench::timing::bench;

fn main() {
    for name in ["wc", "compress", "yacc"] {
        let b = benchmark(name).expect("suite benchmark");
        let program = lower(&b.compile().expect("compiles")).expect("lowers");
        let runs = b.runs(Scale::Test, 3);
        let streams: Vec<&[u8]> = runs[0].iter().map(Vec::as_slice).collect();
        let insts = run(&program, &ExecConfig::default(), &streams, &mut ())
            .expect("runs")
            .stats
            .insts;
        let t = bench(&format!("interp/{name}"), 3, 15, || {
            run(&program, &ExecConfig::default(), &streams, &mut ()).expect("runs")
        });
        let mips = insts as f64 / t.median().as_secs_f64() / 1e6;
        println!(
            "{:<40} {mips:>11.1} M insts/s",
            format!("interp/{name} throughput")
        );
    }
}
