//! Interpreter throughput: dynamic instructions per second over
//! representative benchmark binaries.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use branchlab::interp::{run, ExecConfig};
use branchlab::ir::lower;
use branchlab::workloads::{benchmark, Scale};

fn bench_interp(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp");
    for name in ["wc", "compress", "yacc"] {
        let b = benchmark(name).expect("suite benchmark");
        let program = lower(&b.compile().expect("compiles")).expect("lowers");
        let runs = b.runs(Scale::Test, 3);
        let streams: Vec<&[u8]> = runs[0].iter().map(Vec::as_slice).collect();
        let insts = run(&program, &ExecConfig::default(), &streams, &mut ())
            .expect("runs")
            .stats
            .insts;
        group.throughput(Throughput::Elements(insts));
        group.bench_function(name, |bencher| {
            bencher.iter(|| {
                run(&program, &ExecConfig::default(), &streams, &mut ()).expect("runs")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
