//! Predictor throughput: branch events per second through the SBTB,
//! CBTB, Forward Semantic bits, and static baselines, on a recorded
//! trace — the per-lookup cost that would bound BTB hardware models.
//!
//! Also measures the instrumented (SiteProbe) vs uninstrumented (NoopSink)
//! BTB paths to back the <2% telemetry-overhead requirement.

use branchlab::interp::{run, ExecConfig};
use branchlab::ir::lower;
use branchlab::predict::{
    AlwaysTaken, BackwardTakenForwardNot, BranchPredictor, Cbtb, CbtbConfig, Evaluator, LikelyBit,
    Sbtb, SbtbConfig,
};
use branchlab::telemetry::SiteProbe;
use branchlab::trace::{BranchEvent, ExecHooks, TraceRecorder};
use branchlab::workloads::{benchmark, Scale};
use branchlab_bench::timing::bench;

fn recorded_trace() -> Vec<BranchEvent> {
    let b = benchmark("compress").expect("suite benchmark");
    let program = lower(&b.compile().expect("compiles")).expect("lowers");
    let runs = b.runs(Scale::Test, 3);
    let streams: Vec<&[u8]> = runs[0].iter().map(Vec::as_slice).collect();
    let mut rec = TraceRecorder::with_capacity(200_000);
    run(&program, &ExecConfig::default(), &streams, &mut rec).expect("runs");
    rec.events().to_vec()
}

fn drive<P: BranchPredictor>(events: &[BranchEvent], p: P) -> u64 {
    let mut e = Evaluator::new(p);
    for ev in events {
        e.branch(ev);
    }
    e.stats.correct
}

fn main() {
    let events = recorded_trace();
    println!("trace: {} branch events", events.len());
    bench("predictors/sbtb-256", 3, 15, || {
        drive(&events, Sbtb::paper())
    });
    bench("predictors/cbtb-256", 3, 15, || {
        drive(&events, Cbtb::paper())
    });
    bench("predictors/sbtb-256-probed", 3, 15, || {
        drive(
            &events,
            Sbtb::with_sink(SbtbConfig::paper(), SiteProbe::enabled()),
        )
    });
    bench("predictors/cbtb-256-probed", 3, 15, || {
        drive(
            &events,
            Cbtb::with_sink(CbtbConfig::paper(), SiteProbe::enabled()),
        )
    });
    bench("predictors/fs-likely-bit", 3, 15, || {
        drive(&events, LikelyBit)
    });
    bench("predictors/always-taken", 3, 15, || {
        drive(&events, AlwaysTaken)
    });
    bench("predictors/btfn", 3, 15, || {
        drive(&events, BackwardTakenForwardNot)
    });
}
