//! Predictor throughput: branch events per second through the SBTB,
//! CBTB, Forward Semantic bits, and static baselines, on a recorded
//! trace — the per-lookup cost that would bound BTB hardware models.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use branchlab::interp::{run, ExecConfig};
use branchlab::ir::lower;
use branchlab::predict::{
    AlwaysTaken, BackwardTakenForwardNot, BranchPredictor, Cbtb, Evaluator, LikelyBit, Sbtb,
};
use branchlab::trace::{BranchEvent, ExecHooks, TraceRecorder};
use branchlab::workloads::{benchmark, Scale};

fn recorded_trace() -> Vec<BranchEvent> {
    let b = benchmark("compress").expect("suite benchmark");
    let program = lower(&b.compile().expect("compiles")).expect("lowers");
    let runs = b.runs(Scale::Test, 3);
    let streams: Vec<&[u8]> = runs[0].iter().map(Vec::as_slice).collect();
    let mut rec = TraceRecorder::with_capacity(200_000);
    run(&program, &ExecConfig::default(), &streams, &mut rec).expect("runs");
    rec.events().to_vec()
}

fn drive<P: BranchPredictor>(events: &[BranchEvent], p: P) -> u64 {
    let mut e = Evaluator::new(p);
    for ev in events {
        e.branch(ev);
    }
    e.stats.correct
}

fn bench_predictors(c: &mut Criterion) {
    let events = recorded_trace();
    let mut group = c.benchmark_group("predictors");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("sbtb-256", |b| b.iter(|| drive(&events, Sbtb::paper())));
    group.bench_function("cbtb-256", |b| b.iter(|| drive(&events, Cbtb::paper())));
    group.bench_function("fs-likely-bit", |b| b.iter(|| drive(&events, LikelyBit)));
    group.bench_function("always-taken", |b| b.iter(|| drive(&events, AlwaysTaken)));
    group.bench_function("btfn", |b| b.iter(|| drive(&events, BackwardTakenForwardNot)));
    group.finish();
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);
