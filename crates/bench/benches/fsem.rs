//! Forward Semantic compile-time cost: profiling, trace selection, and
//! slot-filling lowering per benchmark module.

use branchlab::fsem::{build_fs_plan, fs_program, FsConfig};
use branchlab::ir::lower_with_plan;
use branchlab::profile::profile_module;
use branchlab::workloads::{benchmark, Scale};
use branchlab_bench::timing::bench;

fn main() {
    let b = benchmark("cccp").expect("suite benchmark");
    let module = b.compile().expect("compiles");
    let runs = b.runs(Scale::Test, 3);
    let profile = profile_module(&module, &runs).expect("profiles");

    bench("fsem/profile-cccp", 2, 10, || {
        profile_module(&module, &runs).expect("profiles")
    });
    bench("fsem/plan-cccp", 2, 10, || {
        build_fs_plan(&module, &profile, FsConfig::with_slots(4))
    });
    let plan = build_fs_plan(&module, &profile, FsConfig::with_slots(4));
    bench("fsem/lower-with-slots-cccp", 2, 10, || {
        lower_with_plan(&module, &plan).expect("lowers")
    });
    bench("fsem/end-to-end-cccp", 2, 10, || {
        fs_program(&module, &profile, FsConfig::with_slots(4)).expect("lowers")
    });
}
