//! Forward Semantic compile-time cost: profiling, trace selection, and
//! slot-filling lowering per benchmark module.

use criterion::{criterion_group, criterion_main, Criterion};

use branchlab::fsem::{build_fs_plan, fs_program, FsConfig};
use branchlab::ir::lower_with_plan;
use branchlab::profile::profile_module;
use branchlab::workloads::{benchmark, Scale};

fn bench_fsem(c: &mut Criterion) {
    let b = benchmark("cccp").expect("suite benchmark");
    let module = b.compile().expect("compiles");
    let runs = b.runs(Scale::Test, 3);
    let profile = profile_module(&module, &runs).expect("profiles");

    c.bench_function("fsem/profile-cccp", |bencher| {
        bencher.iter(|| profile_module(&module, &runs).expect("profiles"))
    });
    c.bench_function("fsem/plan-cccp", |bencher| {
        bencher.iter(|| build_fs_plan(&module, &profile, FsConfig::with_slots(4)))
    });
    c.bench_function("fsem/lower-with-slots-cccp", |bencher| {
        let plan = build_fs_plan(&module, &profile, FsConfig::with_slots(4));
        bencher.iter(|| lower_with_plan(&module, &plan).expect("lowers"))
    });
    c.bench_function("fsem/end-to-end-cccp", |bencher| {
        bencher.iter(|| fs_program(&module, &profile, FsConfig::with_slots(4)).expect("lowers"))
    });
}

criterion_group!(benches, bench_fsem);
criterion_main!(benches);
