//! A minimal std-only timing harness for the `benches/` binaries.
//!
//! Each bench is a plain `fn main()` (the `[[bench]]` entries set
//! `harness = false`): call [`bench()`] per case and it prints one line
//! with the median, min, and max wall-clock over the measured
//! iterations. Use [`std::hint::black_box`] inside the closure to keep
//! the optimizer honest.

use std::time::{Duration, Instant};

/// Measured wall-clock distribution for one bench case.
#[derive(Clone, Debug)]
pub struct Timing {
    /// Case label.
    pub name: String,
    /// Per-iteration durations, sorted ascending.
    pub samples: Vec<Duration>,
}

impl Timing {
    /// Median per-iteration wall clock.
    #[must_use]
    pub fn median(&self) -> Duration {
        self.samples[self.samples.len() / 2]
    }

    /// Fastest iteration.
    #[must_use]
    pub fn min(&self) -> Duration {
        self.samples[0]
    }

    /// Slowest iteration.
    #[must_use]
    pub fn max(&self) -> Duration {
        self.samples[self.samples.len() - 1]
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", d.as_secs_f64() * 1e3)
    } else if ns >= 1_000 {
        format!("{:.3}µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns}ns")
    }
}

/// Time `f` over `warmup` unmeasured plus `iters` measured runs,
/// print a `name  median  (min … max, N iters)` line, and return the
/// samples.
///
/// # Panics
/// Panics if `iters` is zero.
pub fn bench<R>(name: &str, warmup: usize, iters: usize, mut f: impl FnMut() -> R) -> Timing {
    assert!(iters > 0, "iters must be positive");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        samples.push(start.elapsed());
    }
    samples.sort_unstable();
    let timing = Timing {
        name: name.to_string(),
        samples,
    };
    println!(
        "{:<40} {:>12} ({} … {}, {} iters)",
        timing.name,
        fmt_duration(timing.median()),
        fmt_duration(timing.min()),
        fmt_duration(timing.max()),
        iters
    );
    timing
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_collects_sorted_samples() {
        let mut n = 0u64;
        let t = bench("spin", 1, 5, || {
            n += 1;
            std::hint::black_box(n)
        });
        assert_eq!(t.samples.len(), 5);
        assert!(t.samples.windows(2).all(|w| w[0] <= w[1]));
        assert!(t.min() <= t.median() && t.median() <= t.max());
        assert_eq!(n, 6, "warmup + measured iterations all ran");
    }

    #[test]
    fn durations_format_with_unit_scaling() {
        assert_eq!(fmt_duration(Duration::from_nanos(120)), "120ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.000µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.000ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
    }
}
