//! Regenerate the paper's Figure 3 (branch cost vs l+m for k = 1, 2).
use branchlab::experiments::figures::{ascii_plot, figure3, SchemeAccuracies};
fn main() {
    branchlab_bench::artifact_main("fig3", |options, suite| {
        let acc = SchemeAccuracies::from_suite(suite);
        for (panel, k) in figure3(&acc).iter().zip([1u32, 2]) {
            print!("{}", options.render(panel));
            println!("{}", ascii_plot(&acc, k, 14));
        }
    });
}
