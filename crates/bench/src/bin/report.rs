//! Regenerate every table and figure in one run (the source of
//! EXPERIMENTS.md's measured columns).
use branchlab::experiments::figures::{ascii_plot, figure3, figure4, SchemeAccuracies};
use branchlab::experiments::tables;
fn main() {
    branchlab_bench::artifact_main("report", |options, suite| {
        for t in [
            tables::table1(suite),
            tables::table2(suite),
            tables::table3(suite),
            tables::table4(suite),
            tables::table5(suite),
        ] {
            println!("{}", options.render(&t));
        }
        let (s, c, f) = tables::cost_growth(suite);
        println!(
            "Cost growth k+l 2->3: SBTB {s:.1}%  CBTB {c:.1}%  FS {f:.1}%  (paper: 7.7/6.9/5.3)"
        );
        println!();
        let acc = SchemeAccuracies::from_suite(suite);
        println!(
            "Average accuracies: SBTB {:.1}%  CBTB {:.1}%  FS {:.1}%  (paper: 91.5/92.4/93.5)",
            acc.sbtb * 100.0,
            acc.cbtb * 100.0,
            acc.fs * 100.0
        );
        println!();
        for (panel, k) in figure3(&acc).iter().zip([1u32, 2]) {
            println!("{}", options.render(panel));
            println!("{}", ascii_plot(&acc, k, 12));
        }
        for (panel, k) in figure4(&acc).iter().zip([4u32, 8]) {
            println!("{}", options.render(panel));
            println!("{}", ascii_plot(&acc, k, 12));
        }
    });
}
