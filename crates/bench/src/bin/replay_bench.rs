//! Replay-vs-reinterpret benchmark: runs the full ablation study set
//! twice per benchmark — once re-interpreting every sweep point (the
//! pre-replay `O(points × interpret)` baseline: `--no-trace-replay`
//! plus one full compile→lower→interpret pipeline per sweep point) and
//! once on the batched trace-replay engine (one capture + one replay
//! pass scores every point) — verifies the rendered tables are
//! identical, and writes `BENCH_replay.json` recording per-phase
//! wall-clock and the measured speedup so the perf trajectory is
//! tracked PR over PR.
//!
//! A second phase measures the parallel sweep executor on the
//! now-warm traces: each benchmark's study set is scored on one thread
//! and on `--sweep-threads N` threads (default: available
//! parallelism, floored at 4 so the executor's chunking and merge are
//! always exercised), the tables are verified byte-identical, and the
//! wall-clock plus `suite.sweep.parallel.*` counters land in
//! `BENCH_sweep_parallel.json` (`--sweep-out`). The file records
//! `available_parallelism` so a ~1x "speedup" on a single-core runner
//! is self-explaining.
//!
//! Usage:
//! `replay_bench [--scale test|small|paper] [--seed N] [--out FILE]
//! [--sweep-out FILE] [--sweep-threads N] [--trace-cache DIR]
//! [--trace-out FILE] [--benches A,B,...]`
//!
//! A third phase measures the bit-parallel lane engine: a
//! 26-configuration CBTB counter-family sweep (every
//! `(counter_bits, threshold)` point at the paper's 256-entry
//! fully-associative geometry) is scored on warm traces once through
//! the scalar path (`use_lane_scoring` off — the PR-3 per-point
//! replay) and once lane-packed, the per-configuration `PredStats`
//! are verified identical, and the wall-clock plus
//! `suite.sweep.lane.*` counters land in `BENCH_lanes.json`
//! (`--lanes-out`). Both sides run on one thread, so the ratio
//! isolates lane packing from thread parallelism. `--lanes-only`
//! skips the first two (much slower) phases when regenerating just
//! the lane artifact.
//!
//! `--trace-out FILE` additionally drops the run's per-phase timing as
//! Chrome trace-event JSON (open at ui.perfetto.dev); tracing is off
//! unless requested, so benchmark numbers are unperturbed.
//!
//! (Own argument parser: this binary needs `--out`/`--benches`, which
//! the shared suite `Options` intentionally does not know about.)

use std::time::Instant;

use branchlab::experiments::ablation::{full_study, StudySpec};
use branchlab::experiments::trace_replay::captured_runs;
use branchlab::experiments::{
    ExperimentConfig, ExperimentError, LaneStats, SweepBatch, SweepStats, Table, TraceStats,
};
use branchlab::predict::{BranchPredictor, Cbtb, CbtbConfig};
use branchlab::telemetry::JsonValue;
use branchlab::workloads::{benchmark, Scale};

/// The ablation binary's study set, reproduced point for point.
fn study_set(
    bench: &branchlab::workloads::Benchmark,
    cfg: &ExperimentConfig,
) -> Result<Vec<Table>, ExperimentError> {
    full_study(bench, cfg, &StudySpec::default())
}

fn tables_csv(tables: &[Table]) -> String {
    tables
        .iter()
        .map(Table::to_csv)
        .collect::<Vec<_>>()
        .join("\n")
}

struct Args {
    config: ExperimentConfig,
    out: std::path::PathBuf,
    sweep_out: std::path::PathBuf,
    lanes_out: std::path::PathBuf,
    lanes_only: bool,
    sweep_threads: Option<usize>,
    trace_out: Option<std::path::PathBuf>,
    benches: Vec<String>,
}

fn parse_args() -> Args {
    const USAGE: &str = "usage: replay_bench [--scale test|small|paper] [--seed N] \
[--out FILE] [--sweep-out FILE] [--lanes-out FILE] [--lanes-only] [--sweep-threads N] \
[--trace-cache DIR] [--trace-out FILE] [--benches A,B,...]";
    let mut config = ExperimentConfig::default();
    let mut out = std::path::PathBuf::from("BENCH_replay.json");
    let mut sweep_out = std::path::PathBuf::from("BENCH_sweep_parallel.json");
    let mut lanes_out = std::path::PathBuf::from("BENCH_lanes.json");
    let mut lanes_only = false;
    let mut sweep_threads = None;
    let mut trace_out = None;
    let mut benches: Vec<String> = vec!["compress".into(), "cccp".into()];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                config.scale = match args.next().unwrap_or_default().as_str() {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => panic!("unknown scale `{other}` (test|small|paper)"),
                };
            }
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--out" => out = args.next().expect("--out needs a file path").into(),
            "--sweep-out" => {
                sweep_out = args.next().expect("--sweep-out needs a file path").into();
            }
            "--lanes-out" => {
                lanes_out = args.next().expect("--lanes-out needs a file path").into();
            }
            "--lanes-only" => lanes_only = true,
            "--sweep-threads" => {
                sweep_threads = Some(
                    args.next()
                        .and_then(|s| s.parse::<usize>().ok())
                        .expect("--sweep-threads needs an integer")
                        .max(1),
                );
            }
            "--trace-cache" => {
                config.trace_cache_dir =
                    Some(args.next().expect("--trace-cache needs a directory").into());
            }
            "--trace-out" => {
                trace_out = Some(args.next().expect("--trace-out needs a file path").into());
            }
            "--benches" => {
                let list = args.next().expect("--benches needs a comma list");
                benches = list.split(',').map(str::trim).map(String::from).collect();
            }
            other => panic!("unknown argument `{other}`\n{USAGE}"),
        }
    }
    Args {
        config,
        out,
        sweep_out,
        lanes_out,
        lanes_only,
        sweep_threads,
        trace_out,
        benches,
    }
}

/// The lane phase's sweep: every `(counter_bits, threshold)` point at
/// the paper's 256-entry fully-associative geometry — 26 compatible
/// configurations that pack into one 26-lane family.
fn counter_family() -> Vec<CbtbConfig> {
    let mut configs = Vec::new();
    for counter_bits in 1..=4u8 {
        for threshold in 1..(1u8 << counter_bits) {
            configs.push(CbtbConfig {
                counter_bits,
                threshold,
                ..CbtbConfig::paper()
            });
        }
    }
    configs
}

/// Phase three: lane-packed vs scalar scoring of the counter family on
/// warm traces, both single-threaded, written to `--lanes-out`.
/// Returns whether every lane-scored `PredStats` matched its scalar
/// twin exactly.
fn lanes_phase(args: &Args) -> bool {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let configs = counter_family();
    let scalar_cfg = ExperimentConfig {
        use_lane_scoring: false,
        sweep_threads: Some(1),
        ..args.config.clone()
    };
    let lane_cfg = ExperimentConfig {
        sweep_threads: Some(1),
        ..args.config.clone()
    };
    let build = || -> Vec<Box<dyn BranchPredictor>> {
        counter_family()
            .into_iter()
            .map(|c| Box::new(Cbtb::new(c)) as Box<dyn BranchPredictor>)
            .collect()
    };

    let mut per_bench = Vec::new();
    let mut total_scalar = 0.0f64;
    let mut total_lane = 0.0f64;
    let mut all_match = true;
    let run_started = LaneStats::snapshot();

    for name in &args.benches {
        let bench =
            benchmark(name).unwrap_or_else(|| panic!("benchmark `{name}` missing from suite"));

        // Warm the trace cache so both timings are pure scoring.
        let events: u64 = captured_runs(bench, &args.config)
            .unwrap_or_else(|e| panic!("{name}: trace capture failed: {e}"))
            .iter()
            .map(branchlab::trace::TraceBuf::events)
            .sum();

        let started = Instant::now();
        let mut batch = SweepBatch::new(bench, &scalar_cfg);
        let st = batch.eval(build());
        let scalar = batch
            .run()
            .unwrap_or_else(|e| panic!("{name}: scalar sweep failed: {e}"));
        let scalar_s = started.elapsed().as_secs_f64();

        let before = LaneStats::snapshot();
        let started = Instant::now();
        let mut batch = SweepBatch::new(bench, &lane_cfg);
        let lt = batch.eval(build());
        let laned = batch
            .run()
            .unwrap_or_else(|e| panic!("{name}: lane sweep failed: {e}"));
        let lane_s = started.elapsed().as_secs_f64();
        let delta = LaneStats::snapshot().since(&before);

        let stats_match = laned.stats(lt) == scalar.stats(st);
        all_match &= stats_match;
        let speedup = if lane_s > 0.0 {
            scalar_s / lane_s
        } else {
            f64::INFINITY
        };
        total_scalar += scalar_s;
        total_lane += lane_s;
        eprintln!(
            "{name}: scalar {scalar_s:.3}s, lane-packed {lane_s:.3}s ({speedup:.1}x, \
             {} configs x {events} events, match: {stats_match})",
            configs.len(),
        );

        per_bench.push(JsonValue::obj(vec![
            ("name", name.as_str().into()),
            ("events", events.into()),
            ("scalar_s", scalar_s.into()),
            ("lane_s", lane_s.into()),
            ("speedup", speedup.into()),
            ("stats_match", stats_match.into()),
            ("lanes", delta.to_json_value()),
        ]));
    }

    let lanes = LaneStats::snapshot().since(&run_started);
    let speedup = if total_lane > 0.0 {
        total_scalar / total_lane
    } else {
        f64::INFINITY
    };
    let report = JsonValue::obj(vec![
        ("tool", "replay_bench/lanes".into()),
        (
            "baseline",
            "scalar replay (use_lane_scoring off): one monomorphized eval_block walk per sweep \
             point, single-threaded"
                .into(),
        ),
        ("configs", (configs.len() as u64).into()),
        ("available_parallelism", (cores as u64).into()),
        (
            "scale",
            format!("{:?}", args.config.scale).to_lowercase().into(),
        ),
        ("seed", args.config.seed.into()),
        ("stats_match", all_match.into()),
        ("scalar_s", total_scalar.into()),
        ("lane_s", total_lane.into()),
        ("speedup", speedup.into()),
        ("benches", JsonValue::Arr(per_bench)),
        ("lanes", lanes.to_json_value()),
    ]);
    std::fs::write(&args.lanes_out, report.to_json_pretty() + "\n")
        .unwrap_or_else(|e| panic!("writing {} failed: {e}", args.lanes_out.display()));
    eprintln!(
        "replay_bench: scalar {total_scalar:.2}s vs lane-packed {total_lane:.2}s \
         ({speedup:.1}x across {} configs) -> {}",
        configs.len(),
        args.lanes_out.display()
    );
    all_match
}

/// Phase two: serial-vs-parallel sweep scoring on warm traces, written
/// to `--sweep-out`. Returns whether every parallel table matched its
/// serial twin, plus the phase's sweep-counter delta (for the
/// `--trace-out` export).
fn sweep_parallel_phase(args: &Args) -> (bool, SweepStats) {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Floor at 4 so chunking, batch stealing, and the plan-order merge
    // are exercised even on small runners; the report records `cores`
    // so a ~1x speedup there is self-explaining.
    let threads = args.sweep_threads.unwrap_or_else(|| cores.max(4));
    let serial_cfg = ExperimentConfig {
        sweep_threads: Some(1),
        ..args.config.clone()
    };
    let parallel_cfg = ExperimentConfig {
        sweep_threads: Some(threads),
        ..args.config.clone()
    };

    let mut per_bench = Vec::new();
    let mut total_serial = 0.0f64;
    let mut total_parallel = 0.0f64;
    let mut all_match = true;
    let run_started = SweepStats::snapshot();

    for name in &args.benches {
        let bench =
            benchmark(name).unwrap_or_else(|| panic!("benchmark `{name}` missing from suite"));

        // Traces are warm from phase one (same scale/seed), so both
        // timings below are pure sweep scoring, not capture.
        let started = Instant::now();
        let serial = study_set(bench, &serial_cfg)
            .unwrap_or_else(|e| panic!("{name}: serial sweep failed: {e}"));
        let serial_s = started.elapsed().as_secs_f64();

        let before = SweepStats::snapshot();
        let started = Instant::now();
        let parallel = study_set(bench, &parallel_cfg)
            .unwrap_or_else(|e| panic!("{name}: parallel sweep failed: {e}"));
        let parallel_s = started.elapsed().as_secs_f64();
        let delta = SweepStats::snapshot().since(&before);

        let tables_match = tables_csv(&serial) == tables_csv(&parallel);
        all_match &= tables_match;
        let speedup = if parallel_s > 0.0 {
            serial_s / parallel_s
        } else {
            f64::INFINITY
        };
        total_serial += serial_s;
        total_parallel += parallel_s;
        eprintln!(
            "{name}: serial sweep {serial_s:.2}s, {threads}-thread sweep {parallel_s:.2}s \
             ({speedup:.1}x, {} points in {} batches, match: {tables_match})",
            delta.points, delta.batches,
        );

        per_bench.push(JsonValue::obj(vec![
            ("name", name.as_str().into()),
            ("serial_s", serial_s.into()),
            ("parallel_s", parallel_s.into()),
            ("speedup", speedup.into()),
            ("tables_match", tables_match.into()),
            ("sweep", delta.to_json_value()),
        ]));
    }

    let sweep = SweepStats::snapshot().since(&run_started);
    let speedup = if total_parallel > 0.0 {
        total_serial / total_parallel
    } else {
        f64::INFINITY
    };
    let report = JsonValue::obj(vec![
        ("tool", "replay_bench/sweep_parallel".into()),
        ("threads", (threads as u64).into()),
        ("available_parallelism", (cores as u64).into()),
        (
            "scale",
            format!("{:?}", args.config.scale).to_lowercase().into(),
        ),
        ("seed", args.config.seed.into()),
        ("tables_match", all_match.into()),
        ("serial_s", total_serial.into()),
        ("parallel_s", total_parallel.into()),
        ("speedup", speedup.into()),
        ("benches", JsonValue::Arr(per_bench)),
        ("sweep", sweep.to_json_value()),
        (
            "phases",
            JsonValue::Arr(
                sweep
                    .phase_spans()
                    .iter()
                    .map(branchlab::telemetry::PhaseSpan::to_json_value)
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&args.sweep_out, report.to_json_pretty() + "\n")
        .unwrap_or_else(|e| panic!("writing {} failed: {e}", args.sweep_out.display()));
    eprintln!(
        "replay_bench: serial sweep {total_serial:.2}s vs {threads}-thread sweep \
         {total_parallel:.2}s ({speedup:.1}x on {cores} cores) -> {}",
        args.sweep_out.display()
    );
    (all_match, sweep)
}

fn main() {
    let args = parse_args();
    if args.lanes_only {
        if !lanes_phase(&args) {
            eprintln!("replay_bench: MISMATCH between lane-packed and scalar sweep stats");
            std::process::exit(1);
        }
        return;
    }
    let mut per_bench = Vec::new();
    let mut total_reinterpret = 0.0f64;
    let mut total_replay = 0.0f64;
    let mut all_match = true;
    let run_started = TraceStats::snapshot();

    for name in &args.benches {
        let bench =
            benchmark(name).unwrap_or_else(|| panic!("benchmark `{name}` missing from suite"));

        let baseline_cfg = ExperimentConfig {
            use_trace_replay: false,
            sweep_per_point: true,
            ..args.config.clone()
        };
        let started = Instant::now();
        let baseline = study_set(bench, &baseline_cfg)
            .unwrap_or_else(|e| panic!("{name}: re-interpretation baseline failed: {e}"));
        let reinterpret_s = started.elapsed().as_secs_f64();

        let before = TraceStats::snapshot();
        let started = Instant::now();
        let replayed = study_set(bench, &args.config)
            .unwrap_or_else(|e| panic!("{name}: replay run failed: {e}"));
        let replay_s = started.elapsed().as_secs_f64();
        let delta = TraceStats::snapshot().since(&before);

        let stats_match = tables_csv(&baseline) == tables_csv(&replayed);
        all_match &= stats_match;
        let speedup = if replay_s > 0.0 {
            reinterpret_s / replay_s
        } else {
            f64::INFINITY
        };
        total_reinterpret += reinterpret_s;
        total_replay += replay_s;
        eprintln!(
            "{name}: reinterpret {reinterpret_s:.2}s, capture+replay {replay_s:.2}s \
             ({speedup:.1}x, {} events captured, {} replayed, match: {stats_match})",
            delta.events_captured, delta.events_replayed,
        );

        per_bench.push(JsonValue::obj(vec![
            ("name", name.as_str().into()),
            ("reinterpret_s", reinterpret_s.into()),
            ("replay_s", replay_s.into()),
            ("speedup", speedup.into()),
            ("stats_match", stats_match.into()),
            ("trace", delta.to_json_value()),
        ]));
    }

    let trace = TraceStats::snapshot().since(&run_started);
    let speedup = if total_replay > 0.0 {
        total_reinterpret / total_replay
    } else {
        f64::INFINITY
    };
    let report = JsonValue::obj(vec![
        ("tool", "replay_bench".into()),
        (
            "baseline",
            "per-point reinterpretation (one compile->profile->interpret pipeline per sweep point)"
                .into(),
        ),
        (
            "scale",
            format!("{:?}", args.config.scale).to_lowercase().into(),
        ),
        ("seed", args.config.seed.into()),
        ("stats_match", all_match.into()),
        ("reinterpret_s", total_reinterpret.into()),
        ("replay_s", total_replay.into()),
        ("speedup", speedup.into()),
        ("benches", JsonValue::Arr(per_bench)),
        ("trace", trace.to_json_value()),
        (
            "phases",
            JsonValue::Arr(
                trace
                    .phase_spans()
                    .iter()
                    .map(branchlab::telemetry::PhaseSpan::to_json_value)
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&args.out, report.to_json_pretty() + "\n")
        .unwrap_or_else(|e| panic!("writing {} failed: {e}", args.out.display()));
    eprintln!(
        "replay_bench: total reinterpret {total_reinterpret:.2}s vs capture+replay \
         {total_replay:.2}s ({speedup:.1}x) -> {}",
        args.out.display()
    );
    let (sweep_match, sweep) = sweep_parallel_phase(&args);
    let lanes_match = lanes_phase(&args);
    if let Some(path) = &args.trace_out {
        // Phase spans carry durations, not wall timestamps, so the
        // exporter lays each group out sequentially on its own row.
        let groups = vec![
            ("replay: trace replay".to_string(), trace.phase_spans()),
            ("replay: parallel sweep".to_string(), sweep.phase_spans()),
        ];
        let chrome = branchlab::telemetry::phases_chrome_trace("replay_bench", &groups);
        std::fs::write(path, chrome.to_json_pretty())
            .unwrap_or_else(|e| panic!("writing Chrome trace to {} failed: {e}", path.display()));
        eprintln!("replay_bench: Chrome trace written to {}", path.display());
    }
    if !all_match {
        eprintln!("replay_bench: MISMATCH between replayed and re-interpreted tables");
        std::process::exit(1);
    }
    if !sweep_match {
        eprintln!("replay_bench: MISMATCH between serial and parallel sweep tables");
        std::process::exit(1);
    }
    if !lanes_match {
        eprintln!("replay_bench: MISMATCH between lane-packed and scalar sweep stats");
        std::process::exit(1);
    }
}
