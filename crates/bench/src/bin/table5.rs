//! Regenerate the paper's Table 5.
fn main() {
    branchlab_bench::artifact_main("table5", |options, suite| {
        print!(
            "{}",
            options.render(&branchlab::experiments::tables::table5(suite))
        );
    });
}
