//! Extension studies: BTB geometry, counter parameters, context
//! switches, and the related-work static baselines.
//!
//! All studies on one benchmark are planned into a single
//! [`ablation::full_study`] batch, so the whole set is scored in one
//! pass over the captured trace (one capture + one replay per
//! benchmark). A failing benchmark is reported on stderr and the
//! binary exits non-zero after the surviving benchmarks have printed
//! (partial-result degradation, like the suite binaries).
use branchlab::experiments::ablation::{self, StudySpec};
use branchlab::workloads::benchmark;

fn main() {
    let options = branchlab_bench::Options::from_args();
    let cfg = &options.config;
    let spec = StudySpec::default();
    let mut failed = 0u32;
    for name in ["compress", "cccp"] {
        let Some(b) = benchmark(name) else {
            eprintln!("ablation: benchmark {name} missing from suite");
            failed += 1;
            continue;
        };
        match ablation::full_study(b, cfg, &spec) {
            Ok(tables) => {
                for t in &tables {
                    println!("{}", options.render(t));
                }
            }
            Err(e) => {
                eprintln!("ablation: {name} study set failed ({}): {e}", e.class());
                failed += 1;
            }
        }
    }
    if failed > 0 {
        eprintln!("ablation: {failed} benchmarks failed");
        std::process::exit(branchlab_bench::EXIT_PARTIAL);
    }
}
