//! Extension studies: BTB geometry, counter parameters, context
//! switches, and the related-work static baselines.
//!
//! Each study renders independently; a failing study is reported on
//! stderr and the binary exits non-zero after the surviving studies
//! have printed (partial-result degradation, like the suite binaries).
use branchlab::experiments::{ablation, ExperimentError, Table};
use branchlab::workloads::benchmark;

fn main() {
    let options = branchlab_bench::Options::from_args();
    let cfg = &options.config;
    let failed = std::cell::Cell::new(0u32);
    let show = |what: &str, r: Result<Table, ExperimentError>| match r {
        Ok(t) => println!("{}", options.render(&t)),
        Err(e) => {
            eprintln!("ablation: {what} failed ({}): {e}", e.class());
            failed.set(failed.get() + 1);
        }
    };
    for name in ["compress", "cccp"] {
        let Some(b) = benchmark(name) else {
            eprintln!("ablation: benchmark {name} missing from suite");
            failed.set(failed.get() + 1);
            continue;
        };
        show(
            "size sweep",
            ablation::sweep_btb_size(b, cfg, &[16, 64, 256, 1024]),
        );
        show(
            "associativity sweep",
            ablation::sweep_associativity(b, cfg, 256, &[1, 2, 4, 8, 256]),
        );
        show(
            "counter sweep",
            ablation::sweep_counters(b, cfg, &[(1, 1), (2, 2), (3, 4), (4, 8)]),
        );
        show(
            "context-switch study",
            ablation::context_switch_study(b, cfg, &[100, 1_000, 10_000, u64::MAX / 2]),
        );
        show("static baselines", ablation::static_baselines(b, cfg));
        show("RAS study", ablation::ras_study(b, cfg, &[4, 16, 64]));
        show("delay-slot study", ablation::delay_slot_study(b, cfg, 2));
        show("two-level study", ablation::beyond_1989(b, cfg));
    }
    if failed.get() > 0 {
        eprintln!("ablation: {} studies failed", failed.get());
        std::process::exit(branchlab_bench::EXIT_PARTIAL);
    }
}
