//! Extension studies: BTB geometry, counter parameters, context
//! switches, and the related-work static baselines.
//!
//! All studies on one benchmark are planned into a single
//! [`ablation::full_study`] batch, so the whole set is scored in one
//! pass over the captured trace (one capture + one replay per
//! benchmark), and the benchmarks run through
//! [`ablation::full_study_suite`], which overlaps the next
//! benchmark's trace capture with the current one's sweep scoring.
//! A failing benchmark is reported on stderr and the binary exits
//! non-zero after the surviving benchmarks have printed
//! (partial-result degradation, like the suite binaries).
//! `--trace-out FILE` drops the run's capture/replay/scoring phase
//! timing as Chrome trace-event JSON (open at ui.perfetto.dev).
use branchlab::experiments::ablation::{self, StudySpec};
use branchlab::experiments::{SweepStats, TraceStats};
use branchlab::workloads::benchmark;

fn main() {
    let options = branchlab_bench::Options::from_args();
    let cfg = &options.config;
    let spec = StudySpec::default();
    let trace_before = TraceStats::snapshot();
    let sweep_before = SweepStats::snapshot();
    let mut failed = 0u32;
    let mut benches = Vec::new();
    for name in ["compress", "cccp"] {
        match benchmark(name) {
            Some(b) => benches.push(b),
            None => {
                eprintln!("ablation: benchmark {name} missing from suite");
                failed += 1;
            }
        }
    }
    for (name, result) in ablation::full_study_suite(&benches, cfg, &spec) {
        match result {
            Ok(tables) => {
                for t in &tables {
                    println!("{}", options.render(t));
                }
            }
            Err(e) => {
                eprintln!("ablation: {name} study set failed ({}): {e}", e.class());
                failed += 1;
            }
        }
    }
    // Written even on partial failure, so a degraded run's timing is
    // still inspectable.
    if let Some(path) = &options.trace_out {
        let groups = vec![
            (
                "ablation: trace capture/replay".to_string(),
                TraceStats::snapshot().since(&trace_before).phase_spans(),
            ),
            (
                "ablation: sweep scoring".to_string(),
                SweepStats::snapshot().since(&sweep_before).phase_spans(),
            ),
        ];
        let chrome = branchlab::telemetry::phases_chrome_trace("ablation", &groups);
        std::fs::write(path, chrome.to_json_pretty())
            .unwrap_or_else(|e| panic!("writing Chrome trace to {} failed: {e}", path.display()));
        eprintln!("ablation: Chrome trace written to {}", path.display());
    }
    if failed > 0 {
        eprintln!("ablation: {failed} benchmarks failed");
        std::process::exit(branchlab_bench::EXIT_PARTIAL);
    }
}
