//! Extension studies: BTB geometry, counter parameters, context
//! switches, and the related-work static baselines.
use branchlab::experiments::ablation;
use branchlab::workloads::benchmark;
fn main() {
    let options = branchlab_bench::Options::from_args();
    let cfg = &options.config;
    let show = |t: &branchlab::experiments::Table| {
        println!("{}", options.render(t));
    };
    for name in ["compress", "cccp"] {
        let b = benchmark(name).expect("suite benchmark");
        show(&ablation::sweep_btb_size(b, cfg, &[16, 64, 256, 1024]).expect("size sweep"));
        show(&ablation::sweep_associativity(b, cfg, 256, &[1, 2, 4, 8, 256]).expect("assoc"));
        show(&ablation::sweep_counters(b, cfg, &[(1, 1), (2, 2), (3, 4), (4, 8)]).expect("ctr"));
        show(
            &ablation::context_switch_study(b, cfg, &[100, 1_000, 10_000, u64::MAX / 2])
                .expect("ctx"),
        );
        show(&ablation::static_baselines(b, cfg).expect("baselines"));
        show(&ablation::ras_study(b, cfg, &[4, 16, 64]).expect("ras"));
        show(&ablation::delay_slot_study(b, cfg, 2).expect("delay slots"));
        show(&ablation::beyond_1989(b, cfg).expect("two-level"));
    }
}
