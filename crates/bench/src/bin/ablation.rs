//! Extension studies: BTB geometry, counter parameters, context
//! switches, and the related-work static baselines.
//!
//! All studies on one benchmark are planned into a single
//! [`ablation::full_study`] batch, so the whole set is scored in one
//! pass over the captured trace (one capture + one replay per
//! benchmark), and the benchmarks run through
//! [`ablation::full_study_suite`], which overlaps the next
//! benchmark's trace capture with the current one's sweep scoring.
//! A failing benchmark is reported on stderr and the binary exits
//! non-zero after the surviving benchmarks have printed
//! (partial-result degradation, like the suite binaries).
use branchlab::experiments::ablation::{self, StudySpec};
use branchlab::workloads::benchmark;

fn main() {
    let options = branchlab_bench::Options::from_args();
    let cfg = &options.config;
    let spec = StudySpec::default();
    let mut failed = 0u32;
    let mut benches = Vec::new();
    for name in ["compress", "cccp"] {
        match benchmark(name) {
            Some(b) => benches.push(b),
            None => {
                eprintln!("ablation: benchmark {name} missing from suite");
                failed += 1;
            }
        }
    }
    for (name, result) in ablation::full_study_suite(&benches, cfg, &spec) {
        match result {
            Ok(tables) => {
                for t in &tables {
                    println!("{}", options.render(t));
                }
            }
            Err(e) => {
                eprintln!("ablation: {name} study set failed ({}): {e}", e.class());
                failed += 1;
            }
        }
    }
    if failed > 0 {
        eprintln!("ablation: {failed} benchmarks failed");
        std::process::exit(branchlab_bench::EXIT_PARTIAL);
    }
}
