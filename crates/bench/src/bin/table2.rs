//! Regenerate the paper's Table 2.
fn main() {
    branchlab_bench::artifact_main("table2", |options, suite| {
        print!(
            "{}",
            options.render(&branchlab::experiments::tables::table2(suite))
        );
    });
}
