//! BTB-hierarchy study: the paper's scheme comparison (SBTB / CBTB /
//! Forward Semantic) re-run in the large-code-footprint regime against
//! the multi-level BTB hierarchy, with FDIP front-end costs.
//!
//! The 1989 suite fits comfortably in a 256-entry BTB, so the paper
//! never observes capacity pressure. The generated server workloads
//! (`dispatch`, `router`) spread execution across hundreds of branch
//! sites; this study scores every scheme on them at two geometries:
//!
//! * **paper-256** — the paper's 256-entry fully-associative buffer
//!   (and the single-level `MlBtb` that is prediction-identical to it);
//! * **stressed-64x4** — a 64-entry 4-way L1 that the synthetic
//!   footprints overflow, alone (SBTB/CBTB) and backed by a 2048-entry
//!   8-way L2 (`MlBtb::server`).
//!
//! Every point is scored twice — batched trace replay and live
//! re-interpretation — and the artifact records `stats_match` per
//! point. A third pass per point drives the [`FdipSim`] front end over
//! the warm trace, crosschecks its `PredStats` against the replay
//! scoring, and prices the moderate and deep FDIP penalty
//! configurations from the class tallies in closed form. Multi-level
//! points additionally record per-level hit/miss/fill/evict counts and
//! the promotion/demotion traffic.
//!
//! Usage:
//! `btb_bench [--scale test|small|paper] [--seed N] [--out FILE]
//! [--trace-cache DIR] [--benches A,B,...]`
//!
//! (Own argument parser, like `replay_bench`: `--out`/`--benches` are
//! not part of the shared suite `Options`.)

use branchlab::experiments::trace_replay::{cached_profile, captured_runs, replay_runs};
use branchlab::experiments::{eval_predictors, eval_predictors_live, ExperimentConfig};
use branchlab::pipeline::{FdipConfig, FdipSim};
use branchlab::predict::{
    BranchPredictor, Cbtb, CbtbConfig, ForwardSemantic, MlBtb, MlBtbConfig, MlBtbStats, Sbtb,
    SbtbConfig,
};
use branchlab::telemetry::JsonValue;
use branchlab::workloads::{benchmark, Benchmark, Scale};

struct Args {
    config: ExperimentConfig,
    out: std::path::PathBuf,
    benches: Vec<String>,
}

fn parse_args() -> Args {
    const USAGE: &str = "usage: btb_bench [--scale test|small|paper] [--seed N] \
[--out FILE] [--trace-cache DIR] [--benches A,B,...]";
    let mut config = ExperimentConfig::default();
    let mut out = std::path::PathBuf::from("BENCH_btb.json");
    let mut benches: Vec<String> = vec!["dispatch".into(), "router".into()];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                config.scale = match args.next().unwrap_or_default().as_str() {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => panic!("unknown scale `{other}` (test|small|paper)"),
                };
            }
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--out" => out = args.next().expect("--out needs a file path").into(),
            "--trace-cache" => {
                config.trace_cache_dir =
                    Some(args.next().expect("--trace-cache needs a directory").into());
            }
            "--benches" => {
                let list = args.next().expect("--benches needs a comma list");
                benches = list.split(',').map(str::trim).map(String::from).collect();
            }
            other => panic!("unknown argument `{other}`\n{USAGE}"),
        }
    }
    Args {
        config,
        out,
        benches,
    }
}

/// One study point: a scheme at a geometry, rebuildable on demand so
/// the replay, live, and FDIP passes each score a fresh predictor.
struct Point {
    key: &'static str,
    scheme: &'static str,
    geometry: &'static str,
    /// `Some` for multi-level points — replayed separately to pull the
    /// per-level statistics out of the concrete type.
    mlbtb: Option<MlBtbConfig>,
}

fn points() -> Vec<Point> {
    let stressed_l1 = MlBtbConfig {
        levels: vec![branchlab::predict::MlBtbLevel {
            entries: 64,
            ways: 4,
            latency: 0,
        }],
        ..MlBtbConfig::server()
    };
    vec![
        Point {
            key: "sbtb_256",
            scheme: "sbtb",
            geometry: "paper-256",
            mlbtb: None,
        },
        Point {
            key: "cbtb_256",
            scheme: "cbtb",
            geometry: "paper-256",
            mlbtb: None,
        },
        Point {
            key: "fs",
            scheme: "forward-semantic",
            geometry: "profile (bufferless)",
            mlbtb: None,
        },
        Point {
            key: "mlbtb_256",
            scheme: "mlbtb",
            geometry: "paper-256",
            mlbtb: Some(MlBtbConfig::paper()),
        },
        Point {
            key: "sbtb_64x4",
            scheme: "sbtb",
            geometry: "stressed-64x4",
            mlbtb: None,
        },
        Point {
            key: "cbtb_64x4",
            scheme: "cbtb",
            geometry: "stressed-64x4",
            mlbtb: None,
        },
        Point {
            key: "mlbtb_64x4_2048x8",
            scheme: "mlbtb",
            geometry: "stressed-64x4 + L2 2048x8",
            mlbtb: Some(MlBtbConfig::server()),
        },
        Point {
            key: "mlbtb_64x4_bare",
            scheme: "mlbtb",
            geometry: "stressed-64x4 (no L2)",
            mlbtb: Some(stressed_l1),
        },
    ]
}

/// Build the predictor for one point (FS needs the benchmark profile).
fn build(point: &Point, fs: &ForwardSemantic) -> Box<dyn BranchPredictor> {
    if let Some(cfg) = &point.mlbtb {
        return Box::new(MlBtb::new(cfg.clone()));
    }
    match point.key {
        "sbtb_256" => Box::new(Sbtb::paper()),
        "cbtb_256" => Box::new(Cbtb::paper()),
        "fs" => Box::new(fs.clone()),
        "sbtb_64x4" => Box::new(Sbtb::new(SbtbConfig {
            entries: 64,
            ways: 4,
        })),
        "cbtb_64x4" => Box::new(Cbtb::new(CbtbConfig {
            entries: 64,
            ways: 4,
            ..CbtbConfig::paper()
        })),
        other => panic!("unknown point `{other}`"),
    }
}

fn level_stats_json(stats: &MlBtbStats) -> JsonValue {
    JsonValue::obj(vec![
        (
            "levels",
            JsonValue::Arr(
                stats
                    .levels
                    .iter()
                    .map(|l| {
                        JsonValue::obj(vec![
                            ("hits", l.hits.into()),
                            ("misses", l.misses.into()),
                            ("fills", l.fills.into()),
                            ("evicts", l.evicts.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("promotions", stats.promotions.into()),
        ("demotions", stats.demotions.into()),
        ("dropped", stats.dropped.into()),
        ("latency_cycles", stats.latency_cycles.into()),
    ])
}

fn study_bench(bench: &Benchmark, config: &ExperimentConfig) -> (JsonValue, bool) {
    let name = bench.name;
    let profile =
        cached_profile(bench, config).unwrap_or_else(|e| panic!("{name}: profiling failed: {e}"));
    let fs = ForwardSemantic::from_profile(&profile.sites);
    let runs = captured_runs(bench, config)
        .unwrap_or_else(|e| panic!("{name}: trace capture failed: {e}"));
    let events: u64 = runs.iter().map(branchlab::trace::TraceBuf::events).sum();

    let specs = points();
    let preds = |fs: &ForwardSemantic| -> Vec<Box<dyn BranchPredictor>> {
        specs.iter().map(|p| build(p, fs)).collect()
    };
    let replayed = eval_predictors(bench, config, preds(&fs))
        .unwrap_or_else(|e| panic!("{name}: replay evaluation failed: {e}"));
    let live = eval_predictors_live(bench, config, preds(&fs))
        .unwrap_or_else(|e| panic!("{name}: live evaluation failed: {e}"));

    let moderate = FdipConfig::moderate();
    let deep = FdipConfig::deep();
    let mut all_match = true;
    let mut rows = Vec::new();
    for (i, point) in specs.iter().enumerate() {
        // FDIP pass on the warm trace: class tallies for the closed-form
        // penalty sweep, plus a third independent scoring of the same
        // predictor to crosscheck against replay and live.
        let mut sim = FdipSim::new(build(point, &fs));
        replay_runs(&runs, &mut sim)
            .unwrap_or_else(|e| panic!("{name}/{}: FDIP replay failed: {e}", point.key));
        let stats_match = replayed[i] == live[i] && *sim.stats() == replayed[i];
        all_match &= stats_match;

        let mut fields = vec![
            ("key", point.key.into()),
            ("scheme", point.scheme.into()),
            ("geometry", point.geometry.into()),
            ("stats_match", stats_match.into()),
            ("accuracy", replayed[i].accuracy().into()),
            ("miss_ratio", replayed[i].miss_ratio().into()),
            (
                "fdip",
                JsonValue::obj(vec![
                    ("prefetch_hits", sim.counts.prefetch_hits.into()),
                    ("sequential_hits", sim.counts.sequential_hits.into()),
                    ("redirects", sim.counts.redirects.into()),
                    ("misfetches", sim.counts.misfetches.into()),
                    ("cost_moderate", sim.counts.cost(&moderate).into()),
                    ("cost_deep", sim.counts.cost(&deep).into()),
                ]),
            ),
        ];
        // Multi-level points: replay once more on the concrete type to
        // expose the hierarchy counters the boxed pass erases.
        if let Some(cfg) = &point.mlbtb {
            let mut ml = FdipSim::new(MlBtb::new(cfg.clone()));
            replay_runs(&runs, &mut ml)
                .unwrap_or_else(|e| panic!("{name}/{}: mlbtb replay failed: {e}", point.key));
            fields.push(("mlbtb", level_stats_json(ml.eval.predictor.stats())));
        }
        rows.push(JsonValue::obj(fields));
        eprintln!(
            "{name}/{}: accuracy {:.4}, fdip cost {:.3} (moderate) / {:.3} (deep), match: {stats_match}",
            point.key,
            replayed[i].accuracy(),
            sim.counts.cost(&moderate),
            sim.counts.cost(&deep),
        );
    }

    let report = JsonValue::obj(vec![
        ("name", name.into()),
        ("branch_sites", (bench.branch_sites() as u64).into()),
        ("footprint_class", bench.footprint_class().into()),
        ("events", events.into()),
        ("points", JsonValue::Arr(rows)),
    ]);
    (report, all_match)
}

fn main() {
    let args = parse_args();
    let mut benches = Vec::new();
    let mut all_match = true;
    for name in &args.benches {
        let bench = benchmark(name).unwrap_or_else(|| panic!("benchmark `{name}` not found"));
        let (report, matched) = study_bench(bench, &args.config);
        benches.push(report);
        all_match &= matched;
    }
    let moderate = FdipConfig::moderate();
    let deep = FdipConfig::deep();
    let fdip_cfg = |c: &FdipConfig| {
        JsonValue::obj(vec![
            ("prefetch_hit", u64::from(c.prefetch_hit).into()),
            ("redirect", u64::from(c.redirect).into()),
            ("miss", u64::from(c.miss).into()),
        ])
    };
    let report = JsonValue::obj(vec![
        ("tool", "btb_bench".into()),
        (
            "scale",
            format!("{:?}", args.config.scale).to_lowercase().into(),
        ),
        ("seed", args.config.seed.into()),
        ("stats_match", all_match.into()),
        (
            "fdip_penalties",
            JsonValue::obj(vec![
                ("moderate", fdip_cfg(&moderate)),
                ("deep", fdip_cfg(&deep)),
            ]),
        ),
        ("benches", JsonValue::Arr(benches)),
    ]);
    std::fs::write(&args.out, report.to_json_pretty() + "\n")
        .unwrap_or_else(|e| panic!("writing {} failed: {e}", args.out.display()));
    eprintln!("btb_bench: wrote {}", args.out.display());
    if !all_match {
        eprintln!("btb_bench: MISMATCH between replayed, live, and FDIP-scored stats");
        std::process::exit(1);
    }
}
