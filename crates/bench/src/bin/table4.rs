//! Regenerate the paper's Table 4 plus the §3 scalability observation.
fn main() {
    branchlab_bench::artifact_main("table4", |options, suite| {
        print!(
            "{}",
            options.render(&branchlab::experiments::tables::table4(suite))
        );
        let (s, c, f) = branchlab::experiments::tables::cost_growth(suite);
        println!();
        println!(
            "Average branch-cost increase from k+l=2 to k+l=3: SBTB {s:.1}%, CBTB {c:.1}%, FS {f:.1}%"
        );
        println!("(paper: SBTB 7.7%, CBTB 6.9%, FS 5.3% — FS scales best)");
    });
}
