//! Regenerate the paper's Table 3.
fn main() {
    branchlab_bench::artifact_main("table3", |options, suite| {
        print!(
            "{}",
            options.render(&branchlab::experiments::tables::table3(suite))
        );
    });
}
