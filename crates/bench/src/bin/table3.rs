//! Regenerate the paper's Table 3.
fn main() {
    let options = branchlab_bench::Options::from_args();
    let suite = branchlab_bench::suite(&options);
    print!("{}", options.render(&branchlab::experiments::tables::table3(&suite)));
}
