//! Regenerate the paper's Table 1.
fn main() {
    branchlab_bench::artifact_main("table1", |options, suite| {
        print!(
            "{}",
            options.render(&branchlab::experiments::tables::table1(suite))
        );
    });
}
