//! Load generator for `branchlabd`: drives the sweep endpoint with
//! keep-alive client threads and writes `BENCH_serve.json` recording
//! throughput, latency percentiles, and how much of the load was
//! absorbed by coalescing and the result cache.
//!
//! By default it boots the server in-process on an ephemeral port (so
//! the benchmark is hermetic); `--url HOST:PORT` points it at an
//! already-running daemon instead — that is what the CI smoke uses,
//! together with `--probe`, which only checks `/healthz`, polls
//! `/readyz`, and fetches `/v1/benchmarks` + `/metrics` before
//! exiting 0/1.
//!
//! Usage:
//! `serve_bench [--url HOST:PORT] [--probe] [--connections N]
//! [--requests N] [--distinct K] [--benches A,B,...]
//! [--scale test|small|paper] [--seed N] [--workers N] [--out FILE]`
//!
//! The request mix cycles through `--distinct K` distinct sweep bodies
//! across `--benches`; with K smaller than the total request count the
//! later duplicates exercise the cache, and concurrent duplicates
//! exercise coalescing. Latency percentiles are exact (computed from
//! the full sorted sample set, not histogram buckets).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use branchlab::server::client::Client;
use branchlab::server::{parse_scale_arg, Server, ServerConfig, ServerHandle};
use branchlab::telemetry::{json, JsonValue};

struct Args {
    url: Option<String>,
    probe: bool,
    connections: usize,
    requests: usize,
    distinct: usize,
    benches: Vec<String>,
    scale: String,
    seed: u64,
    workers: usize,
    out: std::path::PathBuf,
}

fn parse_args() -> Args {
    const USAGE: &str = "usage: serve_bench [--url HOST:PORT] [--probe] \
[--connections N] [--requests N] [--distinct K] [--benches A,B,...] \
[--scale test|small|paper] [--seed N] [--workers N] [--out FILE]";
    let mut parsed = Args {
        url: None,
        probe: false,
        connections: 4,
        requests: 200,
        distinct: 12,
        benches: vec!["wc".into(), "cmp".into(), "grep".into()],
        scale: "test".into(),
        seed: 1989,
        workers: 2,
        out: std::path::PathBuf::from("BENCH_serve.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--url" => parsed.url = Some(args.next().expect("--url needs HOST:PORT")),
            "--probe" => parsed.probe = true,
            "--connections" => {
                parsed.connections = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--connections needs an integer");
            }
            "--requests" => {
                parsed.requests = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--requests needs an integer");
            }
            "--distinct" => {
                parsed.distinct = args
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .expect("--distinct needs an integer")
                    .max(1);
            }
            "--benches" => {
                let list = args.next().expect("--benches needs a comma list");
                parsed.benches = list.split(',').map(str::trim).map(String::from).collect();
            }
            "--scale" => {
                parsed.scale = args.next().expect("--scale needs a value");
                assert!(
                    parse_scale_arg(&parsed.scale).is_some(),
                    "unknown scale `{}` (test|small|paper)",
                    parsed.scale
                );
            }
            "--seed" => {
                parsed.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--workers" => {
                parsed.workers = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--workers needs an integer");
            }
            "--out" => parsed.out = args.next().expect("--out needs a file path").into(),
            other => panic!("unknown argument `{other}`\n{USAGE}"),
        }
    }
    parsed
}

/// The K distinct sweep bodies the load cycles through.
fn request_mix(args: &Args) -> Vec<String> {
    (0..args.distinct)
        .map(|i| {
            let bench = &args.benches[i % args.benches.len()];
            let entries = 32 << (i % 4);
            format!(
                "{{\"bench\": \"{bench}\", \"predictors\": [\
                 {{\"kind\": \"cbtb\", \"entries\": {entries}}}, \
                 {{\"kind\": \"sbtb\", \"entries\": {entries}}}, \
                 {{\"kind\": \"btfn\"}}], \"ras\": [8]}}"
            )
        })
        .collect()
}

fn wait_ready(addr: &str) {
    let deadline = Instant::now() + std::time::Duration::from_secs(300);
    loop {
        if let Ok(mut c) = Client::connect(addr) {
            if c.get("/readyz").map(|r| r.status).ok() == Some(200) {
                return;
            }
        }
        assert!(
            Instant::now() < deadline,
            "server at {addr} never became ready"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

/// `--probe`: health + readiness + benchmark list + metrics, then out.
fn probe(addr: &str) {
    let mut client = Client::connect(addr).expect("connect");
    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200, "healthz: {}", health.text());
    wait_ready(addr);
    let benches = client.get("/v1/benchmarks").expect("benchmarks");
    assert_eq!(benches.status, 200);
    let v = json::parse(&benches.text()).expect("benchmarks JSON");
    let n = v
        .get("benchmarks")
        .and_then(|b| b.as_arr())
        .map_or(0, <[JsonValue]>::len);
    assert!(n > 0, "benchmark list is empty");
    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(
        metrics.text().contains("server_requests"),
        "metrics exposition is missing server counters"
    );
    eprintln!("serve_bench: probe ok ({n} benchmarks listed)");
}

#[derive(Clone, Copy, Default)]
struct Tally {
    ok: usize,
    errors: usize,
    computed: usize,
    cached: usize,
    coalesced: usize,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64) * p).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

fn scrape_counters(addr: &str) -> Vec<(String, f64)> {
    let Ok(mut client) = Client::connect(addr) else {
        return Vec::new();
    };
    let Ok(resp) = client.get("/metrics") else {
        return Vec::new();
    };
    resp.text()
        .lines()
        .filter(|l| l.starts_with("server_") && !l.contains('{'))
        .filter_map(|l| {
            let (name, value) = l.split_once(' ')?;
            Some((name.to_string(), value.parse().ok()?))
        })
        .collect()
}

fn main() {
    let args = parse_args();

    // Either target an external daemon or boot one in-process.
    let mut local: Option<ServerHandle> = None;
    let addr = match &args.url {
        Some(url) => url.clone(),
        None => {
            let mut config = ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: args.workers,
                warm_benches: args.benches.clone(),
                ..ServerConfig::default()
            };
            config.experiment.scale = parse_scale_arg(&args.scale).expect("scale");
            config.experiment.seed = args.seed;
            let handle = Server::start(config).expect("start in-process server");
            let addr = handle.addr().to_string();
            local = Some(handle);
            addr
        }
    };

    if args.probe {
        probe(&addr);
        if let Some(mut handle) = local {
            handle.shutdown_and_join();
        }
        return;
    }

    wait_ready(&addr);
    let mix = Arc::new(request_mix(&args));
    let next = Arc::new(AtomicUsize::new(0));

    eprintln!(
        "serve_bench: {} requests over {} connections against {addr} ({} distinct bodies)",
        args.requests,
        args.connections,
        mix.len()
    );
    let t0 = Instant::now();
    let workers: Vec<_> = (0..args.connections.max(1))
        .map(|_| {
            let addr = addr.clone();
            let mix = Arc::clone(&mix);
            let next = Arc::clone(&next);
            let total = args.requests;
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut tally = Tally::default();
                let mut latencies_us = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let body = &mix[i % mix.len()];
                    let sent = Instant::now();
                    match client.post_json("/v1/sweep", body) {
                        Ok(resp) if resp.status == 200 => {
                            tally.ok += 1;
                            match resp.header("x-branchlab-source") {
                                Some("cache") => tally.cached += 1,
                                Some("coalesced") => tally.coalesced += 1,
                                _ => tally.computed += 1,
                            }
                        }
                        Ok(_) | Err(_) => tally.errors += 1,
                    }
                    latencies_us
                        .push(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
                }
                (tally, latencies_us)
            })
        })
        .collect();

    let mut tally = Tally::default();
    let mut latencies = Vec::new();
    for worker in workers {
        let (t, mut l) = worker.join().expect("worker thread");
        tally.ok += t.ok;
        tally.errors += t.errors;
        tally.computed += t.computed;
        tally.cached += t.cached;
        tally.coalesced += t.coalesced;
        latencies.append(&mut l);
    }
    let wall_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
    latencies.sort_unstable();

    let served = tally.ok.max(1) as f64;
    let counters = scrape_counters(&addr);
    let report = JsonValue::obj(vec![
        ("tool", "serve_bench".into()),
        ("scale", args.scale.as_str().into()),
        ("seed", args.seed.into()),
        ("connections", args.connections.into()),
        ("requests", args.requests.into()),
        ("distinct_bodies", mix.len().into()),
        (
            "benches",
            JsonValue::Arr(args.benches.iter().map(|b| b.as_str().into()).collect()),
        ),
        ("ok", tally.ok.into()),
        ("errors", tally.errors.into()),
        ("wall_us", wall_us.into()),
        (
            "throughput_rps",
            (tally.ok as f64 / (wall_us.max(1) as f64 / 1e6)).into(),
        ),
        (
            "latency_us",
            JsonValue::obj(vec![
                ("p50", percentile(&latencies, 0.50).into()),
                ("p90", percentile(&latencies, 0.90).into()),
                ("p99", percentile(&latencies, 0.99).into()),
                ("max", latencies.last().copied().unwrap_or(0).into()),
                (
                    "mean",
                    (latencies.iter().sum::<u64>() as f64 / latencies.len().max(1) as f64).into(),
                ),
            ]),
        ),
        (
            "sources",
            JsonValue::obj(vec![
                ("computed", tally.computed.into()),
                ("cache", tally.cached.into()),
                ("coalesced", tally.coalesced.into()),
            ]),
        ),
        ("coalescing_ratio", (tally.coalesced as f64 / served).into()),
        ("cache_hit_ratio", (tally.cached as f64 / served).into()),
        (
            "server_counters",
            JsonValue::Obj(
                counters
                    .into_iter()
                    .map(|(name, value)| (name, value.into()))
                    .collect(),
            ),
        ),
        (
            "available_parallelism",
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1)
                .into(),
        ),
    ]);
    std::fs::write(&args.out, report.to_json_pretty()).expect("write report");
    eprintln!(
        "serve_bench: {} ok / {} errors in {:.2}s → {}",
        tally.ok,
        tally.errors,
        wall_us as f64 / 1e6,
        args.out.display()
    );

    if let Some(mut handle) = local {
        handle.shutdown_and_join();
    }
    assert_eq!(tally.errors, 0, "load run saw request errors");
}
