//! Regenerate the paper's Figure 4 (branch cost vs l+m for k = 4, 8).
use branchlab::experiments::figures::{ascii_plot, figure4, SchemeAccuracies};
fn main() {
    branchlab_bench::artifact_main("fig4", |options, suite| {
        let acc = SchemeAccuracies::from_suite(suite);
        for (panel, k) in figure4(&acc).iter().zip([4u32, 8]) {
            print!("{}", options.render(panel));
            println!("{}", ascii_plot(&acc, k, 14));
        }
    });
}
