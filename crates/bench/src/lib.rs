//! # branchlab-bench
//!
//! The benchmark harness: one binary per paper artifact —
//! `table1` … `table5`, `fig3`, `fig4`, an `ablation` binary for the
//! extension studies, and a `report` binary that regenerates everything
//! in one run (used to produce EXPERIMENTS.md). Std-only timing benches
//! (under `benches/`) cover the interpreter, the predictors, and the
//! Forward Semantic transform.
//!
//! Every binary accepts:
//!
//! * `--scale test|small|paper` (default `small`)
//! * `--seed N` (default 1989)
//! * `--markdown` / `--csv` output formats (default fixed-width text)
//! * `--telemetry-out DIR` — write a run manifest (`manifest.json`)
//!   plus metrics snapshots (`metrics.jsonl`, `metrics.prom`) with
//!   per-benchmark phase timings and per-site predictor counters

#![warn(missing_docs)]

use std::path::PathBuf;

use branchlab::experiments::{run_suite, BenchResult, ExperimentConfig, SuiteResult, Table};
use branchlab::predict::PredStats;
use branchlab::telemetry::manifest::BenchmarkRecord;
use branchlab::telemetry::{JsonValue, MetricsRegistry, RunManifest};
use branchlab::workloads::Scale;

pub mod timing;

/// Sites listed in the manifest's per-predictor top-mispredicted table.
pub const MANIFEST_TOP_K_SITES: usize = 10;

/// Output format selected on the command line.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Format {
    /// Fixed-width text (default).
    Text,
    /// GitHub-flavored markdown.
    Markdown,
    /// Comma-separated values.
    Csv,
}

/// Parsed command-line options shared by all bench binaries.
#[derive(Clone, Debug)]
pub struct Options {
    /// Experiment configuration (scale, seed, …).
    pub config: ExperimentConfig,
    /// Output format.
    pub format: Format,
    /// Directory for the run manifest and metrics snapshots; also turns
    /// on per-site predictor telemetry.
    pub telemetry_out: Option<PathBuf>,
}

const USAGE: &str = "usage: [--scale test|small|paper] [--seed N] [--markdown|--csv] [--no-verify] [--telemetry-out DIR]";

impl Options {
    /// Parse `std::env::args`.
    ///
    /// # Panics
    /// Panics with a usage message on unknown arguments.
    #[must_use]
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse an explicit argument list (everything after the binary
    /// name).
    ///
    /// # Panics
    /// Panics with a usage message on unknown arguments.
    #[must_use]
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut config = ExperimentConfig::default();
        let mut format = Format::Text;
        let mut telemetry_out = None;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args.next().unwrap_or_default();
                    config.scale = match v.as_str() {
                        "test" => Scale::Test,
                        "small" => Scale::Small,
                        "paper" => Scale::Paper,
                        other => panic!("unknown scale `{other}` (test|small|paper)"),
                    };
                }
                "--seed" => {
                    config.seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--markdown" => format = Format::Markdown,
                "--csv" => format = Format::Csv,
                "--no-verify" => config.verify_equivalence = false,
                "--telemetry-out" => {
                    let dir = args.next().expect("--telemetry-out needs a directory");
                    config.collect_site_telemetry = true;
                    telemetry_out = Some(PathBuf::from(dir));
                }
                other => panic!("unknown argument `{other}`\n{USAGE}"),
            }
        }
        Options {
            config,
            format,
            telemetry_out,
        }
    }

    /// Render a table in the selected format.
    #[must_use]
    pub fn render(&self, table: &Table) -> String {
        match self.format {
            Format::Text => table.to_text(),
            Format::Markdown => table.to_markdown(),
            Format::Csv => table.to_csv(),
        }
    }
}

/// Run the full suite with progress to stderr.
///
/// # Panics
/// Panics (with the failing benchmark's error) if the pipeline fails —
/// these binaries are terminal tools.
#[must_use]
pub fn suite(options: &Options) -> SuiteResult {
    eprintln!(
        "running 12-benchmark suite (scale {:?}, seed {}) …",
        options.config.scale, options.config.seed
    );
    let start = std::time::Instant::now();
    let suite = run_suite(&options.config).unwrap_or_else(|e| panic!("suite failed: {e}"));
    let insts: u64 = suite.benches.iter().map(|b| b.stats.insts).sum();
    eprintln!(
        "done in {:.1}s ({:.1}M dynamic instructions)",
        start.elapsed().as_secs_f64(),
        insts as f64 / 1e6
    );
    suite
}

/// The shared main of every table/figure binary: parse the command
/// line, run the suite, hand it to `emit` for rendering, and — when
/// `--telemetry-out` was given — write the run manifest and metrics
/// snapshots.
///
/// # Panics
/// Panics on pipeline failure or unwritable telemetry directory (these
/// binaries are terminal tools).
pub fn artifact_main(tool: &str, emit: impl FnOnce(&Options, &SuiteResult)) {
    let options = Options::from_args();
    let suite = suite(&options);
    emit(&options, &suite);
    if let Some(dir) = &options.telemetry_out {
        let path = write_telemetry(tool, &options, &suite, dir)
            .unwrap_or_else(|e| panic!("writing telemetry to {} failed: {e}", dir.display()));
        eprintln!("telemetry manifest written to {}", path.display());
    }
}

/// Prediction scoring as a JSON object for the manifest.
fn pred_json(stats: &PredStats) -> JsonValue {
    JsonValue::obj(vec![
        ("events", stats.events.into()),
        ("correct", stats.correct.into()),
        ("accuracy", stats.accuracy().into()),
        ("btb_lookups", stats.btb_lookups.into()),
        ("btb_misses", stats.btb_misses.into()),
        ("miss_ratio", stats.miss_ratio().into()),
    ])
}

/// Scoring plus per-site counters for one BTB scheme.
fn btb_json(stats: &PredStats, sites: &branchlab::telemetry::SiteProbe) -> JsonValue {
    JsonValue::obj(vec![
        ("stats", pred_json(stats)),
        ("sites", sites.to_json_value(MANIFEST_TOP_K_SITES)),
    ])
}

/// One benchmark's manifest record: phase spans plus per-predictor
/// summaries.
fn bench_record(b: &BenchResult) -> BenchmarkRecord {
    BenchmarkRecord {
        name: b.name.to_string(),
        phases: b.phases.clone(),
        predictors: vec![
            ("sbtb".into(), btb_json(&b.sbtb, &b.sbtb_sites)),
            ("cbtb".into(), btb_json(&b.cbtb, &b.cbtb_sites)),
            ("fs".into(), pred_json(&b.fs)),
            ("always_taken".into(), pred_json(&b.always_taken)),
            ("always_not_taken".into(), pred_json(&b.always_not_taken)),
            ("btfn".into(), pred_json(&b.btfn)),
        ],
    }
}

/// Write `manifest.json`, `metrics.jsonl`, and `metrics.prom` for a
/// suite run under `dir`. Returns the manifest path.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_telemetry(
    tool: &str,
    options: &Options,
    suite: &SuiteResult,
    dir: &std::path::Path,
) -> std::io::Result<PathBuf> {
    let mut manifest = RunManifest::new(tool);
    let cfg = &options.config;
    manifest.set_config("scale", format!("{:?}", cfg.scale).to_lowercase().as_str());
    manifest.set_config("seed", cfg.seed);
    manifest.set_config("fs_slots", u64::from(cfg.fs_slots));
    manifest.set_config("cbtb_strict", cfg.cbtb_strict);
    manifest.set_config("verify_equivalence", cfg.verify_equivalence);

    let registry = MetricsRegistry::new();
    for b in &suite.benches {
        manifest.push_benchmark(bench_record(b));
        b.stats.export(&registry, &format!("bench.{}.exec", b.name));
        for (scheme, stats) in [("sbtb", &b.sbtb), ("cbtb", &b.cbtb), ("fs", &b.fs)] {
            let prefix = format!("bench.{}.{scheme}", b.name);
            registry
                .counter(&format!("{prefix}.events"))
                .add(stats.events);
            registry
                .counter(&format!("{prefix}.correct"))
                .add(stats.correct);
            registry
                .counter(&format!("{prefix}.mispredicts"))
                .add(stats.events - stats.correct);
        }
        for phase in &b.phases {
            registry
                .counter(&format!("bench.{}.phase.{}.wall_us", b.name, phase.name))
                .add(phase.wall.as_micros().min(u128::from(u64::MAX)) as u64);
        }
    }
    manifest.write_to(dir, Some(&registry.snapshot()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_small_scale() {
        let o = Options::parse(Vec::new());
        assert_eq!(o.config.seed, 1989);
        assert!(matches!(o.config.scale, Scale::Small));
        assert!(o.telemetry_out.is_none());
        assert!(!o.config.collect_site_telemetry);
    }

    #[test]
    fn all_flags_parse() {
        let o = Options::parse(
            [
                "--scale",
                "test",
                "--seed",
                "7",
                "--csv",
                "--no-verify",
                "--telemetry-out",
                "/tmp/t",
            ]
            .map(String::from),
        );
        assert!(matches!(o.config.scale, Scale::Test));
        assert_eq!(o.config.seed, 7);
        assert_eq!(o.format, Format::Csv);
        assert!(!o.config.verify_equivalence);
        assert_eq!(
            o.telemetry_out.as_deref(),
            Some(std::path::Path::new("/tmp/t"))
        );
        assert!(
            o.config.collect_site_telemetry,
            "--telemetry-out enables site probes"
        );
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_rejected() {
        let _ = Options::parse(["--bogus".to_string()]);
    }

    #[test]
    fn render_selects_format() {
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]);
        let mut o = Options::parse(Vec::new());
        o.format = Format::Csv;
        assert!(o.render(&t).starts_with("a\n"));
        o.format = Format::Markdown;
        assert!(o.render(&t).contains("| a |"));
    }
}
