//! # branchlab-bench
//!
//! The benchmark harness: one binary per paper artifact —
//! `table1` … `table5`, `fig3`, `fig4`, an `ablation` binary for the
//! extension studies, and a `report` binary that regenerates everything
//! in one run (used to produce EXPERIMENTS.md). Std-only timing benches
//! (under `benches/`) cover the interpreter, the predictors, and the
//! Forward Semantic transform.
//!
//! Every binary accepts:
//!
//! * `--scale test|small|paper` (default `small`)
//! * `--seed N` (default 1989)
//! * `--markdown` / `--csv` output formats (default fixed-width text)
//! * `--telemetry-out DIR` — write a run manifest (`manifest.json`)
//!   plus metrics snapshots (`metrics.jsonl`, `metrics.prom`) with
//!   per-benchmark phase timings and per-site predictor counters
//! * `--trace-cache DIR` — persist captured branch traces on disk
//!   (hash-validated; stale or corrupt entries degrade to re-capture)
//! * `--no-trace-replay` — re-interpret every sweep point instead of
//!   replaying captured traces (the slow baseline)
//! * `--sweep-threads N` — score sweep points on N worker threads
//!   (default: `BRANCHLAB_SWEEP_THREADS`, else the machine's available
//!   parallelism); results are bit-identical at any thread count
//! * `--trace-out FILE` — write the run's per-benchmark phase
//!   timelines as Chrome trace-event JSON (open in Perfetto or
//!   `chrome://tracing`); off by default, so benchmark numbers are
//!   never perturbed by tracing

#![warn(missing_docs)]

use std::path::PathBuf;
use std::time::Duration;

use branchlab::experiments::{
    run_suite_supervised, BenchResult, ExperimentConfig, SuiteResult, SupervisorConfig, Table,
};
use branchlab::predict::PredStats;
use branchlab::telemetry::manifest::BenchmarkRecord;
use branchlab::telemetry::{JsonValue, MetricsRegistry, RunManifest};
use branchlab::workloads::Scale;

pub mod timing;

/// Sites listed in the manifest's per-predictor top-mispredicted table.
pub const MANIFEST_TOP_K_SITES: usize = 10;

/// Output format selected on the command line.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Format {
    /// Fixed-width text (default).
    Text,
    /// GitHub-flavored markdown.
    Markdown,
    /// Comma-separated values.
    Csv,
}

/// Parsed command-line options shared by all bench binaries.
#[derive(Clone, Debug)]
pub struct Options {
    /// Experiment configuration (scale, seed, fault injection, …).
    pub config: ExperimentConfig,
    /// Supervision policy (retries, watchdog, checkpoint/resume).
    pub supervisor: SupervisorConfig,
    /// Output format.
    pub format: Format,
    /// Directory for the run manifest and metrics snapshots; also turns
    /// on per-site predictor telemetry.
    pub telemetry_out: Option<PathBuf>,
    /// File for the run's Chrome trace-event export (phase timelines
    /// per benchmark; `None` disables the export).
    pub trace_out: Option<PathBuf>,
}

const USAGE: &str =
    "usage: [--scale test|small|paper] [--seed N] [--markdown|--csv] [--no-verify] \
[--telemetry-out DIR] [--trace-out FILE] [--trace-cache DIR] [--no-trace-replay] \
[--sweep-threads N] \
[--max-attempts N] \
[--backoff-ms N] [--watchdog-ms N] [--checkpoint FILE] [--resume] [--fault-exec-rate R] \
[--fault-panic-rate R] [--fault-delay-rate R] [--fault-delay-ms N] [--fault-seed N] \
[--fault-benches A,B,...]";

impl Options {
    /// Parse `std::env::args`.
    ///
    /// # Panics
    /// Panics with a usage message on unknown arguments.
    #[must_use]
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse an explicit argument list (everything after the binary
    /// name).
    ///
    /// # Panics
    /// Panics with a usage message on unknown arguments.
    #[must_use]
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut config = ExperimentConfig::default();
        let mut supervisor = SupervisorConfig::default();
        let mut format = Format::Text;
        let mut telemetry_out = None;
        let mut trace_out = None;
        let mut args = args.into_iter();
        let next_u64 = |args: &mut dyn Iterator<Item = String>, flag: &str| -> u64 {
            args.next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("{flag} needs an integer"))
        };
        let next_rate = |args: &mut dyn Iterator<Item = String>, flag: &str| -> f64 {
            let r: f64 = args
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("{flag} needs a rate in [0, 1]"));
            assert!((0.0..=1.0).contains(&r), "{flag} needs a rate in [0, 1]");
            r
        };
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args.next().unwrap_or_default();
                    config.scale = match v.as_str() {
                        "test" => Scale::Test,
                        "small" => Scale::Small,
                        "paper" => Scale::Paper,
                        other => panic!("unknown scale `{other}` (test|small|paper)"),
                    };
                }
                "--seed" => config.seed = next_u64(&mut args, "--seed"),
                "--markdown" => format = Format::Markdown,
                "--csv" => format = Format::Csv,
                "--no-verify" => config.verify_equivalence = false,
                "--telemetry-out" => {
                    let dir = args.next().expect("--telemetry-out needs a directory");
                    config.collect_site_telemetry = true;
                    telemetry_out = Some(PathBuf::from(dir));
                }
                "--trace-out" => {
                    let file = args.next().expect("--trace-out needs a file path");
                    trace_out = Some(PathBuf::from(file));
                }
                "--trace-cache" => {
                    let dir = args.next().expect("--trace-cache needs a directory");
                    config.trace_cache_dir = Some(PathBuf::from(dir));
                }
                "--no-trace-replay" => config.use_trace_replay = false,
                "--sweep-threads" => {
                    config.sweep_threads =
                        Some((next_u64(&mut args, "--sweep-threads") as usize).max(1));
                }
                "--max-attempts" => {
                    supervisor.max_attempts = next_u64(&mut args, "--max-attempts").max(1) as u32;
                }
                "--backoff-ms" => {
                    supervisor.backoff_base =
                        Duration::from_millis(next_u64(&mut args, "--backoff-ms"));
                }
                "--watchdog-ms" => {
                    supervisor.watchdog =
                        Some(Duration::from_millis(next_u64(&mut args, "--watchdog-ms")));
                }
                "--checkpoint" => {
                    let file = args.next().expect("--checkpoint needs a file path");
                    supervisor.checkpoint = Some(PathBuf::from(file));
                }
                "--resume" => supervisor.resume = true,
                "--fault-exec-rate" => {
                    config.fault.exec_error_rate = next_rate(&mut args, "--fault-exec-rate");
                }
                "--fault-panic-rate" => {
                    config.fault.panic_rate = next_rate(&mut args, "--fault-panic-rate");
                }
                "--fault-delay-rate" => {
                    config.fault.delay_rate = next_rate(&mut args, "--fault-delay-rate");
                }
                "--fault-delay-ms" => {
                    config.fault.delay =
                        Duration::from_millis(next_u64(&mut args, "--fault-delay-ms"));
                }
                "--fault-seed" => config.fault.seed = next_u64(&mut args, "--fault-seed"),
                "--fault-benches" => {
                    let list = args.next().expect("--fault-benches needs a comma list");
                    config.fault.benches =
                        list.split(',').map(str::trim).map(String::from).collect();
                }
                other => panic!("unknown argument `{other}`\n{USAGE}"),
            }
        }
        Options {
            config,
            supervisor,
            format,
            telemetry_out,
            trace_out,
        }
    }

    /// Render a table in the selected format.
    #[must_use]
    pub fn render(&self, table: &Table) -> String {
        match self.format {
            Format::Text => table.to_text(),
            Format::Markdown => table.to_markdown(),
            Format::Csv => table.to_csv(),
        }
    }
}

/// Process exit code for a suite with at least one failed benchmark.
pub const EXIT_PARTIAL: i32 = 1;

/// Run the full supervised suite with progress and failure diagnostics
/// to stderr. Never panics on benchmark failure: failed benches come
/// back as [`SuiteResult::failures`] records (check
/// [`SuiteResult::is_complete`], or let [`artifact_main`] turn them
/// into a non-zero exit).
#[must_use]
pub fn suite(options: &Options) -> SuiteResult {
    eprintln!(
        "running 12-benchmark suite (scale {:?}, seed {}) …",
        options.config.scale, options.config.seed
    );
    if options.config.fault.enabled() {
        eprintln!(
            "fault injection armed: exec {:.2} / panic {:.2} / delay {:.2} (seed {})",
            options.config.fault.exec_error_rate,
            options.config.fault.panic_rate,
            options.config.fault.delay_rate,
            options.config.fault.seed
        );
    }
    let start = std::time::Instant::now();
    let suite = run_suite_supervised(&options.config, &options.supervisor);
    let insts: u64 = suite.benches.iter().map(|b| b.stats.insts).sum();
    let sup = &suite.supervisor;
    eprintln!(
        "done in {:.1}s ({:.1}M dynamic instructions; {} completed, {} failed, {} resumed, {} retries)",
        start.elapsed().as_secs_f64(),
        insts as f64 / 1e6,
        sup.completed,
        sup.failed,
        sup.resumed,
        sup.retries,
    );
    for f in &suite.failures {
        eprintln!("  {f}");
    }
    suite
}

/// The shared main of every table/figure binary: parse the command
/// line, run the supervised suite, hand it to `emit` for rendering,
/// and — when `--telemetry-out` was given — write the run manifest and
/// metrics snapshots. Exits with [`EXIT_PARTIAL`] (after rendering the
/// partial tables and telemetry) when any benchmark failed.
///
/// # Panics
/// Panics on an unwritable telemetry directory (these binaries are
/// terminal tools); benchmark failures degrade instead of panicking.
pub fn artifact_main(tool: &str, emit: impl FnOnce(&Options, &SuiteResult)) {
    let options = Options::from_args();
    let suite = suite(&options);
    emit(&options, &suite);
    if let Some(dir) = &options.telemetry_out {
        let path = write_telemetry(tool, &options, &suite, dir)
            .unwrap_or_else(|e| panic!("writing telemetry to {} failed: {e}", dir.display()));
        eprintln!("telemetry manifest written to {}", path.display());
    }
    if let Some(path) = &options.trace_out {
        std::fs::write(path, suite_chrome_trace(tool, &suite).to_json_pretty())
            .unwrap_or_else(|e| panic!("writing Chrome trace to {} failed: {e}", path.display()));
        eprintln!("Chrome trace written to {}", path.display());
    }
    if !suite.is_complete() {
        eprintln!(
            "{tool}: partial results — {} of {} benchmarks failed",
            suite.failures.len(),
            suite.failures.len() + suite.benches.len()
        );
        std::process::exit(EXIT_PARTIAL);
    }
}

/// Render a suite run as a Chrome trace-event document: one process
/// row per benchmark (its compile/profile/evaluate phase timeline)
/// plus rows for the process-wide trace-replay and parallel-sweep
/// counters. Openable in Perfetto / `chrome://tracing`.
#[must_use]
pub fn suite_chrome_trace(tool: &str, suite: &SuiteResult) -> JsonValue {
    let mut groups: Vec<(String, Vec<branchlab::telemetry::PhaseSpan>)> = suite
        .benches
        .iter()
        .map(|b| (b.name.to_string(), b.phases.clone()))
        .collect();
    let trace_spans = branchlab::experiments::TraceStats::snapshot().phase_spans();
    if !trace_spans.is_empty() {
        groups.push(("suite: trace replay".to_string(), trace_spans));
    }
    let sweep_spans = branchlab::experiments::SweepStats::snapshot().phase_spans();
    if !sweep_spans.is_empty() {
        groups.push(("suite: parallel sweep".to_string(), sweep_spans));
    }
    branchlab::telemetry::phases_chrome_trace(tool, &groups)
}

/// Prediction scoring as a JSON object for the manifest.
fn pred_json(stats: &PredStats) -> JsonValue {
    JsonValue::obj(vec![
        ("events", stats.events.into()),
        ("correct", stats.correct.into()),
        ("accuracy", stats.accuracy().into()),
        ("btb_lookups", stats.btb_lookups.into()),
        ("btb_misses", stats.btb_misses.into()),
        ("miss_ratio", stats.miss_ratio().into()),
    ])
}

/// Scoring plus per-site counters for one BTB scheme.
fn btb_json(stats: &PredStats, sites: &branchlab::telemetry::SiteProbe) -> JsonValue {
    JsonValue::obj(vec![
        ("stats", pred_json(stats)),
        ("sites", sites.to_json_value(MANIFEST_TOP_K_SITES)),
    ])
}

/// One benchmark's manifest record: phase spans plus per-predictor
/// summaries.
fn bench_record(b: &BenchResult) -> BenchmarkRecord {
    BenchmarkRecord {
        name: b.name.to_string(),
        phases: b.phases.clone(),
        predictors: vec![
            ("sbtb".into(), btb_json(&b.sbtb, &b.sbtb_sites)),
            ("cbtb".into(), btb_json(&b.cbtb, &b.cbtb_sites)),
            ("fs".into(), pred_json(&b.fs)),
            ("always_taken".into(), pred_json(&b.always_taken)),
            ("always_not_taken".into(), pred_json(&b.always_not_taken)),
            ("btfn".into(), pred_json(&b.btfn)),
        ],
    }
}

/// Write `manifest.json`, `metrics.jsonl`, and `metrics.prom` for a
/// suite run under `dir`. Returns the manifest path.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_telemetry(
    tool: &str,
    options: &Options,
    suite: &SuiteResult,
    dir: &std::path::Path,
) -> std::io::Result<PathBuf> {
    let mut manifest = RunManifest::new(tool);
    let cfg = &options.config;
    manifest.set_config("scale", format!("{:?}", cfg.scale).to_lowercase().as_str());
    manifest.set_config("seed", cfg.seed);
    manifest.set_config("fs_slots", u64::from(cfg.fs_slots));
    manifest.set_config("cbtb_strict", cfg.cbtb_strict);
    manifest.set_config("verify_equivalence", cfg.verify_equivalence);
    if cfg.fault.enabled() {
        manifest.set_config("fault_seed", cfg.fault.seed);
        manifest.set_config("fault_exec_rate", cfg.fault.exec_error_rate);
        manifest.set_config("fault_panic_rate", cfg.fault.panic_rate);
        manifest.set_config("fault_delay_rate", cfg.fault.delay_rate);
    }
    manifest.set_config("max_attempts", u64::from(options.supervisor.max_attempts));

    let registry = MetricsRegistry::new();
    for (name, value) in suite.supervisor.counters() {
        registry.counter(&format!("suite.{name}")).add(value);
    }
    let trace = branchlab::experiments::TraceStats::snapshot();
    trace.export(&registry);
    manifest.set_section("trace", trace.to_json_value());
    let sweep = branchlab::experiments::SweepStats::snapshot();
    sweep.export(&registry);
    let mut sweep_json = sweep.to_json_value();
    if let JsonValue::Obj(fields) = &mut sweep_json {
        fields.push((
            "configured_threads".to_string(),
            JsonValue::from(cfg.resolved_sweep_threads() as u64),
        ));
    }
    manifest.set_section("sweep_parallel", sweep_json);
    for span in sweep.phase_spans() {
        registry
            .counter(&format!("suite.sweep.parallel.phase.{}.wall_us", span.name))
            .add(span.wall.as_micros().min(u128::from(u64::MAX)) as u64);
    }
    let lanes = branchlab::experiments::LaneStats::snapshot();
    lanes.export(&registry);
    manifest.set_section("sweep_lanes", lanes.to_json_value());
    manifest.set_section(
        "supervisor",
        JsonValue::Obj(
            suite
                .supervisor
                .counters()
                .iter()
                .map(|(k, v)| ((*k).to_string(), JsonValue::from(*v)))
                .collect(),
        ),
    );
    manifest.set_section(
        "failures",
        JsonValue::Arr(
            suite
                .failures
                .iter()
                .map(|f| {
                    JsonValue::obj(vec![
                        ("bench", f.name.as_str().into()),
                        ("error", f.error.as_str().into()),
                        ("class", f.class.to_string().into()),
                        ("attempts", u64::from(f.attempts).into()),
                        ("elapsed_ms", (f.elapsed.as_millis() as u64).into()),
                    ])
                })
                .collect(),
        ),
    );
    for f in &suite.failures {
        registry.counter(&format!("bench.{}.failed", f.name)).inc();
        registry
            .counter(&format!("bench.{}.attempts", f.name))
            .add(u64::from(f.attempts));
    }
    for b in &suite.benches {
        manifest.push_benchmark(bench_record(b));
        b.stats.export(&registry, &format!("bench.{}.exec", b.name));
        for (scheme, stats) in [("sbtb", &b.sbtb), ("cbtb", &b.cbtb), ("fs", &b.fs)] {
            let prefix = format!("bench.{}.{scheme}", b.name);
            registry
                .counter(&format!("{prefix}.events"))
                .add(stats.events);
            registry
                .counter(&format!("{prefix}.correct"))
                .add(stats.correct);
            registry
                .counter(&format!("{prefix}.mispredicts"))
                .add(stats.events - stats.correct);
        }
        for phase in &b.phases {
            registry
                .counter(&format!("bench.{}.phase.{}.wall_us", b.name, phase.name))
                .add(phase.wall.as_micros().min(u128::from(u64::MAX)) as u64);
        }
    }
    manifest.write_to(dir, Some(&registry.snapshot()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_small_scale() {
        let o = Options::parse(Vec::new());
        assert_eq!(o.config.seed, 1989);
        assert!(matches!(o.config.scale, Scale::Small));
        assert!(o.telemetry_out.is_none());
        assert!(!o.config.collect_site_telemetry);
        assert!(!o.config.fault.enabled());
        assert_eq!(o.supervisor, SupervisorConfig::default());
    }

    #[test]
    fn supervisor_and_fault_flags_parse() {
        let o = Options::parse(
            [
                "--max-attempts",
                "5",
                "--backoff-ms",
                "7",
                "--watchdog-ms",
                "250",
                "--checkpoint",
                "/tmp/ck.jsonl",
                "--resume",
                "--fault-exec-rate",
                "0.25",
                "--fault-panic-rate",
                "0.5",
                "--fault-delay-rate",
                "1.0",
                "--fault-delay-ms",
                "9",
                "--fault-seed",
                "77",
                "--fault-benches",
                "wc, grep",
            ]
            .map(String::from),
        );
        assert_eq!(o.supervisor.max_attempts, 5);
        assert_eq!(o.supervisor.backoff_base, Duration::from_millis(7));
        assert_eq!(o.supervisor.watchdog, Some(Duration::from_millis(250)));
        assert_eq!(
            o.supervisor.checkpoint.as_deref(),
            Some(std::path::Path::new("/tmp/ck.jsonl"))
        );
        assert!(o.supervisor.resume);
        let fault = &o.config.fault;
        assert!(fault.enabled());
        assert_eq!(fault.exec_error_rate, 0.25);
        assert_eq!(fault.panic_rate, 0.5);
        assert_eq!(fault.delay_rate, 1.0);
        assert_eq!(fault.delay, Duration::from_millis(9));
        assert_eq!(fault.seed, 77);
        assert_eq!(fault.benches, vec!["wc".to_string(), "grep".to_string()]);
    }

    #[test]
    #[should_panic(expected = "rate in [0, 1]")]
    fn out_of_range_rates_rejected() {
        let _ = Options::parse(["--fault-exec-rate".to_string(), "1.5".to_string()]);
    }

    #[test]
    fn all_flags_parse() {
        let o = Options::parse(
            [
                "--scale",
                "test",
                "--seed",
                "7",
                "--csv",
                "--no-verify",
                "--telemetry-out",
                "/tmp/t",
            ]
            .map(String::from),
        );
        assert!(matches!(o.config.scale, Scale::Test));
        assert_eq!(o.config.seed, 7);
        assert_eq!(o.format, Format::Csv);
        assert!(!o.config.verify_equivalence);
        assert_eq!(
            o.telemetry_out.as_deref(),
            Some(std::path::Path::new("/tmp/t"))
        );
        assert!(
            o.config.collect_site_telemetry,
            "--telemetry-out enables site probes"
        );
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_rejected() {
        let _ = Options::parse(["--bogus".to_string()]);
    }

    #[test]
    fn sweep_threads_flag_parses_and_clamps() {
        let o = Options::parse(Vec::new());
        assert!(
            o.config.sweep_threads.is_none(),
            "default defers to env/cores"
        );
        let o = Options::parse(["--sweep-threads", "6"].map(String::from));
        assert_eq!(o.config.sweep_threads, Some(6));
        assert_eq!(o.config.resolved_sweep_threads(), 6);
        let o = Options::parse(["--sweep-threads", "0"].map(String::from));
        assert_eq!(o.config.sweep_threads, Some(1), "0 clamps to serial");
    }

    #[test]
    fn trace_flags_parse() {
        let o = Options::parse(Vec::new());
        assert!(o.config.use_trace_replay, "replay is the default");
        assert!(o.config.trace_cache_dir.is_none());
        let o =
            Options::parse(["--trace-cache", "/tmp/traces", "--no-trace-replay"].map(String::from));
        assert!(!o.config.use_trace_replay);
        assert_eq!(
            o.config.trace_cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/traces"))
        );
    }

    #[test]
    fn trace_out_flag_parses_and_defaults_off() {
        let o = Options::parse(Vec::new());
        assert!(o.trace_out.is_none(), "tracing export is opt-in");
        let o = Options::parse(["--trace-out", "/tmp/run.trace.json"].map(String::from));
        assert_eq!(
            o.trace_out.as_deref(),
            Some(std::path::Path::new("/tmp/run.trace.json"))
        );
    }

    #[test]
    fn render_selects_format() {
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]);
        let mut o = Options::parse(Vec::new());
        o.format = Format::Csv;
        assert!(o.render(&t).starts_with("a\n"));
        o.format = Format::Markdown;
        assert!(o.render(&t).contains("| a |"));
    }
}
