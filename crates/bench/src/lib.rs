//! # branchlab-bench
//!
//! The benchmark harness: one binary per paper artifact —
//! `table1` … `table5`, `fig3`, `fig4`, an `ablation` binary for the
//! extension studies, and a `report` binary that regenerates everything
//! in one run (used to produce EXPERIMENTS.md). Criterion benches cover
//! the interpreter, the predictors, and the Forward Semantic transform.
//!
//! Every binary accepts:
//!
//! * `--scale test|small|paper` (default `small`)
//! * `--seed N` (default 1989)
//! * `--markdown` / `--csv` output formats (default fixed-width text)

#![warn(missing_docs)]

use branchlab::experiments::{run_suite, ExperimentConfig, SuiteResult, Table};
use branchlab::workloads::Scale;

/// Output format selected on the command line.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Format {
    /// Fixed-width text (default).
    Text,
    /// GitHub-flavored markdown.
    Markdown,
    /// Comma-separated values.
    Csv,
}

/// Parsed command-line options shared by all bench binaries.
#[derive(Clone, Debug)]
pub struct Options {
    /// Experiment configuration (scale, seed, …).
    pub config: ExperimentConfig,
    /// Output format.
    pub format: Format,
}

impl Options {
    /// Parse `std::env::args`.
    ///
    /// # Panics
    /// Panics with a usage message on unknown arguments.
    #[must_use]
    pub fn from_args() -> Self {
        let mut config = ExperimentConfig::default();
        let mut format = Format::Text;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args.next().unwrap_or_default();
                    config.scale = match v.as_str() {
                        "test" => Scale::Test,
                        "small" => Scale::Small,
                        "paper" => Scale::Paper,
                        other => panic!("unknown scale `{other}` (test|small|paper)"),
                    };
                }
                "--seed" => {
                    config.seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--markdown" => format = Format::Markdown,
                "--csv" => format = Format::Csv,
                "--no-verify" => config.verify_equivalence = false,
                other => panic!(
                    "unknown argument `{other}`\nusage: [--scale test|small|paper] [--seed N] [--markdown|--csv] [--no-verify]"
                ),
            }
        }
        Options { config, format }
    }

    /// Render a table in the selected format.
    #[must_use]
    pub fn render(&self, table: &Table) -> String {
        match self.format {
            Format::Text => table.to_text(),
            Format::Markdown => table.to_markdown(),
            Format::Csv => table.to_csv(),
        }
    }
}

/// Run the full suite with progress to stderr.
///
/// # Panics
/// Panics (with the failing benchmark's error) if the pipeline fails —
/// these binaries are terminal tools.
#[must_use]
pub fn suite(options: &Options) -> SuiteResult {
    eprintln!(
        "running 12-benchmark suite (scale {:?}, seed {}) …",
        options.config.scale, options.config.seed
    );
    let start = std::time::Instant::now();
    let suite = run_suite(&options.config).unwrap_or_else(|e| panic!("suite failed: {e}"));
    let insts: u64 = suite.benches.iter().map(|b| b.stats.insts).sum();
    eprintln!(
        "done in {:.1}s ({:.1}M dynamic instructions)",
        start.elapsed().as_secs_f64(),
        insts as f64 / 1e6
    );
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_small_scale() {
        let o = Options { config: ExperimentConfig::default(), format: Format::Text };
        assert_eq!(o.config.seed, 1989);
        assert!(matches!(o.config.scale, Scale::Small));
    }

    #[test]
    fn render_selects_format() {
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]);
        let mut o = Options { config: ExperimentConfig::default(), format: Format::Csv };
        assert!(o.render(&t).starts_with("a\n"));
        o.format = Format::Markdown;
        assert!(o.render(&t).contains("| a |"));
    }
}
