//! A minimal HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! Just enough of the protocol for `branchlabd`: request-line +
//! header parsing, `Content-Length` bodies, keep-alive with explicit
//! `Connection: close`, and response serialization. No chunked
//! encoding, no TLS, no HTTP/2 — the daemon speaks plain JSON over
//! plain sockets so the whole stack stays `std`-only.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Largest accepted header block (request line + headers).
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Largest accepted request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Once the first byte of a request has arrived, the rest of it must
/// arrive within this budget.
const PARTIAL_REQUEST_DEADLINE: Duration = Duration::from_secs(5);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path with any query string stripped.
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Did the client ask to drop the connection after this exchange?
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why [`read_request`] returned without a request.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request was parsed.
    Request(Request),
    /// The read timed out with no partial request buffered — the
    /// connection is idle; the caller decides whether to keep waiting.
    Idle,
    /// The peer closed the connection cleanly between requests.
    Closed,
}

/// A request-level protocol error (the connection should be dropped
/// after a 400).
#[derive(Debug)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Read one request from `stream`, carrying leftover bytes between
/// calls in `buf` (keep-alive clients may pipeline).
///
/// The stream's read timeout bounds each `read` call; a timeout while
/// nothing is buffered reports [`ReadOutcome::Idle`] so the caller can
/// poll its shutdown flag, while a timeout mid-request keeps reading
/// until `PARTIAL_REQUEST_DEADLINE` elapses.
///
/// # Errors
/// `Ok(Err(ProtocolError))` for malformed or oversized requests (the
/// caller should answer 400 and close); `Err` for transport errors.
pub fn read_request(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
) -> io::Result<Result<ReadOutcome, ProtocolError>> {
    let mut partial_since: Option<Instant> = None;
    loop {
        if let Some(end) = header_end(buf) {
            return parse_request(stream, buf, end);
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Ok(Err(ProtocolError("header block too large".into())));
        }
        if let Some(t0) = partial_since {
            if t0.elapsed() > PARTIAL_REQUEST_DEADLINE {
                return Ok(Err(ProtocolError("partial request timed out".into())));
            }
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Ok(Ok(ReadOutcome::Closed))
                } else {
                    Ok(Err(ProtocolError("connection closed mid-request".into())))
                };
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                partial_since.get_or_insert_with(Instant::now);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if buf.is_empty() {
                    return Ok(Ok(ReadOutcome::Idle));
                }
                partial_since.get_or_insert_with(Instant::now);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Offset just past the `\r\n\r\n` terminating the header block.
fn header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Parse the buffered header block, then read the body to completion.
fn parse_request(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    header_len: usize,
) -> io::Result<Result<ReadOutcome, ProtocolError>> {
    let head = match std::str::from_utf8(&buf[..header_len - 4]) {
        Ok(h) => h.to_string(),
        Err(_) => return Ok(Err(ProtocolError("non-UTF-8 header block".into()))),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = (
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
    );
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Ok(Err(ProtocolError(format!(
            "malformed request line `{request_line}`"
        ))));
    }
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Ok(Err(ProtocolError(format!("malformed header `{line}`"))));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0usize,
        Some((_, v)) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Ok(Err(ProtocolError("bad Content-Length".into()))),
        },
    };
    if content_length > MAX_BODY_BYTES {
        return Ok(Err(ProtocolError(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        ))));
    }

    let deadline = Instant::now() + PARTIAL_REQUEST_DEADLINE;
    while buf.len() < header_len + content_length {
        if Instant::now() > deadline {
            return Ok(Err(ProtocolError("body read timed out".into())));
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(Err(ProtocolError("connection closed mid-body".into()))),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }

    let body = buf[header_len..header_len + content_length].to_vec();
    buf.drain(..header_len + content_length);
    Ok(Ok(ReadOutcome::Request(Request {
        method: method.to_string(),
        path: target.split('?').next().unwrap_or(target).to_string(),
        headers,
        body,
    })))
}

/// A response under construction.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers beyond the standard set.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    #[must_use]
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Add one header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// The standard reason phrase for this status.
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }
}

/// Serialize `resp` onto the stream; `close` adds `Connection: close`.
///
/// # Errors
/// Propagates transport errors.
pub fn write_response(stream: &mut TcpStream, resp: &Response, close: bool) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        resp.reason(),
        resp.content_type,
        resp.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}
