//! `branchlab-server` — a `std`-only evaluation daemon for predictor
//! sweeps.
//!
//! `branchlabd` keeps every suite benchmark's branch trace resident in
//! memory and answers predictor-evaluation requests over plain
//! HTTP/1.1 + JSON, so a sweep that would cost a full
//! capture-compile-execute pipeline from a cold start instead costs a
//! single replay pass over an in-memory trace — and repeated or
//! concurrent identical requests cost even less:
//!
//! - **Batching**: one request carries many predictor configurations
//!   and RAS depths; they are planned into one
//!   [`SweepBatch`](branchlab_experiments::SweepBatch) and scored in a
//!   single replay pass.
//! - **Coalescing**: concurrent requests with the same canonical
//!   identity share one computation — followers block on the leader's
//!   slot instead of replaying again.
//! - **Caching**: rendered responses land in an LRU keyed by
//!   `(bench, program hash, scale, seed, predictor configs, ras)`.
//! - **Backpressure**: the worker queue is bounded; when it is full
//!   the daemon sheds load with `503` + `Retry-After` instead of
//!   queueing without bound, and every request carries a deadline
//!   (`504` when it expires).
//! - **Observability**: `GET /metrics` serves Prometheus text from
//!   the in-process [`MetricsRegistry`], including queue depth and
//!   wait, coalesce/cache hit counters, and request-latency
//!   histograms. Every request is stamped with a trace id (client
//!   supplied via `X-Branchlab-Trace-Id`, or assigned) and recorded
//!   as a hierarchical span tree in a bounded
//!   [`FlightRecorder`]:
//!   `GET /debug/traces` lists recent traces, `GET /debug/traces/<id>`
//!   returns one full span tree, `GET /debug/slow` ranks the slowest,
//!   and requests over [`ServerConfig::slow_ms`] are logged as JSONL.
//!   `branchlabd --trace-out` exports the recorder as Chrome
//!   trace-event JSON (openable in Perfetto) at shutdown.
//!
//! Responses are deterministic down to the byte: computed, coalesced,
//! and cached answers are indistinguishable on the wire (provenance
//! travels in the `X-Branchlab-Source` header).
//!
//! ```text
//!            POST /v1/sweep
//!                 │
//!        parse → canonical key
//!                 │
//!        ┌── LRU cache hit? ──► 200 (source: cache)
//!        │
//!        ├── identical sweep in flight? ──► wait on its slot
//!        │                                  (source: coalesced)
//!        └── leader: try_submit ──► worker pool ──► SweepBatch
//!                 │                                  │
//!              queue full                      render + cache
//!                 │                                  │
//!           503 + Retry-After              200 (source: computed)
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod lru;
pub mod metrics;
pub mod pool;

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use branchlab_experiments::trace_replay::{captured_runs, TraceStats};
use branchlab_experiments::{ExperimentConfig, SweepStats};
use branchlab_telemetry::{
    FlightRecorder, JsonValue, MetricsRegistry, SpanHandle, SpanLink, TraceContext, TraceId,
};
use branchlab_workloads::{benchmark, Scale, SUITE};

use api::{ApiError, SweepRequest};
use http::{read_request, write_response, ProtocolError, ReadOutcome, Request, Response};
use lru::LruCache;
use metrics::ServerMetrics;
use pool::{SubmitError, WorkerPool};

/// How the daemon is wired together.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Sweep worker threads.
    pub workers: usize,
    /// Most sweeps queued awaiting a worker before load is shed.
    pub queue_cap: usize,
    /// LRU result-cache capacity (entries; 0 disables).
    pub cache_cap: usize,
    /// Default per-request deadline (clients may shorten it with
    /// `deadline_ms`).
    pub default_deadline: Duration,
    /// How long shutdown waits for open connections to finish.
    pub drain_timeout: Duration,
    /// Base experiment configuration; per-request `scale` / `seed`
    /// override its respective fields.
    pub experiment: ExperimentConfig,
    /// Benchmarks to make resident at startup (empty = whole suite).
    pub warm_benches: Vec<String>,
    /// Completed request traces retained by the flight recorder
    /// (served by `/debug/traces` and exported by `--trace-out`).
    pub flight_recorder_cap: usize,
    /// Log requests slower than this many milliseconds as structured
    /// JSONL (`None` disables the slow log).
    pub slow_ms: Option<u64>,
    /// Where the slow-request JSONL goes (`None` = stderr).
    pub slow_log: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8787".to_string(),
            workers: 2,
            queue_cap: 32,
            cache_cap: 256,
            default_deadline: Duration::from_secs(60),
            drain_timeout: Duration::from_secs(10),
            // Workers provide the parallelism; each sweep replays
            // serially so concurrent requests don't oversubscribe.
            experiment: ExperimentConfig {
                sweep_threads: Some(1),
                ..ExperimentConfig::test()
            },
            warm_benches: Vec::new(),
            flight_recorder_cap: 256,
            slow_ms: None,
            slow_log: None,
        }
    }
}

/// One in-flight computation that concurrent identical requests
/// rendezvous on. The leader fills it exactly once; followers wait
/// with a deadline.
struct Slot {
    state: Mutex<Option<Result<Arc<str>, ApiError>>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Slot {
            state: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn fill(&self, result: Result<Arc<str>, ApiError>) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.is_none() {
            *state = Some(result);
        }
        drop(state);
        self.cv.notify_all();
    }

    /// Wait for the result until `deadline`; `None` means it expired.
    fn wait_until(&self, deadline: Instant) -> Option<Result<Arc<str>, ApiError>> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(result) = state.as_ref() {
                return Some(result.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = guard;
        }
    }
}

/// Warm-residency info for one benchmark, reported by
/// `GET /v1/benchmarks`.
#[derive(Clone, Copy, Debug)]
struct WarmInfo {
    runs: usize,
    events: u64,
    bytes: usize,
}

/// Everything the connection handlers share.
struct State {
    config: ServerConfig,
    metrics: ServerMetrics,
    pool: WorkerPool,
    cache: Mutex<LruCache>,
    inflight: Mutex<HashMap<String, Arc<Slot>>>,
    warm: Mutex<BTreeMap<&'static str, WarmInfo>>,
    recorder: FlightRecorder,
    slow_log: Option<Mutex<std::fs::File>>,
    ready: AtomicBool,
    shutdown: AtomicBool,
}

/// The running daemon. Dropping the handle does **not** stop it; call
/// [`ServerHandle::shutdown_and_join`].
pub struct ServerHandle {
    state: Arc<State>,
    addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

/// The daemon's entry point.
pub struct Server;

impl Server {
    /// Bind, start the warmup pass and the accept loop, and return a
    /// handle to the running daemon.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let registry = Arc::new(MetricsRegistry::new());
        let metrics = ServerMetrics::new(registry);
        let pool = WorkerPool::new(
            config.workers,
            config.queue_cap,
            Arc::clone(&metrics.queue_depth),
        );
        let slow_log = match &config.slow_log {
            Some(path) => Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )),
            None => None,
        };
        let state = Arc::new(State {
            metrics,
            pool,
            cache: Mutex::new(LruCache::new(config.cache_cap)),
            inflight: Mutex::new(HashMap::new()),
            warm: Mutex::new(BTreeMap::new()),
            recorder: FlightRecorder::new(config.flight_recorder_cap),
            slow_log,
            ready: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            config,
        });

        let warm_state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("bld-warmup".to_string())
            .spawn(move || warmup(&warm_state))
            .expect("spawn warmup thread");

        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::Builder::new()
            .name("bld-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_state))
            .expect("spawn accept thread");

        Ok(ServerHandle {
            state,
            addr,
            accept_thread: Some(accept_thread),
        })
    }
}

impl ServerHandle {
    /// The bound listen address (useful with an ephemeral port).
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Has the warmup pass finished?
    #[must_use]
    pub fn is_ready(&self) -> bool {
        self.state.ready.load(Ordering::SeqCst)
    }

    /// Signal shutdown: stop accepting, drain open connections and
    /// queued sweeps, then stop the workers.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Block until the accept loop (and with it the drain) finishes.
    pub fn join(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// [`shutdown`](Self::shutdown) then [`join`](Self::join).
    pub fn shutdown_and_join(&mut self) {
        self.shutdown();
        self.join();
    }

    /// Total request traces recorded by the flight recorder.
    #[must_use]
    pub fn traces_recorded(&self) -> u64 {
        self.state.recorder.recorded()
    }

    /// Every trace currently in the flight recorder, rendered as a
    /// Chrome trace-event JSON document (what `branchlabd --trace-out`
    /// writes at shutdown; open it in Perfetto or `chrome://tracing`).
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        branchlab_telemetry::chrome_trace(&self.state.recorder.recent()).to_json_pretty()
    }
}

/// Make every configured benchmark's trace resident, then mark ready.
fn warmup(state: &State) {
    let names: Vec<&'static str> = if state.config.warm_benches.is_empty() {
        SUITE.iter().map(|b| b.name).collect()
    } else {
        state
            .config
            .warm_benches
            .iter()
            .filter_map(|n| benchmark(n).map(|b| b.name))
            .collect()
    };
    for name in names {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Some(bench) = benchmark(name) else {
            continue;
        };
        match captured_runs(bench, &state.config.experiment) {
            Ok(traces) => {
                let info = WarmInfo {
                    runs: traces.len(),
                    events: traces.iter().map(branchlab_trace::TraceBuf::events).sum(),
                    bytes: traces.iter().map(branchlab_trace::TraceBuf::byte_len).sum(),
                };
                state.metrics.warm_benches.inc();
                state.metrics.warm_events.add(info.events);
                state
                    .warm
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .insert(bench.name, info);
            }
            Err(e) => {
                // A bench that fails to warm stays cold; requests for
                // it will surface the error per-sweep.
                eprintln!("branchlabd: warmup of `{name}` failed: {e}");
            }
        }
    }
    state.ready.store(true, Ordering::SeqCst);
    state.metrics.ready.set(1);
}

/// Poll-accept connections until shutdown, then drain.
fn accept_loop(listener: &TcpListener, state: &Arc<State>) {
    while !state.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                state.metrics.connections_total.inc();
                state.metrics.connections_active.add(1);
                let conn_state = Arc::clone(state);
                let _ = std::thread::Builder::new()
                    .name("bld-conn".to_string())
                    .spawn(move || {
                        handle_connection(stream, &conn_state);
                        conn_state.metrics.connections_active.add(-1);
                    });
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    // Drain: wait for open connections to finish their in-flight
    // exchanges (handlers see the shutdown flag and close), then stop
    // the workers — the pool itself drains every admitted job.
    let deadline = Instant::now() + state.config.drain_timeout;
    while state.metrics.connections_active.get() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    state.pool.shutdown();
}

/// Serve one connection until it closes, errors, or shutdown.
fn handle_connection(mut stream: TcpStream, state: &Arc<State>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_nodelay(true);
    let mut buf = Vec::new();
    loop {
        let outcome = match read_request(&mut stream, &mut buf) {
            Ok(outcome) => outcome,
            Err(_) => return,
        };
        let request = match outcome {
            Ok(ReadOutcome::Request(request)) => request,
            Ok(ReadOutcome::Idle) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Ok(ReadOutcome::Closed) => return,
            Err(ProtocolError(message)) => {
                // Malformed framing: no headers to take a client id
                // from, so assign one — the 400 still correlates with
                // a server-side trace.
                let ctx = TraceContext::new();
                ctx.set_label("<protocol error>");
                let resp = error_response(&ApiError::BadRequest(message))
                    .with_header("X-Branchlab-Trace-Id", &ctx.id().to_string());
                state.metrics.count_response(resp.status);
                finish_request_trace(state, &ctx, resp.status);
                let _ = write_response(&mut stream, &resp, true);
                return;
            }
        };
        let ctx = request
            .header("x-branchlab-trace-id")
            .and_then(TraceId::parse)
            .map_or_else(TraceContext::new, TraceContext::with_id);
        ctx.set_label(&format!("{} {}", request.method, request.path));
        let close = request.wants_close() || state.shutdown.load(Ordering::SeqCst);
        let response =
            route(state, &request, &ctx).with_header("X-Branchlab-Trace-Id", &ctx.id().to_string());
        state.metrics.count_response(response.status);
        finish_request_trace(state, &ctx, response.status);
        if write_response(&mut stream, &response, close).is_err() || close {
            return;
        }
    }
}

/// Snapshot a request's spans into the flight recorder and, past the
/// configured threshold, the structured slow log.
fn finish_request_trace(state: &State, ctx: &TraceContext, status: u16) {
    let trace = ctx.finish();
    if let Some(slow_ms) = state.config.slow_ms {
        if trace.total_us >= slow_ms.saturating_mul(1_000) {
            state.metrics.slow_requests.inc();
            log_slow_request(state, &trace, status);
        }
    }
    state.recorder.record(trace);
}

/// One JSONL line per slow request: identity, status, total, and the
/// per-span latency decomposition.
fn log_slow_request(state: &State, trace: &branchlab_telemetry::RequestTrace, status: u16) {
    use std::io::Write;
    let spans = trace
        .spans
        .iter()
        .map(|s| {
            JsonValue::obj(vec![
                ("name", s.name.as_str().into()),
                ("dur_us", s.dur_us.into()),
                ("work", s.work.into()),
            ])
        })
        .collect();
    let line = JsonValue::obj(vec![
        ("ts_us", trace.wall_start_us.into()),
        ("trace_id", trace.id.to_string().into()),
        ("label", trace.label.as_str().into()),
        ("status", u64::from(status).into()),
        ("total_us", trace.total_us.into()),
        ("spans", JsonValue::Arr(spans)),
    ])
    .to_json();
    match &state.slow_log {
        Some(file) => {
            let mut f = file
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let _ = writeln!(f, "{line}");
        }
        None => eprintln!("branchlabd: slow request: {line}"),
    }
}

fn error_response(err: &ApiError) -> Response {
    let body = JsonValue::obj(vec![("error", err.message().into())]).to_json();
    let resp = Response::json(err.status(), body);
    if matches!(err, ApiError::Overloaded) {
        resp.with_header("Retry-After", "1")
    } else {
        resp
    }
}

/// Dispatch one parsed request under a root `request` span.
fn route(state: &Arc<State>, request: &Request, ctx: &TraceContext) -> Response {
    state.metrics.requests.inc();
    let mut root = ctx.root("request");
    let response = match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/sweep") => handle_sweep(state, request, &root),
        ("GET", "/v1/benchmarks") => handle_benchmarks(state),
        ("GET", "/healthz") => Response::text(200, "ok\n".to_string()),
        ("GET", "/readyz") => {
            if state.ready.load(Ordering::SeqCst) {
                Response::text(200, "ready\n".to_string())
            } else {
                Response::text(503, "warming\n".to_string())
            }
        }
        ("GET", "/metrics") => Response::text(200, render_metrics(state)),
        ("GET", "/debug/traces") => handle_debug_traces(state),
        ("GET", "/debug/slow") => handle_debug_slow(state),
        ("GET", path) if path.starts_with("/debug/traces/") => {
            handle_debug_trace(state, &path["/debug/traces/".len()..])
        }
        (
            _,
            "/v1/sweep" | "/v1/benchmarks" | "/healthz" | "/readyz" | "/metrics" | "/debug/traces"
            | "/debug/slow",
        ) => Response::json(
            405,
            JsonValue::obj(vec![("error", "method not allowed".into())]).to_json(),
        ),
        _ => Response::json(
            404,
            JsonValue::obj(vec![("error", "no such endpoint".into())]).to_json(),
        ),
    };
    root.arg("status", u64::from(response.status));
    response
}

/// `GET /debug/traces`: flight-recorder summaries, newest first.
fn handle_debug_traces(state: &Arc<State>) -> Response {
    let recent = state.recorder.recent();
    let body = JsonValue::obj(vec![
        ("capacity", state.recorder.capacity().into()),
        ("recorded", state.recorder.recorded().into()),
        (
            "traces",
            JsonValue::Arr(recent.iter().map(|t| t.summary_json()).collect()),
        ),
    ]);
    Response::json(200, body.to_json())
}

/// `GET /debug/traces/<id>`: one retained trace's full span tree.
fn handle_debug_trace(state: &Arc<State>, id: &str) -> Response {
    match TraceId::parse(id).and_then(|id| state.recorder.find(id)) {
        Some(trace) => Response::json(200, trace.to_json_value().to_json()),
        None => Response::json(
            404,
            JsonValue::obj(vec![(
                "error",
                "no such trace (bad id, or evicted from the flight recorder)".into(),
            )])
            .to_json(),
        ),
    }
}

/// `GET /debug/slow`: the slowest retained traces, longest first.
fn handle_debug_slow(state: &Arc<State>) -> Response {
    const TOP_K: usize = 10;
    let slow = state.recorder.slowest(TOP_K);
    let body = JsonValue::obj(vec![
        ("k", TOP_K.into()),
        (
            "traces",
            JsonValue::Arr(slow.iter().map(|t| t.summary_json()).collect()),
        ),
    ]);
    Response::json(200, body.to_json())
}

/// The full `/v1/sweep` path: parse → cache → coalesce → compute.
fn handle_sweep(state: &Arc<State>, request: &Request, parent: &SpanHandle) -> Response {
    let started = Instant::now();
    state.metrics.sweep_requests.inc();
    let result = sweep_result(state, request, started, parent);
    state
        .metrics
        .latency_us
        .observe(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
    match result {
        Ok((body, source)) => {
            Response::json(200, body.to_string()).with_header("X-Branchlab-Source", source)
        }
        Err(err) => error_response(&err),
    }
}

fn sweep_result(
    state: &Arc<State>,
    request: &Request,
    started: Instant,
    parent: &SpanHandle,
) -> Result<(Arc<str>, &'static str), ApiError> {
    let req = {
        let _span = parent.child("parse");
        SweepRequest::parse(&request.body, &state.config.experiment)?
    };
    let deadline = started
        + req
            .deadline_ms
            .map_or(state.config.default_deadline, Duration::from_millis);
    let key = req.canonical_key();

    // 1. Result cache.
    let cached = {
        let mut span = parent.child("cache_lookup");
        let hit = state
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key);
        span.arg("hit", u64::from(hit.is_some()));
        hit
    };
    if let Some(body) = cached {
        state.metrics.cache_hits.inc();
        return Ok((body, "cache"));
    }
    state.metrics.cache_misses.inc();

    // 2. Coalesce onto an identical in-flight computation, or become
    //    the leader for this key.
    let (slot, leader) = {
        let mut span = parent.child("admission");
        let mut inflight = state
            .inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (slot, leader) = match inflight.get(&key) {
            Some(slot) => (Arc::clone(slot), false),
            None => {
                let slot = Slot::new();
                inflight.insert(key.clone(), Arc::clone(&slot));
                (Arc::clone(&slot), true)
            }
        };
        span.arg("leader", u64::from(leader));
        (slot, leader)
    };

    if leader {
        // The queue_wait span opens here on the connection thread and
        // closes inside the job at worker pickup — the accept-to-pickup
        // interval the `server.queue.wait_us` histogram observes.
        let queue_span = parent.child("queue_wait");
        let compute_link = parent.link();
        let job_state = Arc::clone(state);
        let job_slot = Arc::clone(&slot);
        let job_key = key.clone();
        let submitted = state.pool.try_submit(move || {
            job_state
                .metrics
                .queue_wait_us
                .observe(queue_span.elapsed_us());
            drop(queue_span);
            let result = if Instant::now() >= deadline {
                // Shed stale work cheaply: the client stopped waiting
                // before a worker ever picked this up.
                job_state.metrics.deadline_expired.inc();
                Err(ApiError::DeadlineExpired)
            } else {
                compute_sweep(&job_state, &req, &job_key, &compute_link)
            };
            job_state
                .inflight
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .remove(&job_key);
            job_slot.fill(result);
        });
        if let Err(err) = submitted {
            state
                .inflight
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .remove(&key);
            slot.fill(Err(ApiError::Overloaded));
            if err == SubmitError::QueueFull {
                state.metrics.queue_rejected.inc();
            }
            return Err(ApiError::Overloaded);
        }
    } else {
        state.metrics.coalesce_hits.inc();
    }

    // Followers spend their whole wait here; the leader's wait is
    // already decomposed by the queue_wait/compute spans its worker
    // records into this same trace.
    let _wait_span = (!leader).then(|| parent.child("coalesce_wait"));
    match slot.wait_until(deadline) {
        Some(Ok(body)) => Ok((body, if leader { "computed" } else { "coalesced" })),
        Some(Err(err)) => Err(err),
        None => {
            state.metrics.deadline_expired.inc();
            Err(ApiError::DeadlineExpired)
        }
    }
}

/// Run the sweep on a worker and publish the rendered body.
fn compute_sweep(
    state: &State,
    req: &SweepRequest,
    key: &str,
    parent: &SpanLink,
) -> Result<Arc<str>, ApiError> {
    let compute_span = parent.child("compute");
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        api::evaluate_traced(req, &state.config.experiment, Some(&compute_span.link()))
    }));
    drop(compute_span);
    let body = match outcome {
        Ok(result) => result?,
        Err(_) => return Err(ApiError::Internal("sweep worker panicked".to_string())),
    };
    state.metrics.sweeps_computed.inc();
    state
        .cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .put(key, Arc::clone(&body));
    Ok(body)
}

/// `GET /v1/benchmarks`: the suite, with warm-residency info.
fn handle_benchmarks(state: &Arc<State>) -> Response {
    let warm = state
        .warm
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    let benches = SUITE
        .iter()
        .map(|b| {
            let mut fields = vec![
                ("name", JsonValue::from(b.name)),
                ("input", b.input_description.into()),
                ("paper_runs", b.paper_runs.into()),
                ("source_lines", b.source_lines().into()),
                ("in_main_tables", b.in_main_tables.into()),
                ("resident", warm.contains_key(b.name).into()),
            ];
            if let Some(info) = warm.get(b.name) {
                fields.push(("trace_runs", info.runs.into()));
                fields.push(("trace_events", info.events.into()));
                fields.push(("trace_bytes", info.bytes.into()));
            }
            JsonValue::obj(fields)
        })
        .collect();
    let body = JsonValue::obj(vec![
        ("scale", scale_field(state)),
        ("seed", state.config.experiment.seed.into()),
        ("ready", state.ready.load(Ordering::SeqCst).into()),
        ("benchmarks", JsonValue::Arr(benches)),
    ]);
    Response::json(200, body.to_json())
}

fn scale_field(state: &Arc<State>) -> JsonValue {
    branchlab_experiments::trace_replay::scale_name(state.config.experiment.scale).into()
}

/// `GET /metrics`: the server registry merged with a fresh export of
/// the process-wide trace/sweep counters, as Prometheus text.
///
/// The trace and sweep stats are cumulative process counters, so they
/// are exported into a throwaway registry each scrape instead of being
/// re-added to the long-lived one (which would double-count).
fn render_metrics(state: &Arc<State>) -> String {
    let scratch = MetricsRegistry::new();
    TraceStats::snapshot().export(&scratch);
    SweepStats::snapshot().export(&scratch);
    let mut snap = state.metrics.registry.snapshot();
    snap.merge(&scratch.snapshot());
    snap.to_prometheus()
}

/// Convenience: run one request against a batch directly, bypassing
/// HTTP. Used by tools that want server-identical results in-process.
///
/// # Errors
/// Same failure modes as the server's compute path.
pub fn evaluate_direct(req: &SweepRequest, base: &ExperimentConfig) -> Result<Arc<str>, ApiError> {
    api::evaluate(req, base)
}

/// Parse a `--scale` argument (`test` / `small` / `paper`).
#[must_use]
pub fn parse_scale_arg(s: &str) -> Option<Scale> {
    match s {
        "test" => Some(Scale::Test),
        "small" => Some(Scale::Small),
        "paper" => Some(Scale::Paper),
        _ => None,
    }
}
