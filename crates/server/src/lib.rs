//! `branchlab-server` — a `std`-only evaluation daemon for predictor
//! sweeps.
//!
//! `branchlabd` keeps every suite benchmark's branch trace resident in
//! memory and answers predictor-evaluation requests over plain
//! HTTP/1.1 + JSON, so a sweep that would cost a full
//! capture-compile-execute pipeline from a cold start instead costs a
//! single replay pass over an in-memory trace — and repeated or
//! concurrent identical requests cost even less:
//!
//! - **Batching**: one request carries many predictor configurations
//!   and RAS depths; they are planned into one
//!   [`SweepBatch`](branchlab_experiments::SweepBatch) and scored in a
//!   single replay pass.
//! - **Coalescing**: concurrent requests with the same canonical
//!   identity share one computation — followers block on the leader's
//!   slot instead of replaying again.
//! - **Caching**: rendered responses land in an LRU keyed by
//!   `(bench, program hash, scale, seed, predictor configs, ras)`.
//! - **Backpressure**: the worker queue is bounded; when it is full
//!   the daemon sheds load with `503` + `Retry-After` instead of
//!   queueing without bound, and every request carries a deadline
//!   (`504` when it expires).
//! - **Observability**: `GET /metrics` serves Prometheus text from
//!   the in-process [`MetricsRegistry`], including queue depth and
//!   wait, coalesce/cache hit counters, and request-latency
//!   histograms. Every request is stamped with a trace id (client
//!   supplied via `X-Branchlab-Trace-Id`, or assigned) and recorded
//!   as a hierarchical span tree in a bounded
//!   [`FlightRecorder`]:
//!   `GET /debug/traces` lists recent traces, `GET /debug/traces/<id>`
//!   returns one full span tree, `GET /debug/slow` ranks the slowest,
//!   and requests over [`ServerConfig::slow_ms`] are logged as JSONL.
//!   `branchlabd --trace-out` exports the recorder as Chrome
//!   trace-event JSON (openable in Perfetto) at shutdown.
//!
//! The daemon is **crash-only**: stopping it abruptly and restarting
//! is a supported path, not an error path.
//!
//! - **Durability**: with `--spill-dir`, warmed traces and the LRU
//!   response cache spill to disk (periodically and on graceful
//!   drain) through the atomic tmp+fsync+rename pattern, each record
//!   hash-validated; a restart restores what survives and degrades
//!   *silently* to a cold start on any damage. `GET /readyz`
//!   distinguishes `warm` / `cold` / `draining`.
//! - **Deadline-aware admission**: an EWMA of per-point compute cost
//!   times the queued point count projects each leader's queue wait;
//!   requests whose projection exceeds their deadline are shed up
//!   front with `503` + a `Retry-After` derived from the projection.
//! - **Chaos + self-healing**: the `--chaos-*` flags deterministically
//!   inject worker panics, slow computes, cache-read corruption, and
//!   spill-write failures (see [`chaos`]); pool workers respawn after
//!   a panic (`server.worker.restarts`), corrupt cache bodies are
//!   detected by hash and recomputed, and a failed spill retries next
//!   interval. An injected panic costs one request a `500` (trace id
//!   echoed) — never the pool.
//!
//! Responses are deterministic down to the byte: computed, coalesced,
//! and cached answers are indistinguishable on the wire (provenance
//! travels in the `X-Branchlab-Source` header).
//!
//! ```text
//!            POST /v1/sweep
//!                 │
//!        parse → canonical key
//!                 │
//!        ┌── LRU cache hit? ──► 200 (source: cache)
//!        │
//!        ├── identical sweep in flight? ──► wait on its slot
//!        │                                  (source: coalesced)
//!        └── leader: try_submit ──► worker pool ──► SweepBatch
//!                 │                                  │
//!              queue full                      render + cache
//!                 │                                  │
//!           503 + Retry-After              200 (source: computed)
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod chaos;
pub mod client;
pub mod http;
pub mod lru;
pub mod metrics;
pub mod pool;
pub mod store;

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use branchlab_experiments::trace_replay::{captured_runs, TraceStats};
use branchlab_experiments::{ExperimentConfig, LaneStats, SweepStats};
use branchlab_telemetry::{
    FlightRecorder, JsonValue, MetricsRegistry, SpanHandle, SpanLink, TraceContext, TraceId,
};
use branchlab_workloads::{all_benchmarks, benchmark, Scale};

use api::{ApiError, SweepRequest};
use chaos::{Chaos, ChaosConfig};
use http::{read_request, write_response, ProtocolError, ReadOutcome, Request, Response};
use lru::{Lookup, LruCache};
use metrics::ServerMetrics;
use pool::{SubmitError, WorkerPool};
use store::SpillStore;

/// How the daemon is wired together.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Sweep worker threads.
    pub workers: usize,
    /// Most sweeps queued awaiting a worker before load is shed.
    pub queue_cap: usize,
    /// LRU result-cache capacity (entries; 0 disables).
    pub cache_cap: usize,
    /// Default per-request deadline (clients may shorten it with
    /// `deadline_ms`).
    pub default_deadline: Duration,
    /// How long shutdown waits for open connections to finish.
    pub drain_timeout: Duration,
    /// Base experiment configuration; per-request `scale` / `seed`
    /// override its respective fields.
    pub experiment: ExperimentConfig,
    /// Benchmarks to make resident at startup (empty = whole suite).
    pub warm_benches: Vec<String>,
    /// Completed request traces retained by the flight recorder
    /// (served by `/debug/traces` and exported by `--trace-out`).
    pub flight_recorder_cap: usize,
    /// Log requests slower than this many milliseconds as structured
    /// JSONL (`None` disables the slow log).
    pub slow_ms: Option<u64>,
    /// Where the slow-request JSONL goes (`None` = stderr).
    pub slow_log: Option<std::path::PathBuf>,
    /// Durable spill directory: warmed traces and the LRU response
    /// cache persist here across restarts (`None` disables spilling).
    pub spill_dir: Option<std::path::PathBuf>,
    /// Interval between periodic spill snapshots.
    pub spill_every: Duration,
    /// Server-side fault injection rates (all zero = chaos off).
    pub chaos: ChaosConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8787".to_string(),
            workers: 2,
            queue_cap: 32,
            cache_cap: 256,
            default_deadline: Duration::from_secs(60),
            drain_timeout: Duration::from_secs(10),
            // Workers provide the parallelism; each sweep replays
            // serially so concurrent requests don't oversubscribe.
            experiment: ExperimentConfig {
                sweep_threads: Some(1),
                ..ExperimentConfig::test()
            },
            warm_benches: Vec::new(),
            flight_recorder_cap: 256,
            slow_ms: None,
            slow_log: None,
            spill_dir: None,
            spill_every: Duration::from_secs(5),
            chaos: ChaosConfig::default(),
        }
    }
}

/// Readiness phases reported by `GET /readyz`.
mod phase {
    /// Warmup still running (503 `warming`).
    pub const WARMING: u8 = 0;
    /// Ready; nothing was restored from a spill (200 `cold`).
    pub const READY_COLD: u8 = 1;
    /// Ready; spilled state survived the restart (200 `warm`).
    pub const READY_WARM: u8 = 2;
    /// Shutting down; draining open connections (503 `draining`).
    pub const DRAINING: u8 = 3;
}

/// One in-flight computation that concurrent identical requests
/// rendezvous on. The leader fills it exactly once; followers wait
/// with a deadline.
struct Slot {
    state: Mutex<Option<Result<Arc<str>, ApiError>>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Slot {
            state: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn fill(&self, result: Result<Arc<str>, ApiError>) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.is_none() {
            *state = Some(result);
        }
        drop(state);
        self.cv.notify_all();
    }

    /// Wait for the result until `deadline`; `None` means it expired.
    fn wait_until(&self, deadline: Instant) -> Option<Result<Arc<str>, ApiError>> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(result) = state.as_ref() {
                return Some(result.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = guard;
        }
    }
}

/// Warm-residency info for one benchmark, reported by
/// `GET /v1/benchmarks`.
#[derive(Clone, Copy, Debug)]
struct WarmInfo {
    runs: usize,
    events: u64,
    bytes: usize,
}

/// Everything the connection handlers share.
struct State {
    config: ServerConfig,
    metrics: ServerMetrics,
    pool: WorkerPool,
    cache: Mutex<LruCache>,
    inflight: Mutex<HashMap<String, Arc<Slot>>>,
    warm: Mutex<BTreeMap<&'static str, WarmInfo>>,
    recorder: FlightRecorder,
    slow_log: Option<Mutex<std::fs::File>>,
    spill: Option<SpillStore>,
    chaos: Chaos,
    /// Cache entries restored from the spill snapshot at boot.
    restored: usize,
    /// Whether the spill's trace directory already held files at boot
    /// — a previous instance spilled traces for warmup to restore.
    spilled_traces_at_boot: bool,
    /// EWMA of compute cost per sweep point, µs (0 = no samples yet).
    ewma_point_us: AtomicU64,
    /// Sweep points admitted but not yet computed (the queue length in
    /// admission's cost unit).
    queued_points: AtomicU64,
    phase: AtomicU8,
    shutdown: AtomicBool,
    /// Set by [`ServerHandle::kill`]: simulate an abrupt crash, so the
    /// graceful-drain spill is skipped and only periodic snapshots
    /// survive — exactly what a real `kill -9` leaves behind.
    crashed: AtomicBool,
}

impl State {
    fn is_ready(&self) -> bool {
        matches!(
            self.phase.load(Ordering::SeqCst),
            phase::READY_COLD | phase::READY_WARM
        )
    }
}

/// The running daemon. Dropping the handle does **not** stop it; call
/// [`ServerHandle::shutdown_and_join`].
pub struct ServerHandle {
    state: Arc<State>,
    addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

/// The daemon's entry point.
pub struct Server;

impl Server {
    /// Bind, start the warmup pass and the accept loop, and return a
    /// handle to the running daemon.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
        let mut config = config;
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        // Durability: open the spill directory and point the trace
        // disk cache into it (unless the operator routed traces
        // elsewhere already) — warmup then restores spilled traces
        // through the existing hash-validated loader and spills fresh
        // captures automatically.
        let spill = match &config.spill_dir {
            Some(dir) => Some(SpillStore::open(dir)?),
            None => None,
        };
        let mut spilled_traces_at_boot = false;
        if let Some(store) = &spill {
            if config.experiment.trace_cache_dir.is_none() {
                config.experiment.trace_cache_dir = Some(store.traces_dir());
            }
            spilled_traces_at_boot = std::fs::read_dir(store.traces_dir())
                .map(|mut dir| dir.next().is_some())
                .unwrap_or(false);
        }

        let registry = Arc::new(MetricsRegistry::new());
        let metrics = ServerMetrics::new(registry);
        let pool = WorkerPool::new(
            config.workers,
            config.queue_cap,
            Arc::clone(&metrics.queue_depth),
            Arc::clone(&metrics.worker_restarts),
        );
        let slow_log = match &config.slow_log {
            Some(path) => Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )),
            None => None,
        };

        // Restore the response cache from the last spill snapshot.
        // Damaged records were already dropped by the forgiving loader;
        // whatever survives replays in LRU order, so recency survives
        // the restart too.
        let mut cache = LruCache::new(config.cache_cap);
        let mut restored = 0usize;
        if let Some(store) = &spill {
            let load = store.load_cache();
            metrics.spill_skipped.add(load.skipped as u64);
            for (key, body) in load.entries {
                cache.put(&key, body);
                restored += 1;
            }
            metrics.spill_restored.add(restored as u64);
        }

        let chaos = Chaos::new(config.chaos.clone());
        let state = Arc::new(State {
            metrics,
            pool,
            cache: Mutex::new(cache),
            inflight: Mutex::new(HashMap::new()),
            warm: Mutex::new(BTreeMap::new()),
            recorder: FlightRecorder::new(config.flight_recorder_cap),
            slow_log,
            spill,
            chaos,
            restored,
            spilled_traces_at_boot,
            ewma_point_us: AtomicU64::new(0),
            queued_points: AtomicU64::new(0),
            phase: AtomicU8::new(phase::WARMING),
            shutdown: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            config,
        });

        let warm_state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("bld-warmup".to_string())
            .spawn(move || warmup(&warm_state))
            .expect("spawn warmup thread");

        if state.spill.is_some() {
            let spill_state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("bld-spill".to_string())
                .spawn(move || spill_loop(&spill_state))
                .expect("spawn spill thread");
        }

        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::Builder::new()
            .name("bld-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_state))
            .expect("spawn accept thread");

        Ok(ServerHandle {
            state,
            addr,
            accept_thread: Some(accept_thread),
        })
    }
}

impl ServerHandle {
    /// The bound listen address (useful with an ephemeral port).
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Has the warmup pass finished?
    #[must_use]
    pub fn is_ready(&self) -> bool {
        self.state.is_ready()
    }

    /// Did this instance restore spilled state (traces or cached
    /// responses) at boot? Meaningful once [`Self::is_ready`].
    #[must_use]
    pub fn is_warm_restart(&self) -> bool {
        self.state.phase.load(Ordering::SeqCst) == phase::READY_WARM
    }

    /// Pool workers respawned after a panicking job.
    #[must_use]
    pub fn worker_restarts(&self) -> usize {
        self.state.pool.worker_restarts()
    }

    /// Signal shutdown: stop accepting, drain open connections and
    /// queued sweeps, spill a final snapshot, then stop the workers.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.phase.store(phase::DRAINING, Ordering::SeqCst);
    }

    /// Simulate an abrupt crash (`kill -9` without leaving the
    /// process): shut down but *skip the graceful-drain spill*, so
    /// only state already published by periodic snapshots survives —
    /// what `tests/chaos.rs` uses to prove warm restarts recover from
    /// real crashes, not just polite drains.
    pub fn kill(&mut self) {
        self.state.crashed.store(true, Ordering::SeqCst);
        self.shutdown();
        self.join();
    }

    /// Block until the accept loop (and with it the drain) finishes.
    pub fn join(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// [`shutdown`](Self::shutdown) then [`join`](Self::join).
    pub fn shutdown_and_join(&mut self) {
        self.shutdown();
        self.join();
    }

    /// Total request traces recorded by the flight recorder.
    #[must_use]
    pub fn traces_recorded(&self) -> u64 {
        self.state.recorder.recorded()
    }

    /// Every trace currently in the flight recorder, rendered as a
    /// Chrome trace-event JSON document (what `branchlabd --trace-out`
    /// writes at shutdown; open it in Perfetto or `chrome://tracing`).
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        branchlab_telemetry::chrome_trace(&self.state.recorder.recent()).to_json_pretty()
    }
}

/// Make every configured benchmark's trace resident, then mark ready.
/// The default warm set is the 1989 suite; synthetic benchmarks are
/// captured on first request (or via `--warm-benches`).
fn warmup(state: &State) {
    let names: Vec<&'static str> = if state.config.warm_benches.is_empty() {
        branchlab_workloads::SUITE.iter().map(|b| b.name).collect()
    } else {
        state
            .config
            .warm_benches
            .iter()
            .filter_map(|n| benchmark(n).map(|b| b.name))
            .collect()
    };
    for name in names {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Some(bench) = benchmark(name) else {
            continue;
        };
        match captured_runs(bench, &state.config.experiment) {
            Ok(traces) => {
                let info = WarmInfo {
                    runs: traces.len(),
                    events: traces.iter().map(branchlab_trace::TraceBuf::events).sum(),
                    bytes: traces.iter().map(branchlab_trace::TraceBuf::byte_len).sum(),
                };
                state.metrics.warm_benches.inc();
                state.metrics.warm_events.add(info.events);
                state
                    .warm
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .insert(bench.name, info);
            }
            Err(e) => {
                // A bench that fails to warm stays cold; requests for
                // it will surface the error per-sweep.
                eprintln!("branchlabd: warmup of `{name}` failed: {e}");
            }
        }
    }
    // Warm vs. cold: this restart is warm if durable state from a
    // previous instance was there to restore — cache-snapshot entries
    // that validated, or spilled trace files for warmup to load
    // instead of re-capturing.
    let ready_phase = if state.restored > 0 || state.spilled_traces_at_boot {
        phase::READY_WARM
    } else {
        phase::READY_COLD
    };
    // Don't clobber DRAINING if shutdown raced the warmup pass.
    let _ = state.phase.compare_exchange(
        phase::WARMING,
        ready_phase,
        Ordering::SeqCst,
        Ordering::SeqCst,
    );
    state.metrics.ready.set(1);
}

/// Publish spill snapshots every `spill_every` until shutdown.
fn spill_loop(state: &Arc<State>) {
    loop {
        let deadline = Instant::now() + state.config.spill_every;
        while Instant::now() < deadline {
            if state.shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        spill_snapshot(state, true);
    }
}

/// Snapshot the response cache into the spill store. Best-effort: a
/// failure (real or chaos-injected, periodic spills only) is counted
/// and retried at the next interval — the previous snapshot on disk
/// stays intact either way.
fn spill_snapshot(state: &State, allow_chaos: bool) {
    let Some(store) = &state.spill else { return };
    if allow_chaos && state.chaos.fail_spill_write() {
        state.metrics.spill_errors.inc();
        return;
    }
    let entries = state
        .cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .snapshot();
    match store.save_cache(&entries) {
        Ok(()) => {
            state.metrics.spill_snapshots.inc();
            state.metrics.spill_entries.set(entries.len() as i64);
        }
        Err(e) => {
            state.metrics.spill_errors.inc();
            eprintln!("branchlabd: spill snapshot failed: {e}");
        }
    }
}

/// Poll-accept connections until shutdown, then drain.
fn accept_loop(listener: &TcpListener, state: &Arc<State>) {
    while !state.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                state.metrics.connections_total.inc();
                state.metrics.connections_active.add(1);
                let conn_state = Arc::clone(state);
                let _ = std::thread::Builder::new()
                    .name("bld-conn".to_string())
                    .spawn(move || {
                        handle_connection(stream, &conn_state);
                        conn_state.metrics.connections_active.add(-1);
                    });
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    // Drain: wait for open connections to finish their in-flight
    // exchanges (handlers see the shutdown flag and close), then stop
    // the workers — the pool itself drains every admitted job.
    let deadline = Instant::now() + state.config.drain_timeout;
    while state.metrics.connections_active.get() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    state.pool.shutdown();
    // Every drained sweep is now in the cache; publish the final
    // snapshot — unless this "shutdown" is a simulated crash, whose
    // whole point is that only periodic snapshots survive.
    if !state.crashed.load(Ordering::SeqCst) {
        spill_snapshot(state, false);
    }
}

/// Serve one connection until it closes, errors, or shutdown.
fn handle_connection(mut stream: TcpStream, state: &Arc<State>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_nodelay(true);
    let mut buf = Vec::new();
    // When shutdown lands, an established connection gets a short
    // grace window to issue one last request (clients probing
    // `/readyz` for the 503 `draining` signal) before the handler
    // closes it.
    let mut drain_since: Option<Instant> = None;
    loop {
        let outcome = match read_request(&mut stream, &mut buf) {
            Ok(outcome) => outcome,
            Err(_) => return,
        };
        let request = match outcome {
            Ok(ReadOutcome::Request(request)) => request,
            Ok(ReadOutcome::Idle) => {
                if state.shutdown.load(Ordering::SeqCst)
                    && drain_since.get_or_insert_with(Instant::now).elapsed()
                        >= Duration::from_millis(400)
                {
                    return;
                }
                continue;
            }
            Ok(ReadOutcome::Closed) => return,
            Err(ProtocolError(message)) => {
                // Malformed framing: no headers to take a client id
                // from, so assign one — the 400 still correlates with
                // a server-side trace.
                let ctx = TraceContext::new();
                ctx.set_label("<protocol error>");
                let resp = error_response(&ApiError::BadRequest(message))
                    .with_header("X-Branchlab-Trace-Id", &ctx.id().to_string());
                state.metrics.count_response(resp.status);
                finish_request_trace(state, &ctx, resp.status);
                let _ = write_response(&mut stream, &resp, true);
                return;
            }
        };
        let ctx = request
            .header("x-branchlab-trace-id")
            .and_then(TraceId::parse)
            .map_or_else(TraceContext::new, TraceContext::with_id);
        ctx.set_label(&format!("{} {}", request.method, request.path));
        let close = request.wants_close() || state.shutdown.load(Ordering::SeqCst);
        let response =
            route(state, &request, &ctx).with_header("X-Branchlab-Trace-Id", &ctx.id().to_string());
        state.metrics.count_response(response.status);
        finish_request_trace(state, &ctx, response.status);
        if write_response(&mut stream, &response, close).is_err() || close {
            return;
        }
    }
}

/// Snapshot a request's spans into the flight recorder and, past the
/// configured threshold, the structured slow log.
fn finish_request_trace(state: &State, ctx: &TraceContext, status: u16) {
    let trace = ctx.finish();
    if let Some(slow_ms) = state.config.slow_ms {
        if trace.total_us >= slow_ms.saturating_mul(1_000) {
            state.metrics.slow_requests.inc();
            log_slow_request(state, &trace, status);
        }
    }
    state.recorder.record(trace);
}

/// One JSONL line per slow request: identity, status, total, and the
/// per-span latency decomposition.
fn log_slow_request(state: &State, trace: &branchlab_telemetry::RequestTrace, status: u16) {
    use std::io::Write;
    let spans = trace
        .spans
        .iter()
        .map(|s| {
            JsonValue::obj(vec![
                ("name", s.name.as_str().into()),
                ("dur_us", s.dur_us.into()),
                ("work", s.work.into()),
            ])
        })
        .collect();
    let line = JsonValue::obj(vec![
        ("ts_us", trace.wall_start_us.into()),
        ("trace_id", trace.id.to_string().into()),
        ("label", trace.label.as_str().into()),
        ("status", u64::from(status).into()),
        ("total_us", trace.total_us.into()),
        ("spans", JsonValue::Arr(spans)),
    ])
    .to_json();
    match &state.slow_log {
        Some(file) => {
            let mut f = file
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let _ = writeln!(f, "{line}");
        }
        None => eprintln!("branchlabd: slow request: {line}"),
    }
}

fn error_response(err: &ApiError) -> Response {
    let body = JsonValue::obj(vec![("error", err.message().into())]).to_json();
    let resp = Response::json(err.status(), body);
    match err.retry_after_secs() {
        Some(secs) => resp.with_header("Retry-After", &secs.to_string()),
        None => resp,
    }
}

/// Dispatch one parsed request under a root `request` span.
fn route(state: &Arc<State>, request: &Request, ctx: &TraceContext) -> Response {
    state.metrics.requests.inc();
    let mut root = ctx.root("request");
    let response = match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/sweep") => handle_sweep(state, request, &root),
        ("GET", "/v1/benchmarks") => handle_benchmarks(state),
        ("GET", "/healthz") => Response::text(200, "ok\n".to_string()),
        ("GET", "/readyz") => match state.phase.load(Ordering::SeqCst) {
            phase::READY_WARM => Response::text(200, "warm\n".to_string()),
            phase::READY_COLD => Response::text(200, "cold\n".to_string()),
            phase::DRAINING => Response::text(503, "draining\n".to_string()),
            _ => Response::text(503, "warming\n".to_string()),
        },
        ("GET", "/metrics") => Response::text(200, render_metrics(state)),
        ("GET", "/debug/traces") => handle_debug_traces(state),
        ("GET", "/debug/slow") => handle_debug_slow(state),
        ("GET", path) if path.starts_with("/debug/traces/") => {
            handle_debug_trace(state, &path["/debug/traces/".len()..])
        }
        (
            _,
            "/v1/sweep" | "/v1/benchmarks" | "/healthz" | "/readyz" | "/metrics" | "/debug/traces"
            | "/debug/slow",
        ) => Response::json(
            405,
            JsonValue::obj(vec![("error", "method not allowed".into())]).to_json(),
        ),
        _ => Response::json(
            404,
            JsonValue::obj(vec![("error", "no such endpoint".into())]).to_json(),
        ),
    };
    root.arg("status", u64::from(response.status));
    response
}

/// `GET /debug/traces`: flight-recorder summaries, newest first.
fn handle_debug_traces(state: &Arc<State>) -> Response {
    let recent = state.recorder.recent();
    let body = JsonValue::obj(vec![
        ("capacity", state.recorder.capacity().into()),
        ("recorded", state.recorder.recorded().into()),
        (
            "traces",
            JsonValue::Arr(recent.iter().map(|t| t.summary_json()).collect()),
        ),
    ]);
    Response::json(200, body.to_json())
}

/// `GET /debug/traces/<id>`: one retained trace's full span tree.
fn handle_debug_trace(state: &Arc<State>, id: &str) -> Response {
    match TraceId::parse(id).and_then(|id| state.recorder.find(id)) {
        Some(trace) => Response::json(200, trace.to_json_value().to_json()),
        None => Response::json(
            404,
            JsonValue::obj(vec![(
                "error",
                "no such trace (bad id, or evicted from the flight recorder)".into(),
            )])
            .to_json(),
        ),
    }
}

/// `GET /debug/slow`: the slowest retained traces, longest first.
fn handle_debug_slow(state: &Arc<State>) -> Response {
    const TOP_K: usize = 10;
    let slow = state.recorder.slowest(TOP_K);
    let body = JsonValue::obj(vec![
        ("k", TOP_K.into()),
        (
            "traces",
            JsonValue::Arr(slow.iter().map(|t| t.summary_json()).collect()),
        ),
    ]);
    Response::json(200, body.to_json())
}

/// The full `/v1/sweep` path: parse → cache → coalesce → compute.
fn handle_sweep(state: &Arc<State>, request: &Request, parent: &SpanHandle) -> Response {
    let started = Instant::now();
    state.metrics.sweep_requests.inc();
    let result = sweep_result(state, request, started, parent);
    state
        .metrics
        .latency_us
        .observe(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
    match result {
        Ok((body, source)) => {
            Response::json(200, body.to_string()).with_header("X-Branchlab-Source", source)
        }
        Err(err) => error_response(&err),
    }
}

/// Leader-side job bookkeeping that must survive a worker panic.
///
/// The guard travels inside the job closure; whatever happens to the
/// job — normal completion, a chaos-injected panic, or the pool
/// dropping it unexecuted at shutdown — the `Drop` impl releases the
/// coalescing slot (filling it with a `500` if nothing better was
/// published first; [`Slot::fill`] is first-write-wins), retires the
/// inflight entry, and returns the request's points to the admission
/// ledger. Followers therefore never hang on a dead leader.
struct JobGuard {
    state: Arc<State>,
    slot: Arc<Slot>,
    key: String,
    points: u64,
}

impl JobGuard {
    /// Publish the job's real result (the `Drop` fill becomes a no-op).
    fn finish(&self, result: Result<Arc<str>, ApiError>) {
        self.slot.fill(result);
    }
}

impl Drop for JobGuard {
    fn drop(&mut self) {
        self.state
            .queued_points
            .fetch_sub(self.points, Ordering::SeqCst);
        let mut inflight = self
            .state
            .inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Remove only *our* slot: a successor leader may already have
        // re-registered this key by the time a panicked job unwinds.
        if let Some(current) = inflight.get(&self.key) {
            if Arc::ptr_eq(current, &self.slot) {
                inflight.remove(&self.key);
            }
        }
        drop(inflight);
        self.slot
            .fill(Err(ApiError::Internal("sweep worker panicked".to_string())));
    }
}

fn sweep_result(
    state: &Arc<State>,
    request: &Request,
    started: Instant,
    parent: &SpanHandle,
) -> Result<(Arc<str>, &'static str), ApiError> {
    let req = {
        let _span = parent.child("parse");
        SweepRequest::parse(&request.body, &state.config.experiment)?
    };
    let deadline = started
        + req
            .deadline_ms
            .map_or(state.config.default_deadline, Duration::from_millis);
    let key = req.canonical_key();

    // 1. Result cache (hash-validated; the chaos cache_read lane
    //    tampers with the stored body first so validation must catch
    //    it and fall through to a recompute).
    let cached = {
        let mut span = parent.child("cache_lookup");
        let mut cache = state
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.chaos.corrupt_cache_read() {
            cache.corrupt_for_chaos(&key);
        }
        let lookup = cache.get(&key);
        drop(cache);
        span.arg("hit", u64::from(matches!(lookup, Lookup::Hit(_))));
        lookup
    };
    match cached {
        Lookup::Hit(body) => {
            state.metrics.cache_hits.inc();
            return Ok((body, "cache"));
        }
        Lookup::Corrupt => {
            state.metrics.cache_corrupt.inc();
            state.metrics.cache_misses.inc();
        }
        Lookup::Miss => state.metrics.cache_misses.inc(),
    }

    // 2. Coalesce onto an identical in-flight computation, or become
    //    the leader for this key.
    let (slot, leader) = {
        let mut span = parent.child("admission");
        let mut inflight = state
            .inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (slot, leader) = match inflight.get(&key) {
            Some(slot) => (Arc::clone(slot), false),
            None => {
                let slot = Slot::new();
                inflight.insert(key.clone(), Arc::clone(&slot));
                (Arc::clone(&slot), true)
            }
        };
        span.arg("leader", u64::from(leader));
        (slot, leader)
    };

    if leader {
        // Deadline-aware admission: project this request's queue wait
        // from the points already queued and the per-point cost EWMA;
        // if the projection alone blows the deadline, shed now with a
        // `Retry-After` sized to the projection rather than burning a
        // queue slot on a request that will 504 anyway.
        let queued = state.queued_points.load(Ordering::SeqCst);
        let ewma = state.ewma_point_us.load(Ordering::SeqCst);
        let workers = state.config.workers.max(1) as u64;
        let projected_wait_us = queued.saturating_mul(ewma) / workers;
        state
            .metrics
            .admission_projected_wait_us
            .observe(projected_wait_us);
        let budget_us = u64::try_from(
            deadline
                .saturating_duration_since(Instant::now())
                .as_micros(),
        )
        .unwrap_or(u64::MAX);
        if projected_wait_us > budget_us {
            state
                .inflight
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .remove(&key);
            let err = ApiError::AdmissionRejected {
                projected_wait_us,
                deadline_us: budget_us,
            };
            slot.fill(Err(err.clone()));
            state.metrics.admission_rejected.inc();
            return Err(err);
        }

        // The queue_wait span opens here on the connection thread and
        // closes inside the job at worker pickup — the accept-to-pickup
        // interval the `server.queue.wait_us` histogram observes.
        let queue_span = parent.child("queue_wait");
        let compute_link = parent.link();
        state
            .queued_points
            .fetch_add(req.points(), Ordering::SeqCst);
        let guard = JobGuard {
            state: Arc::clone(state),
            slot: Arc::clone(&slot),
            key: key.clone(),
            points: req.points(),
        };
        let submitted = state.pool.try_submit(move || {
            guard
                .state
                .metrics
                .queue_wait_us
                .observe(queue_span.elapsed_us());
            drop(queue_span);
            if guard.state.chaos.worker_panic() {
                // Outside compute_sweep's own catch_unwind: this
                // unwinds through the pool worker, exercising respawn
                // and the guard's follower-release path.
                panic!("chaos: injected worker panic");
            }
            let result = if Instant::now() >= deadline {
                // Shed stale work cheaply: the client stopped waiting
                // before a worker ever picked this up.
                guard.state.metrics.deadline_expired.inc();
                Err(ApiError::DeadlineExpired)
            } else {
                compute_sweep(&guard.state, &req, &guard.key, &compute_link)
            };
            guard.finish(result);
        });
        if let Err(err) = submitted {
            // The closure (and the guard inside it) was dropped by
            // try_submit on rejection, which already released the
            // slot and inflight entry; report the shed precisely.
            if err == SubmitError::QueueFull {
                state.metrics.queue_rejected.inc();
            }
            return Err(ApiError::Overloaded);
        }
    } else {
        state.metrics.coalesce_hits.inc();
    }

    // Followers spend their whole wait here; the leader's wait is
    // already decomposed by the queue_wait/compute spans its worker
    // records into this same trace.
    let _wait_span = (!leader).then(|| parent.child("coalesce_wait"));
    match slot.wait_until(deadline) {
        Some(Ok(body)) => Ok((body, if leader { "computed" } else { "coalesced" })),
        Some(Err(err)) => Err(err),
        None => {
            state.metrics.deadline_expired.inc();
            Err(ApiError::DeadlineExpired)
        }
    }
}

/// Run the sweep on a worker and publish the rendered body.
fn compute_sweep(
    state: &State,
    req: &SweepRequest,
    key: &str,
    parent: &SpanLink,
) -> Result<Arc<str>, ApiError> {
    // Chaos slow-compute lane: sleep *before* the timed section, so an
    // injected stall pressures deadlines without polluting the
    // admission EWMA's view of real compute cost.
    if let Some(delay) = state.chaos.slow_compute() {
        std::thread::sleep(delay);
    }
    let compute_span = parent.child("compute");
    let compute_start = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        api::evaluate_traced(req, &state.config.experiment, Some(&compute_span.link()))
    }));
    drop(compute_span);
    let body = match outcome {
        Ok(result) => result?,
        Err(_) => return Err(ApiError::Internal("sweep worker panicked".to_string())),
    };
    observe_point_cost(state, req.points(), compute_start.elapsed());
    state.metrics.sweeps_computed.inc();
    state
        .cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .put(key, Arc::clone(&body));
    Ok(body)
}

/// Fold one completed sweep's per-point cost into the admission EWMA
/// (α = 1/8; the first sample seeds the average directly).
fn observe_point_cost(state: &State, points: u64, elapsed: Duration) {
    let sample_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX) / points.max(1);
    let mut current = state.ewma_point_us.load(Ordering::SeqCst);
    loop {
        let next = if current == 0 {
            sample_us
        } else {
            current - current / 8 + sample_us / 8
        };
        match state.ewma_point_us.compare_exchange(
            current,
            next,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => return,
            Err(live) => current = live,
        }
    }
}

/// `GET /v1/benchmarks`: the 1989 suite plus the synthetic
/// large-footprint benchmarks, with warm-residency info and the static
/// branch-site count / code-footprint class clients use to pick
/// capacity-stressing workloads without trial sweeps.
fn handle_benchmarks(state: &Arc<State>) -> Response {
    let warm = state
        .warm
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    let benches = all_benchmarks()
        .map(|b| {
            let mut fields = vec![
                ("name", JsonValue::from(b.name)),
                ("input", b.input_description.into()),
                ("paper_runs", b.paper_runs.into()),
                ("source_lines", b.source_lines().into()),
                ("in_main_tables", b.in_main_tables.into()),
                ("branch_sites", b.branch_sites().into()),
                ("footprint_class", b.footprint_class().into()),
                ("resident", warm.contains_key(b.name).into()),
            ];
            if let Some(info) = warm.get(b.name) {
                fields.push(("trace_runs", info.runs.into()));
                fields.push(("trace_events", info.events.into()));
                fields.push(("trace_bytes", info.bytes.into()));
            }
            JsonValue::obj(fields)
        })
        .collect();
    let body = JsonValue::obj(vec![
        ("scale", scale_field(state)),
        ("seed", state.config.experiment.seed.into()),
        ("ready", state.is_ready().into()),
        ("benchmarks", JsonValue::Arr(benches)),
    ]);
    Response::json(200, body.to_json())
}

fn scale_field(state: &Arc<State>) -> JsonValue {
    branchlab_experiments::trace_replay::scale_name(state.config.experiment.scale).into()
}

/// `GET /metrics`: the server registry merged with a fresh export of
/// the process-wide trace/sweep counters, as Prometheus text.
///
/// The trace and sweep stats are cumulative process counters, so they
/// are exported into a throwaway registry each scrape instead of being
/// re-added to the long-lived one (which would double-count).
fn render_metrics(state: &Arc<State>) -> String {
    let scratch = MetricsRegistry::new();
    TraceStats::snapshot().export(&scratch);
    SweepStats::snapshot().export(&scratch);
    LaneStats::snapshot().export(&scratch);
    let mut snap = state.metrics.registry.snapshot();
    snap.merge(&scratch.snapshot());
    snap.to_prometheus()
}

/// Convenience: run one request against a batch directly, bypassing
/// HTTP. Used by tools that want server-identical results in-process.
///
/// # Errors
/// Same failure modes as the server's compute path.
pub fn evaluate_direct(req: &SweepRequest, base: &ExperimentConfig) -> Result<Arc<str>, ApiError> {
    api::evaluate(req, base)
}

/// Parse a `--scale` argument (`test` / `small` / `paper`).
#[must_use]
pub fn parse_scale_arg(s: &str) -> Option<Scale> {
    match s {
        "test" => Some(Scale::Test),
        "small" => Some(Scale::Small),
        "paper" => Some(Scale::Paper),
        _ => None,
    }
}
