//! A small LRU cache for rendered sweep responses.
//!
//! Keys are the canonical request strings from
//! [`SweepRequest::canonical_key`](crate::api::SweepRequest::canonical_key),
//! values the rendered response bodies (shared `Arc<str>` so cache
//! hits never copy). Recency is tracked with a monotonic tick; the
//! evict scan is O(capacity), which is irrelevant at the daemon's
//! cache sizes (hundreds) next to the cost of one sweep.

use std::collections::HashMap;
use std::sync::Arc;

/// A least-recently-used map from canonical request keys to rendered
/// response bodies.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    tick: u64,
    map: HashMap<String, (u64, Arc<str>)>,
}

impl LruCache {
    /// An empty cache holding at most `capacity` entries (0 disables
    /// caching entirely).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<Arc<str>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(at, body)| {
            *at = tick;
            Arc::clone(body)
        })
    }

    /// Insert (or refresh) `key`, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn put(&mut self, key: &str, body: Arc<str>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (at, _))| *at)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key.to_string(), (self.tick, body));
    }

    /// Entries currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn get_refreshes_recency() {
        let mut lru = LruCache::new(2);
        lru.put("a", body("A"));
        lru.put("b", body("B"));
        assert_eq!(lru.get("a").as_deref(), Some("A"));
        lru.put("c", body("C")); // "b" is now the oldest
        assert!(lru.get("b").is_none());
        assert_eq!(lru.get("a").as_deref(), Some("A"));
        assert_eq!(lru.get("c").as_deref(), Some("C"));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn reinsert_updates_value_without_evicting() {
        let mut lru = LruCache::new(2);
        lru.put("a", body("A1"));
        lru.put("b", body("B"));
        lru.put("a", body("A2"));
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get("a").as_deref(), Some("A2"));
        assert_eq!(lru.get("b").as_deref(), Some("B"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut lru = LruCache::new(0);
        lru.put("a", body("A"));
        assert!(lru.is_empty());
        assert!(lru.get("a").is_none());
    }
}
