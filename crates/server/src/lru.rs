//! A small LRU cache for rendered sweep responses, with per-entry
//! integrity validation.
//!
//! Keys are the canonical request strings from
//! [`SweepRequest::canonical_key`](crate::api::SweepRequest::canonical_key),
//! values the rendered response bodies (shared `Arc<str>` so cache
//! hits never copy). Recency is tracked with a monotonic tick; the
//! evict scan is O(capacity), which is irrelevant at the daemon's
//! cache sizes (hundreds) next to the cost of one sweep.
//!
//! Every entry carries an FNV-1a hash of its body, checked on every
//! read: a damaged body (bit-rot, a bad spill restore, or the chaos
//! engine's `cache_read` lane) is reported as [`Lookup::Corrupt`] and
//! evicted, so the caller falls back to recomputing instead of ever
//! serving wrong bytes. The same hashes ride along in the spill
//! snapshot (see [`store`](crate::store)), which is what lets a warm
//! restart trust what it reads back from disk.

use std::collections::HashMap;
use std::sync::Arc;

use branchlab_trace::hash_bytes;

/// Outcome of one validated cache lookup.
#[derive(Debug)]
pub enum Lookup {
    /// The entry was present and its body hash checked out.
    Hit(Arc<str>),
    /// The entry was present but its body failed validation; it has
    /// been evicted. Callers treat this as a miss (plus a metric).
    Corrupt,
    /// No entry for this key.
    Miss,
}

/// A least-recently-used map from canonical request keys to rendered,
/// hash-validated response bodies.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    tick: u64,
    map: HashMap<String, Entry>,
}

#[derive(Debug)]
struct Entry {
    at: u64,
    hash: u64,
    body: Arc<str>,
}

impl LruCache {
    /// An empty cache holding at most `capacity` entries (0 disables
    /// caching entirely).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Look up `key`, validating the body hash and refreshing recency
    /// on a hit. A validation failure evicts the entry and reports
    /// [`Lookup::Corrupt`].
    pub fn get(&mut self, key: &str) -> Lookup {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            None => Lookup::Miss,
            Some(entry) => {
                if hash_bytes(entry.body.as_bytes()) != entry.hash {
                    self.map.remove(key);
                    return Lookup::Corrupt;
                }
                entry.at = tick;
                Lookup::Hit(Arc::clone(&entry.body))
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn put(&mut self, key: &str, body: Arc<str>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.at)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        let hash = hash_bytes(body.as_bytes());
        self.map.insert(
            key.to_string(),
            Entry {
                at: self.tick,
                hash,
                body,
            },
        );
    }

    /// Every entry as `(key, body)`, least-recently-used first — the
    /// order the spill snapshot writes and the restore replays, so
    /// recency survives a restart.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, Arc<str>)> {
        let mut entries: Vec<(&String, &Entry)> = self.map.iter().collect();
        entries.sort_by_key(|(_, e)| e.at);
        entries
            .into_iter()
            .map(|(k, e)| (k.clone(), Arc::clone(&e.body)))
            .collect()
    }

    /// Chaos hook: tamper with `key`'s stored body (first byte
    /// flipped) *without* touching its recorded hash, so the next
    /// [`LruCache::get`] must detect the damage. Returns whether an
    /// entry was present to corrupt.
    pub fn corrupt_for_chaos(&mut self, key: &str) -> bool {
        match self.map.get_mut(key) {
            None => false,
            Some(entry) => {
                let mut bytes = entry.body.as_bytes().to_vec();
                match bytes.first_mut() {
                    Some(b) => *b ^= 0x5a,
                    None => return false,
                }
                entry.body = Arc::from(String::from_utf8_lossy(&bytes).into_owned());
                true
            }
        }
    }

    /// Entries currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    fn hit(lru: &mut LruCache, key: &str) -> Option<Arc<str>> {
        match lru.get(key) {
            Lookup::Hit(b) => Some(b),
            Lookup::Corrupt | Lookup::Miss => None,
        }
    }

    #[test]
    fn get_refreshes_recency() {
        let mut lru = LruCache::new(2);
        lru.put("a", body("A"));
        lru.put("b", body("B"));
        assert_eq!(hit(&mut lru, "a").as_deref(), Some("A"));
        lru.put("c", body("C")); // "b" is now the oldest
        assert!(hit(&mut lru, "b").is_none());
        assert_eq!(hit(&mut lru, "a").as_deref(), Some("A"));
        assert_eq!(hit(&mut lru, "c").as_deref(), Some("C"));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn reinsert_updates_value_without_evicting() {
        let mut lru = LruCache::new(2);
        lru.put("a", body("A1"));
        lru.put("b", body("B"));
        lru.put("a", body("A2"));
        assert_eq!(lru.len(), 2);
        assert_eq!(hit(&mut lru, "a").as_deref(), Some("A2"));
        assert_eq!(hit(&mut lru, "b").as_deref(), Some("B"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut lru = LruCache::new(0);
        lru.put("a", body("A"));
        assert!(lru.is_empty());
        assert!(matches!(lru.get("a"), Lookup::Miss));
    }

    #[test]
    fn corrupt_entries_are_detected_and_evicted() {
        let mut lru = LruCache::new(4);
        lru.put("a", body("AAAA"));
        assert!(lru.corrupt_for_chaos("a"));
        assert!(matches!(lru.get("a"), Lookup::Corrupt));
        // The damaged entry is gone; a fresh put repairs the key.
        assert!(matches!(lru.get("a"), Lookup::Miss));
        lru.put("a", body("AAAA"));
        assert_eq!(hit(&mut lru, "a").as_deref(), Some("AAAA"));
        // Nothing to corrupt on a missing key.
        assert!(!lru.corrupt_for_chaos("nope"));
    }

    #[test]
    fn snapshot_orders_least_recently_used_first() {
        let mut lru = LruCache::new(4);
        lru.put("a", body("A"));
        lru.put("b", body("B"));
        lru.put("c", body("C"));
        let _ = lru.get("a"); // refresh: a is now the most recent
        let keys: Vec<String> = lru.snapshot().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["b", "c", "a"]);
        // Replaying a snapshot into a fresh cache preserves recency:
        // the oldest entries are the first evicted.
        let mut restored = LruCache::new(2);
        for (k, v) in lru.snapshot() {
            restored.put(&k, v);
        }
        assert!(matches!(restored.get("b"), Lookup::Miss));
        assert_eq!(hit(&mut restored, "a").as_deref(), Some("A"));
        assert_eq!(hit(&mut restored, "c").as_deref(), Some("C"));
    }
}
