//! `branchlabd` — the predictor-sweep evaluation daemon.
//!
//! Boots the server from [`branchlab_server::ServerConfig`], warms
//! the suite traces, and serves until SIGTERM/SIGINT, at which point
//! it drains in-flight work and exits 0.
//!
//! ```text
//! branchlabd [--listen ADDR] [--scale test|small|paper] [--seed N]
//!            [--workers N] [--queue N] [--cache N]
//!            [--deadline-ms N] [--addr-file PATH]
//!            [--warm bench1,bench2,...]
//!            [--recorder N] [--slow-ms N] [--slow-log FILE]
//!            [--trace-out FILE]
//!            [--spill-dir DIR] [--spill-every SECS]
//!            [--chaos-seed N] [--chaos-panic-rate P]
//!            [--chaos-delay-rate P] [--chaos-delay-ms N]
//!            [--chaos-cache-corrupt-rate P] [--chaos-spill-fail-rate P]
//! ```
//!
//! `--trace-out` writes the flight recorder's retained request traces
//! as Chrome trace-event JSON at shutdown (open in Perfetto);
//! `--slow-ms` logs requests past the threshold as JSONL, to stderr
//! or to `--slow-log FILE`.
//!
//! `--spill-dir` makes restarts warm: traces and the response cache
//! spill there (every `--spill-every` seconds and on graceful drain),
//! and the next boot restores whatever validates. The `--chaos-*`
//! rates arm deterministic server-side fault injection — worker
//! panics, slow computes, cache-read corruption, spill-write failure
//! — for drills and the CI chaos smoke; see
//! `branchlab_server::chaos`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use branchlab_server::{parse_scale_arg, Server, ServerConfig};

/// Set from the signal handler; polled by the main loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: set the flag.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Install the handler for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        // SAFETY: `signal` with a handler that only stores to a static
        // AtomicBool is async-signal-safe; the numbers are the
        // POSIX-mandated values for SIGINT and SIGTERM.
        unsafe {
            signal(2, on_signal);
            signal(15, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    /// No signal wiring off unix; ctrl-c kills the process directly.
    pub fn install() {}
}

fn usage() -> ! {
    eprintln!(
        "usage: branchlabd [--listen ADDR] [--scale test|small|paper] [--seed N]\n\
         \x20                 [--workers N] [--queue N] [--cache N]\n\
         \x20                 [--deadline-ms N] [--addr-file PATH] [--warm a,b,...]\n\
         \x20                 [--recorder N] [--slow-ms N] [--slow-log FILE]\n\
         \x20                 [--trace-out FILE]\n\
         \x20                 [--spill-dir DIR] [--spill-every SECS]\n\
         \x20                 [--chaos-seed N] [--chaos-panic-rate P]\n\
         \x20                 [--chaos-delay-rate P] [--chaos-delay-ms N]\n\
         \x20                 [--chaos-cache-corrupt-rate P] [--chaos-spill-fail-rate P]"
    );
    std::process::exit(2)
}

/// Parse a probability flag value in `[0, 1]`.
fn parse_rate(s: &str) -> f64 {
    match s.parse::<f64>() {
        Ok(rate) if (0.0..=1.0).contains(&rate) => rate,
        _ => {
            eprintln!("branchlabd: chaos rates must be in [0, 1], got `{s}`");
            usage()
        }
    }
}

fn parse_args() -> (
    ServerConfig,
    Option<std::path::PathBuf>,
    Option<std::path::PathBuf>,
) {
    let mut config = ServerConfig::default();
    let mut addr_file = None;
    let mut trace_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("branchlabd: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--listen" => config.addr = value("--listen"),
            "--addr-file" => addr_file = Some(std::path::PathBuf::from(value("--addr-file"))),
            "--scale" => {
                let s = value("--scale");
                config.experiment.scale = parse_scale_arg(&s).unwrap_or_else(|| {
                    eprintln!("branchlabd: bad --scale `{s}`");
                    usage()
                });
            }
            "--seed" => {
                config.experiment.seed = value("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("branchlabd: bad --seed");
                    usage()
                });
            }
            "--workers" => {
                config.workers = value("--workers").parse().unwrap_or_else(|_| {
                    eprintln!("branchlabd: bad --workers");
                    usage()
                });
            }
            "--queue" => {
                config.queue_cap = value("--queue").parse().unwrap_or_else(|_| {
                    eprintln!("branchlabd: bad --queue");
                    usage()
                });
            }
            "--cache" => {
                config.cache_cap = value("--cache").parse().unwrap_or_else(|_| {
                    eprintln!("branchlabd: bad --cache");
                    usage()
                });
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms").parse().unwrap_or_else(|_| {
                    eprintln!("branchlabd: bad --deadline-ms");
                    usage()
                });
                config.default_deadline = Duration::from_millis(ms);
            }
            "--warm" => {
                config.warm_benches = value("--warm")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--recorder" => {
                config.flight_recorder_cap = value("--recorder").parse().unwrap_or_else(|_| {
                    eprintln!("branchlabd: bad --recorder");
                    usage()
                });
            }
            "--slow-ms" => {
                let ms: u64 = value("--slow-ms").parse().unwrap_or_else(|_| {
                    eprintln!("branchlabd: bad --slow-ms");
                    usage()
                });
                config.slow_ms = Some(ms);
            }
            "--slow-log" => {
                config.slow_log = Some(std::path::PathBuf::from(value("--slow-log")));
            }
            "--trace-out" => {
                trace_out = Some(std::path::PathBuf::from(value("--trace-out")));
            }
            "--spill-dir" => {
                config.spill_dir = Some(std::path::PathBuf::from(value("--spill-dir")));
            }
            "--spill-every" => {
                let secs: u64 = value("--spill-every").parse().unwrap_or_else(|_| {
                    eprintln!("branchlabd: bad --spill-every");
                    usage()
                });
                config.spill_every = Duration::from_secs(secs.max(1));
            }
            "--chaos-seed" => {
                config.chaos.seed = value("--chaos-seed").parse().unwrap_or_else(|_| {
                    eprintln!("branchlabd: bad --chaos-seed");
                    usage()
                });
            }
            "--chaos-panic-rate" => {
                config.chaos.worker_panic_rate = parse_rate(&value("--chaos-panic-rate"));
            }
            "--chaos-delay-rate" => {
                config.chaos.slow_compute_rate = parse_rate(&value("--chaos-delay-rate"));
            }
            "--chaos-delay-ms" => {
                let ms: u64 = value("--chaos-delay-ms").parse().unwrap_or_else(|_| {
                    eprintln!("branchlabd: bad --chaos-delay-ms");
                    usage()
                });
                config.chaos.delay = Duration::from_millis(ms);
            }
            "--chaos-cache-corrupt-rate" => {
                config.chaos.cache_corrupt_rate = parse_rate(&value("--chaos-cache-corrupt-rate"));
            }
            "--chaos-spill-fail-rate" => {
                config.chaos.spill_fail_rate = parse_rate(&value("--chaos-spill-fail-rate"));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("branchlabd: unknown argument `{other}`");
                usage()
            }
        }
    }
    (config, addr_file, trace_out)
}

fn main() {
    let (config, addr_file, trace_out) = parse_args();
    sig::install();

    let mut handle = match Server::start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("branchlabd: bind failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("branchlabd: listening on http://{}", handle.addr());
    if let Some(path) = addr_file {
        // Written last so a watcher that sees the file can connect
        // immediately.
        if let Err(e) = std::fs::write(&path, handle.addr().to_string()) {
            eprintln!("branchlabd: writing {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("branchlabd: shutting down, draining in-flight work");
    handle.shutdown_and_join();
    if let Some(path) = trace_out {
        // After the drain, so the export covers every completed
        // request the recorder still retains.
        let recorded = handle.traces_recorded();
        match std::fs::write(&path, handle.chrome_trace_json()) {
            Ok(()) => eprintln!(
                "branchlabd: wrote Chrome trace ({recorded} requests recorded) to {}",
                path.display()
            ),
            Err(e) => eprintln!("branchlabd: writing {}: {e}", path.display()),
        }
    }
    eprintln!("branchlabd: drained, bye");
}
