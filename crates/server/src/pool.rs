//! A bounded worker pool with explicit backpressure and self-healing
//! workers.
//!
//! Requests are admitted with [`WorkerPool::try_submit`], which fails
//! *immediately* when the queue is at capacity — the HTTP layer turns
//! that into `503` + `Retry-After` instead of queueing without bound.
//! Shutdown is graceful by construction: workers drain every job that
//! was admitted before exiting, so no accepted request is ever
//! silently dropped.
//!
//! Workers are crash-only: every job runs under `catch_unwind`, and a
//! job that panics costs exactly that job — the panicked worker
//! respawns itself (a fresh thread takes its place in the pool) and a
//! `server.worker.restarts` counter records the event. Callers that
//! need a panicked job to still produce an answer attach their own
//! drop-guard to the job closure; the pool guarantees the closure is
//! either run or dropped (on shutdown with no workers left), never
//! leaked.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use branchlab_telemetry::{Counter, Gauge};

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    capacity: usize,
    shutdown: AtomicBool,
    depth: Arc<Gauge>,
    restarts: Arc<Counter>,
    respawns: AtomicUsize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// A fixed set of worker threads pulling jobs from a bounded queue.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
}

impl WorkerPool {
    /// Spawn `workers` threads servicing a queue of at most `capacity`
    /// pending jobs; `depth` tracks the live queue length and
    /// `restarts` counts workers respawned after a panicking job.
    #[must_use]
    pub fn new(workers: usize, capacity: usize, depth: Arc<Gauge>, restarts: Arc<Counter>) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity: capacity.max(1),
            shutdown: AtomicBool::new(false),
            depth,
            restarts,
            respawns: AtomicUsize::new(0),
            workers: Mutex::new(Vec::new()),
        });
        for i in 0..workers.max(1) {
            spawn_worker(&shared, format!("bld-worker-{i}"));
        }
        WorkerPool { shared }
    }

    /// Admit one job, or reject it without blocking when the queue is
    /// full or the pool is shutting down.
    ///
    /// # Errors
    /// Returns [`SubmitError`] naming the rejection reason.
    pub fn try_submit<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), SubmitError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if queue.len() >= self.shared.capacity {
            return Err(SubmitError::QueueFull);
        }
        queue.push_back(Box::new(job));
        self.shared.depth.set(queue.len() as i64);
        drop(queue);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Workers respawned after a panicking job, over the pool's
    /// lifetime.
    #[must_use]
    pub fn worker_restarts(&self) -> usize {
        self.shared.respawns.load(Ordering::SeqCst)
    }

    /// Stop admitting jobs, let the workers drain everything already
    /// queued, and join them (including any respawned replacements).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        loop {
            let handle = self
                .shared
                .workers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pop();
            match handle {
                Some(handle) => {
                    let _ = handle.join();
                }
                None => break,
            }
        }
        // If the last worker panicked out during the drain, jobs may
        // remain queued with no thread left to run them. Dropping the
        // closures (instead of leaking them in the queue) lets their
        // owners' drop-guards report the loss.
        self.shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        self.shared.depth.set(0);
    }
}

/// Why [`WorkerPool::try_submit`] rejected a job.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — the caller should shed load.
    QueueFull,
    /// The pool is draining for shutdown.
    ShuttingDown,
}

/// Spawn one worker thread and register its handle for shutdown-join.
fn spawn_worker(shared: &Arc<PoolShared>, name: String) {
    let loop_shared = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(name)
        .spawn(move || worker_loop(&loop_shared))
        .expect("spawn pool worker");
    shared
        .workers
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(handle);
}

fn worker_loop(shared: &Arc<PoolShared>) {
    loop {
        let job = {
            let mut queue = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.depth.set(queue.len() as i64);
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        match job {
            Some(job) => {
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    // Crash-only recovery: this worker is done, a
                    // fresh replacement takes its slot. The panicked
                    // job's own drop-guard (if any) already reported
                    // its failure when the closure unwound.
                    shared.restarts.inc();
                    let generation = shared.respawns.fetch_add(1, Ordering::SeqCst) + 1;
                    if !shared.shutdown.load(Ordering::SeqCst) {
                        spawn_worker(shared, format!("bld-worker-r{generation}"));
                    }
                    return;
                }
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    fn gauge() -> Arc<Gauge> {
        branchlab_telemetry::MetricsRegistry::new().gauge("q")
    }

    fn counter() -> Arc<Counter> {
        branchlab_telemetry::MetricsRegistry::new().counter("r")
    }

    #[test]
    fn jobs_run_and_drain_on_shutdown() {
        let pool = WorkerPool::new(2, 16, gauge(), counter());
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let done = Arc::clone(&done);
            pool.try_submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let pool = WorkerPool::new(1, 1, gauge(), counter());
        // Park the lone worker so the queue backs up deterministically.
        let (tx, rx) = mpsc::channel::<()>();
        pool.try_submit(move || {
            let _ = rx.recv_timeout(Duration::from_secs(10));
        })
        .unwrap();
        // Wait for the worker to claim the parked job.
        let t0 = std::time::Instant::now();
        loop {
            let occupied = pool
                .shared
                .queue
                .lock()
                .map(|q| q.is_empty())
                .unwrap_or(false);
            if occupied || t0.elapsed() > Duration::from_secs(5) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.try_submit(|| {}).unwrap(); // fills the 1-slot queue
        assert_eq!(pool.try_submit(|| {}), Err(SubmitError::QueueFull));
        tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_jobs() {
        let pool = WorkerPool::new(1, 4, gauge(), counter());
        pool.shutdown();
        assert_eq!(pool.try_submit(|| {}), Err(SubmitError::ShuttingDown));
    }

    #[test]
    fn panicking_job_costs_one_job_never_the_pool() {
        let restarts = counter();
        // One worker: if the panic killed it without a respawn, every
        // later job would hang forever.
        let pool = WorkerPool::new(1, 16, gauge(), Arc::clone(&restarts));
        let done = Arc::new(AtomicUsize::new(0));
        for round in 0..3 {
            pool.try_submit(|| panic!("injected: worker down")).unwrap();
            let (tx, rx) = mpsc::channel::<()>();
            let done2 = Arc::clone(&done);
            pool.try_submit(move || {
                done2.fetch_add(1, Ordering::SeqCst);
                let _ = tx.send(());
            })
            .unwrap();
            rx.recv_timeout(Duration::from_secs(10))
                .unwrap_or_else(|_| panic!("pool dead after panic round {round}"));
        }
        assert_eq!(done.load(Ordering::SeqCst), 3);
        assert_eq!(pool.worker_restarts(), 3);
        assert_eq!(restarts.get(), 3);
        pool.shutdown();
    }

    #[test]
    fn panicked_job_guard_drops_are_observable() {
        // A drop-guard attached to the job fires even when the job
        // panics — the mechanism the server uses to release coalesced
        // followers after an injected worker panic.
        struct Guard(Arc<AtomicUsize>);
        impl Drop for Guard {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let dropped = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(1, 4, gauge(), counter());
        let guard = Guard(Arc::clone(&dropped));
        pool.try_submit(move || {
            let _guard = guard;
            panic!("injected");
        })
        .unwrap();
        let t0 = std::time::Instant::now();
        while dropped.load(Ordering::SeqCst) == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(dropped.load(Ordering::SeqCst), 1);
        pool.shutdown();
    }
}
